//! HTTP/1.1 + JSON gateway front end: the same session core behind a
//! curl-able transport.
//!
//! The binary wire protocol ([`crate::proto`]) is the efficient path,
//! but it requires a bespoke client. This module serves the identical
//! job semantics — admission, per-tenant quotas, deadlines, cooperative
//! cancellation, graceful drain — over HTTP/1.1 with JSON bodies, so
//! any load balancer, curl script, or metrics scraper can reach the
//! Potts machine. It is the third transport over
//! [`crate::session::SessionCore`] and reuses the reactor's
//! nonblocking machinery: one event-loop thread owns every socket via
//! a [`polling::Poller`], each connection is a small state machine (an
//! incremental [`HttpParser`] feeding a write buffer), and worker
//! threads hand completed jobs back through an inbox + poller wakeup.
//!
//! # Endpoints
//!
//! | method + path        | body                              | answer |
//! |----------------------|-----------------------------------|--------|
//! | `POST /v1/jobs`      | raw graph submit (JSON)           | `202 {"job_id"}` |
//! | `POST /v1/problems`  | one of the nine problem classes   | `202 {"job_id"}` |
//! | `GET /v1/jobs/{id}`  | — (`?tenant=` query)              | state + report once terminal |
//! | `DELETE /v1/jobs/{id}` | — (`?tenant=` query)            | cooperative cancel |
//! | `GET /v1/stats`      | —                                 | the stats registry as JSON |
//! | `GET /metrics`       | —                                 | Prometheus text format |
//!
//! Where the binary protocol *streams* report frames, HTTP *polls*:
//! a submit answers `202` with the job id immediately, and the
//! terminal frame (report, decoded problem report, or typed job
//! failure) is retained server-side for `GET /v1/jobs/{id}` — the same
//! bounded retention discipline as the session's terminal-status
//! window.
//!
//! # Error mapping
//!
//! Typed [`ErrorCode`]s map onto HTTP statuses via [`http_status`]:
//! quota exhaustion answers `429`, a draining server `503`, an expired
//! job deadline `504`, an uncompilable problem spec `422`; malformed
//! bodies are `400`, unknown jobs `404`, other tenants' jobs `403`.
//! Application-level errors are request-scoped — **the connection
//! stays serving** (property-tested: hostile bodies never take the
//! keep-alive connection down). Only framing-level violations
//! (unparseable request line, header caps) close the connection, after
//! a final response.
//!
//! # Parser contract
//!
//! [`HttpParser`] is written to the same bar as [`crate::proto::Decoder`]:
//! fed arbitrary byte chunks, it never panics, is segmentation-invariant
//! (byte-dribbled and batched input decode to the same request
//! sequence), and enforces caps before allocating — request line
//! (`414`), header section (`431`), body length (`413`, recoverable:
//! the oversized body is discarded and the connection resyncs at its
//! end).

use crate::proto::{
    self, ErrorCode, FrontendKind, Request, Response, WireLane, WireProblemReport, WireReport,
};
use crate::session::{
    DeliverFn, ParkedSubmit, ProblemSubmission, SessionCore, SubmitDisposition, WireConfig,
};
use crate::{faultinject, lock_unpoisoned};
use msropm_core::{BatchJob, MsropmConfig, ReinitMode};
use msropm_graph::Graph;
use msropm_problems::json::{self, Json};
use msropm_problems::{DecodedLane, DecodedSolution, ProblemClass, ProblemError, ProblemSpec};
use polling::{BackendKind, Event, Poller};
use std::collections::{HashMap, VecDeque};
use std::io::{Read as _, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Longest accepted request line (method + target + version), bytes.
pub const MAX_REQUEST_LINE: usize = 8 << 10;

/// Cap on the summed header-line bytes of one request.
pub const MAX_HEADER_BYTES: usize = 32 << 10;

/// Most header lines accepted in one request.
pub const MAX_HEADERS: usize = 128;

/// Largest accepted request body (same cap as a binary wire frame).
pub const MAX_BODY_LEN: u64 = proto::MAX_FRAME_LEN as u64;

/// Maps a typed wire error onto its HTTP status.
pub fn http_status(code: ErrorCode) -> u16 {
    match code {
        ErrorCode::Malformed => 400,
        ErrorCode::UnsupportedVerb => 405,
        ErrorCode::QuotaInFlight | ErrorCode::QuotaLanes => 429,
        ErrorCode::ShuttingDown | ErrorCode::Busy | ErrorCode::Draining => 503,
        ErrorCode::UnknownJob => 404,
        ErrorCode::Forbidden => 403,
        ErrorCode::DeadlineExceeded => 504,
        ErrorCode::Internal => 500,
        ErrorCode::UnsupportedProblem => 422,
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Content Too Large",
        414 => "URI Too Long",
        422 => "Unprocessable Content",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "Response",
    }
}

// ---------------------------------------------------------------------
// Incremental request parser
// ---------------------------------------------------------------------

/// One fully parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method, as sent (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// Target path, query string excluded.
    pub path: String,
    /// Raw query string (empty when absent).
    pub query: String,
    /// Header `(name, value)` pairs; names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The request body (exactly `Content-Length` bytes).
    pub body: Vec<u8>,
    /// Whether the connection may serve another request after this one.
    pub keep_alive: bool,
}

impl HttpRequest {
    /// First value of a header by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A parse failure: the HTTP status to answer with, a reason, and
/// whether the connection is desynced (`fatal`: respond then close) or
/// can resync and keep serving (`413` with a known body length).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpParseError {
    /// HTTP status code to answer with.
    pub status: u16,
    /// Human-readable detail.
    pub reason: String,
    /// `true` when request framing is lost and the connection must
    /// close after the error response.
    pub fatal: bool,
}

impl HttpParseError {
    fn fatal(status: u16, reason: impl Into<String>) -> HttpParseError {
        HttpParseError {
            status,
            reason: reason.into(),
            fatal: true,
        }
    }
}

struct Partial {
    method: String,
    path: String,
    query: String,
    version_keep_alive: bool,
    headers: Vec<(String, String)>,
    header_bytes: usize,
}

enum ParseState {
    Line,
    Headers(Box<Partial>),
    Body(Box<Partial>, usize),
    /// Discarding the body of an already-rejected oversized request;
    /// framing resyncs at its end.
    Skip(u64),
}

/// Incremental, panic-free HTTP/1.1 request parser; see the module
/// docs. Fed with [`HttpParser::push`], drained with
/// [`HttpParser::next_request`] — the same shape as
/// [`crate::proto::Decoder`].
pub struct HttpParser {
    buf: Vec<u8>,
    pos: usize,
    state: ParseState,
    poisoned: bool,
}

impl Default for HttpParser {
    fn default() -> Self {
        HttpParser::new()
    }
}

impl HttpParser {
    /// A fresh parser with no buffered bytes.
    pub fn new() -> HttpParser {
        HttpParser {
            buf: Vec::new(),
            pos: 0,
            state: ParseState::Line,
            poisoned: false,
        }
    }

    /// Appends raw transport bytes (any split).
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact lazily, like the frame decoder: shift the live tail
        // down once the consumed prefix dominates.
        if self.pos > 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered and not yet consumed by returned requests.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn avail(&self) -> &[u8] {
        &self.buf[self.pos..]
    }

    /// Takes the next `\n`-terminated line (stripping an optional
    /// trailing `\r`); `None` when incomplete. Fails once the
    /// unterminated prefix exceeds `cap`.
    fn take_line(
        &mut self,
        cap: usize,
        over: HttpParseError,
    ) -> Result<Option<String>, HttpParseError> {
        let avail = self.avail();
        match avail.iter().position(|&b| b == b'\n') {
            Some(i) => {
                if i > cap {
                    return Err(over);
                }
                let mut line = &avail[..i];
                if line.last() == Some(&b'\r') {
                    line = &line[..line.len() - 1];
                }
                let text = std::str::from_utf8(line)
                    .map_err(|_| HttpParseError::fatal(400, "non-UTF-8 in request head"))?
                    .to_string();
                self.pos += i + 1;
                Ok(Some(text))
            }
            None if avail.len() > cap => Err(over),
            None => Ok(None),
        }
    }

    /// Extracts the next complete request, `Ok(None)` when more bytes
    /// are needed.
    ///
    /// # Errors
    ///
    /// A fatal [`HttpParseError`] is sticky: the framing is lost and
    /// every later call repeats it. A non-fatal one (`413`) leaves the
    /// parser discarding the rejected body; parsing resumes at the
    /// next request boundary.
    pub fn next_request(&mut self) -> Result<Option<HttpRequest>, HttpParseError> {
        if self.poisoned {
            return Err(HttpParseError::fatal(400, "connection desynced"));
        }
        loop {
            match std::mem::replace(&mut self.state, ParseState::Line) {
                ParseState::Line => {
                    let line = match self.take_line(
                        MAX_REQUEST_LINE,
                        HttpParseError::fatal(414, "request line too long"),
                    ) {
                        Ok(Some(line)) => line,
                        Ok(None) => return Ok(None),
                        Err(e) => return self.poison(e),
                    };
                    // Tolerate blank line(s) before the request line
                    // (RFC 9112 §2.2 robustness).
                    if line.is_empty() {
                        continue;
                    }
                    match Self::parse_request_line(&line) {
                        Ok(partial) => self.state = ParseState::Headers(Box::new(partial)),
                        Err(e) => return self.poison(e),
                    }
                }
                ParseState::Headers(mut partial) => {
                    let line = match self.take_line(
                        MAX_HEADER_BYTES,
                        HttpParseError::fatal(431, "header line too long"),
                    ) {
                        Ok(Some(line)) => line,
                        Ok(None) => {
                            self.state = ParseState::Headers(partial);
                            return Ok(None);
                        }
                        Err(e) => return self.poison(e),
                    };
                    if line.is_empty() {
                        match Self::finish_headers(*partial) {
                            Ok((req, body_len)) => {
                                if body_len > MAX_BODY_LEN {
                                    // Recoverable: the caller answers
                                    // 413 while the parser discards
                                    // exactly `body_len` bytes, then
                                    // the connection keeps serving.
                                    self.state = ParseState::Skip(body_len);
                                    return Err(HttpParseError {
                                        status: 413,
                                        reason: format!(
                                            "body of {body_len} bytes exceeds cap {MAX_BODY_LEN}"
                                        ),
                                        fatal: false,
                                    });
                                }
                                if body_len == 0 {
                                    return Ok(Some(req));
                                }
                                self.state = ParseState::Body(
                                    Box::new(Self::reopen(req)),
                                    body_len as usize,
                                );
                            }
                            Err(e) => return self.poison(e),
                        }
                    } else {
                        if let Err(e) = Self::push_header(&mut partial, &line) {
                            return self.poison(e);
                        }
                        self.state = ParseState::Headers(partial);
                    }
                }
                ParseState::Body(partial, need) => {
                    if self.avail().len() < need {
                        self.state = ParseState::Body(partial, need);
                        return Ok(None);
                    }
                    let body = self.avail()[..need].to_vec();
                    self.pos += need;
                    let mut req = Self::complete(*partial);
                    req.body = body;
                    return Ok(Some(req));
                }
                ParseState::Skip(remaining) => {
                    let take = (self.avail().len() as u64).min(remaining);
                    self.pos += take as usize;
                    let left = remaining - take;
                    if left > 0 {
                        self.state = ParseState::Skip(left);
                        return Ok(None);
                    }
                }
            }
        }
    }

    fn poison(&mut self, e: HttpParseError) -> Result<Option<HttpRequest>, HttpParseError> {
        self.poisoned = true;
        Err(e)
    }

    fn parse_request_line(line: &str) -> Result<Partial, HttpParseError> {
        let mut parts = line.split(' ').filter(|p| !p.is_empty());
        let (Some(method), Some(target), Some(version), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(HttpParseError::fatal(400, "malformed request line"));
        };
        if method.is_empty() || method.len() > 16 || !method.bytes().all(|b| b.is_ascii_uppercase())
        {
            return Err(HttpParseError::fatal(400, "malformed method"));
        }
        let version_keep_alive = match version {
            "HTTP/1.1" => true,
            "HTTP/1.0" => false,
            _ => return Err(HttpParseError::fatal(505, "unsupported HTTP version")),
        };
        if !target.starts_with('/') {
            return Err(HttpParseError::fatal(
                400,
                "target must be an absolute path",
            ));
        }
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), q.to_string()),
            None => (target.to_string(), String::new()),
        };
        Ok(Partial {
            method: method.to_string(),
            path,
            query,
            version_keep_alive,
            headers: Vec::new(),
            header_bytes: 0,
        })
    }

    fn push_header(partial: &mut Partial, line: &str) -> Result<(), HttpParseError> {
        partial.header_bytes += line.len();
        if partial.header_bytes > MAX_HEADER_BYTES {
            return Err(HttpParseError::fatal(431, "header section too large"));
        }
        if partial.headers.len() >= MAX_HEADERS {
            return Err(HttpParseError::fatal(431, "too many header fields"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpParseError::fatal(400, "header line without ':'"));
        };
        if name.is_empty()
            || name
                .bytes()
                .any(|b| b <= b' ' || b == b'(' || b == b')' || !b.is_ascii_graphic())
        {
            return Err(HttpParseError::fatal(400, "malformed header name"));
        }
        partial
            .headers
            .push((name.to_ascii_lowercase(), value.trim().to_string()));
        Ok(())
    }

    /// Validates the header section and resolves body framing; returns
    /// the (bodiless) request plus its announced body length.
    fn finish_headers(partial: Partial) -> Result<(HttpRequest, u64), HttpParseError> {
        fn values<'a>(
            headers: &'a [(String, String)],
            name: &'a str,
        ) -> impl Iterator<Item = &'a String> + 'a {
            headers
                .iter()
                .filter(move |(n, _)| n == name)
                .map(|(_, v)| v)
        }
        let find_all = |name: &'static str| values(&partial.headers, name);
        if find_all("transfer-encoding").next().is_some() {
            return Err(HttpParseError::fatal(
                501,
                "transfer-encoding not supported",
            ));
        }
        let mut body_len = 0u64;
        let mut seen: Option<&str> = None;
        for value in find_all("content-length") {
            if seen.is_some_and(|prev| prev != value) {
                return Err(HttpParseError::fatal(400, "conflicting content-length"));
            }
            seen = Some(value);
            if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
                return Err(HttpParseError::fatal(400, "malformed content-length"));
            }
            // A digits-only value too large for u128 is over any cap.
            body_len = value
                .parse::<u128>()
                .map(|v| v.min(u64::MAX as u128) as u64)
                .unwrap_or(u64::MAX);
        }
        let keep_alive = {
            let connection = find_all("connection")
                .map(|v| v.to_ascii_lowercase())
                .collect::<Vec<_>>()
                .join(",");
            if connection.split(',').any(|t| t.trim() == "close") {
                false
            } else if connection.split(',').any(|t| t.trim() == "keep-alive") {
                true
            } else {
                partial.version_keep_alive
            }
        };
        let req = HttpRequest {
            method: partial.method,
            path: partial.path,
            query: partial.query,
            headers: partial.headers,
            body: Vec::new(),
            keep_alive,
        };
        Ok((req, body_len))
    }

    fn reopen(req: HttpRequest) -> Partial {
        Partial {
            method: req.method,
            path: req.path,
            query: req.query,
            version_keep_alive: req.keep_alive,
            headers: req.headers,
            header_bytes: 0,
        }
    }

    fn complete(partial: Partial) -> HttpRequest {
        HttpRequest {
            method: partial.method,
            path: partial.path,
            query: partial.query,
            headers: partial.headers,
            body: Vec::new(),
            keep_alive: partial.version_keep_alive,
        }
    }
}

// ---------------------------------------------------------------------
// Query strings
// ---------------------------------------------------------------------

/// Percent-decodes one query component (`+` is a space); `None` on a
/// truncated or non-hex escape or non-UTF-8 result.
fn pct_decode(s: &str) -> Option<String> {
    let raw = s.as_bytes();
    let mut out = Vec::with_capacity(raw.len());
    let mut i = 0;
    while i < raw.len() {
        match raw[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hi = raw.get(i + 1).and_then(|b| (*b as char).to_digit(16))?;
                let lo = raw.get(i + 2).and_then(|b| (*b as char).to_digit(16))?;
                out.push((hi * 16 + lo) as u8);
                i += 3;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

/// First value of `key` in a raw query string, percent-decoded.
fn query_param(query: &str, key: &str) -> Option<String> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        (pct_decode(k).as_deref() == Some(key)).then(|| pct_decode(v))?
    })
}

// ---------------------------------------------------------------------
// JSON request decoding
// ---------------------------------------------------------------------

/// A request-scoped API failure: the HTTP status, the wire-level error
/// code it corresponds to, and a message. Always answered on a live
/// connection.
struct ApiError {
    status: u16,
    code: ErrorCode,
    message: String,
}

fn bad(message: impl Into<String>) -> ApiError {
    ApiError {
        status: 400,
        code: ErrorCode::Malformed,
        message: message.into(),
    }
}

fn unsupported(message: impl Into<String>) -> ApiError {
    ApiError {
        status: 422,
        code: ErrorCode::UnsupportedProblem,
        message: message.into(),
    }
}

fn not_found(message: impl Into<String>) -> ApiError {
    ApiError {
        status: 404,
        code: ErrorCode::UnknownJob,
        message: message.into(),
    }
}

fn method_not_allowed() -> ApiError {
    ApiError {
        status: 405,
        code: ErrorCode::UnsupportedVerb,
        message: "method not allowed for this path".into(),
    }
}

/// The JSON error body every failure path renders:
/// `{"error": <name>, "code": <wire code>, "message": <detail>}`.
fn error_body(code: ErrorCode, message: &str) -> Json {
    Json::Obj(vec![
        ("error".into(), Json::Str(code.to_string())),
        ("code".into(), Json::Num(code as u16 as f64)),
        ("message".into(), Json::Str(message.into())),
    ])
}

fn parse_json_body(body: &[u8]) -> Result<Json, ApiError> {
    let text = std::str::from_utf8(body).map_err(|_| bad("body is not UTF-8"))?;
    json::parse(text).map_err(|e| bad(format!("invalid JSON: {e}")))
}

fn as_obj(j: &Json) -> Result<&[(String, Json)], ApiError> {
    match j {
        Json::Obj(fields) => Ok(fields),
        _ => Err(bad("expected a JSON object")),
    }
}

fn get<'a>(fields: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Optional unsigned integer field; accepts a JSON number or (for
/// full-width u64s such as seeds) a decimal string.
fn get_u64(fields: &[(String, Json)], key: &str) -> Result<Option<u64>, ApiError> {
    match get(fields, key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            bad(format!(
                "field \"{key}\" must be an unsigned integer (number or decimal string)"
            ))
        }),
    }
}

fn get_tenant(fields: &[(String, Json)]) -> Result<String, ApiError> {
    let tenant = get(fields, "tenant")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing \"tenant\" string"))?;
    if tenant.is_empty() || tenant.len() > proto::MAX_TENANT_LEN {
        return Err(bad(format!(
            "tenant must be 1..={} bytes",
            proto::MAX_TENANT_LEN
        )));
    }
    Ok(tenant.to_string())
}

fn get_f64(value: &Json, key: &str) -> Result<f64, ApiError> {
    match value {
        Json::Num(x) => Ok(*x),
        _ => Err(bad(format!("config field \"{key}\" must be a number"))),
    }
}

fn get_finite_nonneg(value: &Json, key: &str) -> Result<f64, ApiError> {
    let x = get_f64(value, key)?;
    if !x.is_finite() || x < 0.0 {
        return Err(bad(format!(
            "config field \"{key}\" must be finite and non-negative"
        )));
    }
    Ok(x)
}

fn parse_reinit(value: &Json) -> Result<ReinitMode, ApiError> {
    let fields = as_obj(value)?;
    let mode = get(fields, "mode")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("reinit needs a \"mode\" string"))?;
    match mode {
        "uniform" => Ok(ReinitMode::UniformRandom),
        "jitter-drift" => {
            let sigma = match get(fields, "sigma") {
                None | Some(Json::Null) => 0.0,
                Some(v) => get_finite_nonneg(v, "sigma")?,
            };
            Ok(ReinitMode::JitterDrift { sigma })
        }
        other => Err(bad(format!(
            "reinit mode \"{other}\" is not \"uniform\" or \"jitter-drift\""
        ))),
    }
}

/// Overrides [`MsropmConfig::paper_default`] field-by-field from a JSON
/// object, with the same validation the binary decoder applies
/// (`num_colors` a power of two ≥ 2, f64 knobs finite and non-negative,
/// `dt` positive). Unknown keys are a `400` — a typoed knob must not
/// silently run at the default.
fn parse_config(value: &Json) -> Result<MsropmConfig, ApiError> {
    let fields = as_obj(value)?;
    let mut c = MsropmConfig::paper_default();
    for (key, v) in fields {
        match key.as_str() {
            "num_colors" => {
                let n = v
                    .as_u64()
                    .ok_or_else(|| bad("num_colors must be an unsigned integer"))?
                    as usize;
                if n < 2 || !n.is_power_of_two() || n > u16::MAX as usize + 1 {
                    return Err(bad("num_colors must be a power of two in [2, 65536]"));
                }
                c.num_colors = n;
            }
            "coupling_strength" => c.coupling_strength = get_finite_nonneg(v, key)?,
            "shil_strength" => c.shil_strength = get_finite_nonneg(v, key)?,
            "noise" => c.noise = get_finite_nonneg(v, key)?,
            "frequency_spread" => c.frequency_spread = get_finite_nonneg(v, key)?,
            "t_init" => c.t_init = get_finite_nonneg(v, key)?,
            "t_anneal" => c.t_anneal = get_finite_nonneg(v, key)?,
            "t_lock" => c.t_lock = get_finite_nonneg(v, key)?,
            "dt" => {
                let x = get_f64(v, key)?;
                if !x.is_finite() || x <= 0.0 {
                    return Err(bad("dt must be positive and finite"));
                }
                c.dt = x;
            }
            "shil_ramp" => {
                c.shil_ramp = v
                    .as_bool()
                    .ok_or_else(|| bad("shil_ramp must be a boolean"))?;
            }
            "reinit" => c.reinit = parse_reinit(v)?,
            "backend" => {
                let name = v.as_str().ok_or_else(|| bad("backend must be a string"))?;
                c.backend = msropm_core::KernelBackend::from_name(name).ok_or_else(|| {
                    bad(format!("backend \"{name}\" is not \"f64\" or \"fixed\""))
                })?;
            }
            other => return Err(bad(format!("unknown config field \"{other}\""))),
        }
    }
    Ok(c)
}

fn get_config(fields: &[(String, Json)]) -> Result<MsropmConfig, ApiError> {
    match get(fields, "config") {
        None | Some(Json::Null) => Ok(MsropmConfig::paper_default()),
        Some(value) => parse_config(value),
    }
}

fn get_replicas(fields: &[(String, Json)]) -> Result<usize, ApiError> {
    let replicas = get_u64(fields, "replicas")?.unwrap_or(1);
    if replicas == 0 || replicas > proto::MAX_JOB_LANES as u64 {
        return Err(bad(format!(
            "replicas must be 1..={}",
            proto::MAX_JOB_LANES
        )));
    }
    Ok(replicas as usize)
}

/// Node cap for JSON-submitted graphs: a few bytes of JSON must not
/// drive a multi-GB adjacency allocation. (The binary wire gets the
/// equivalent bound for free from its frame-length cap.)
const MAX_JSON_GRAPH_NODES: u64 = 8_000_000;

fn parse_graph(value: &Json) -> Result<Graph, ApiError> {
    let fields = as_obj(value)?;
    let nodes = get_u64(fields, "nodes")?.ok_or_else(|| bad("graph needs a \"nodes\" count"))?;
    if nodes > MAX_JSON_GRAPH_NODES {
        return Err(bad(format!(
            "graph exceeds the gateway cap of {MAX_JSON_GRAPH_NODES} nodes"
        )));
    }
    let Some(Json::Arr(edges)) = get(fields, "edges") else {
        return Err(bad("graph needs an \"edges\" array"));
    };
    let mut pairs = Vec::with_capacity(edges.len());
    for edge in edges {
        let Json::Arr(pair) = edge else {
            return Err(bad("each edge must be a [u, v] pair"));
        };
        let (Some(u), Some(v)) = (
            pair.first().and_then(Json::as_u64),
            pair.get(1).and_then(Json::as_u64),
        ) else {
            return Err(bad("each edge must be a [u, v] pair of node indices"));
        };
        if pair.len() != 2 {
            return Err(bad("each edge must be a [u, v] pair"));
        }
        pairs.push((u as usize, v as usize));
    }
    Graph::from_edges(nodes as usize, pairs).map_err(|e| bad(format!("bad graph: {e}")))
}

/// Decodes a `POST /v1/jobs` body into a raw submit.
fn parse_submit_job(body: &[u8]) -> Result<(String, Graph, BatchJob, u64), ApiError> {
    let j = parse_json_body(body)?;
    let fields = as_obj(&j)?;
    let tenant = get_tenant(fields)?;
    let graph = parse_graph(get(fields, "graph").ok_or_else(|| bad("missing \"graph\""))?)?;
    let replicas = get_replicas(fields)?;
    let seed = get_u64(fields, "seed")?.unwrap_or(0);
    let deadline_ms = get_u64(fields, "deadline_ms")?.unwrap_or(0);
    let config = get_config(fields)?;
    Ok((
        tenant,
        graph,
        BatchJob::uniform(config, replicas, seed),
        deadline_ms,
    ))
}

/// Decodes a `POST /v1/problems` body into a typed problem submission.
/// The `input` text is the class's native format (DIMACS `.col`,
/// DIMACS CNF, weight list, QUBO/Ising JSON), exactly as `solve_remote`
/// reads from disk.
fn parse_submit_problem(body: &[u8]) -> Result<ProblemSubmission, ApiError> {
    let j = parse_json_body(body)?;
    let fields = as_obj(&j)?;
    let tenant = get_tenant(fields)?;
    let class_name = get(fields, "class")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing \"class\" string"))?;
    let class = ProblemClass::from_name(class_name)
        .ok_or_else(|| unsupported(format!("unknown problem class \"{class_name}\"")))?;
    let input = get(fields, "input")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing \"input\" text"))?;
    let k = get_u64(fields, "k")?.unwrap_or(0);
    if k > u16::MAX as u64 {
        return Err(bad("k out of range"));
    }
    let spec = ProblemSpec::from_text(class, input, k as u16).map_err(|e| match e {
        ProblemError::Parse(msg) => bad(format!("cannot parse {} input: {msg}", class.name())),
        ProblemError::Unsupported(msg) => unsupported(msg),
    })?;
    let replicas = get_replicas(fields)?;
    let seed = get_u64(fields, "seed")?.unwrap_or(0);
    let deadline_ms = get_u64(fields, "deadline_ms")?.unwrap_or(0);
    let config = get_config(fields)?;
    Ok(ProblemSubmission {
        tenant,
        spec,
        config,
        replicas: replicas as u32,
        seed,
        deadline_ms,
    })
}

// ---------------------------------------------------------------------
// JSON response rendering
// ---------------------------------------------------------------------
//
// Full-width u64 fields (hashes, fingerprints, seeds) travel as decimal
// strings — a JSON number is an f64 and drops bits past 2^53. Timing
// and count fields stay numbers. f64 payloads (accuracy, objective) are
// bit-exact through the shortest-round-trip `Display`.

fn lane_json(lane: &WireLane) -> Json {
    Json::Obj(vec![
        ("lane".into(), Json::Num(lane.lane as f64)),
        ("seed".into(), Json::u64_str(lane.seed)),
        ("conflicts".into(), Json::Num(lane.conflicts as f64)),
        ("accuracy".into(), Json::Num(lane.accuracy)),
        (
            "coloring".into(),
            Json::Arr(lane.coloring.iter().map(|&c| Json::Num(c as f64)).collect()),
        ),
    ])
}

fn report_json(report: &WireReport) -> Json {
    Json::Obj(vec![
        ("type".into(), Json::Str("report".into())),
        ("job_id".into(), Json::Num(report.job_id as f64)),
        ("graph_hash".into(), Json::u64_str(report.graph_hash)),
        ("seed".into(), Json::u64_str(report.seed)),
        ("queued_us".into(), Json::Num(report.queued_us as f64)),
        ("service_us".into(), Json::Num(report.service_us as f64)),
        (
            "ranked".into(),
            Json::Arr(report.ranked.iter().map(lane_json).collect()),
        ),
    ])
}

fn solution_json(solution: &DecodedSolution) -> Json {
    let (kind, values) = match solution {
        DecodedSolution::Coloring(colors) => (
            "coloring",
            colors.iter().map(|&c| Json::Num(c as f64)).collect(),
        ),
        DecodedSolution::CutSides(sides) => {
            ("cut_sides", sides.iter().map(|&b| Json::Bool(b)).collect())
        }
        DecodedSolution::Subset(members) => (
            "subset",
            members.iter().map(|&v| Json::Num(v as f64)).collect(),
        ),
        DecodedSolution::Partition(sides) => {
            ("partition", sides.iter().map(|&b| Json::Bool(b)).collect())
        }
        DecodedSolution::Assignment(truth) => {
            ("assignment", truth.iter().map(|&b| Json::Bool(b)).collect())
        }
        DecodedSolution::Spins(spins) => ("spins", spins.iter().map(|&b| Json::Bool(b)).collect()),
    };
    Json::Obj(vec![
        ("kind".into(), Json::Str(kind.into())),
        ("values".into(), Json::Arr(values)),
    ])
}

fn decoded_lane_json(lane: &DecodedLane) -> Json {
    Json::Obj(vec![
        ("lane".into(), Json::Num(lane.lane as f64)),
        ("seed".into(), Json::u64_str(lane.seed)),
        ("objective".into(), Json::Num(lane.objective)),
        ("feasible".into(), Json::Bool(lane.feasible)),
        ("solution".into(), solution_json(&lane.solution)),
    ])
}

fn problem_report_json(report: &WireProblemReport) -> Json {
    Json::Obj(vec![
        ("type".into(), Json::Str("problem_report".into())),
        ("job_id".into(), Json::Num(report.job_id as f64)),
        ("queued_us".into(), Json::Num(report.queued_us as f64)),
        ("service_us".into(), Json::Num(report.service_us as f64)),
        ("class".into(), Json::Str(report.report.class.name().into())),
        (
            "problem_fingerprint".into(),
            Json::u64_str(report.report.problem_fingerprint),
        ),
        ("graph_hash".into(), Json::u64_str(report.report.graph_hash)),
        ("seed".into(), Json::u64_str(report.report.seed)),
        (
            "ranked".into(),
            Json::Arr(report.report.ranked.iter().map(decoded_lane_json).collect()),
        ),
    ])
}

// ---------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------

/// Poller key of the listener; connections are keyed
/// `FIRST_CONN_KEY + slab index`.
const KEY_LISTENER: usize = 0;
const FIRST_CONN_KEY: usize = 1;

/// How long a draining loop keeps trying to flush queued responses to
/// slow readers before giving up.
const DRAIN_FLUSH_DEADLINE: Duration = Duration::from_secs(5);

/// Most terminal frames retained for `GET /v1/jobs/{id}` — matches the
/// session registry's terminal-status window, so a pollable report
/// outlives neither its status entry nor this cap.
const TERMINAL_FRAMES_RETAINED: usize = 4096;

/// Knobs for [`HttpServer::bind`].
#[derive(Debug, Clone)]
pub struct HttpConfig {
    /// Session semantics: worker pool, quotas, connection cap.
    pub wire: WireConfig,
    /// Per-connection pending-output cap; a consumer further behind
    /// than this is dropped.
    pub max_write_buffer: usize,
    /// Force the portable `poll(2)` backend instead of epoll.
    pub poll_backend: bool,
}

impl Default for HttpConfig {
    fn default() -> Self {
        HttpConfig {
            wire: WireConfig::default(),
            max_write_buffer: 8 << 20,
            poll_backend: false,
        }
    }
}

/// The cross-thread surface of the HTTP loop: poller (for wakeups) and
/// completion inbox.
struct HttpShared {
    poller: Poller,
    inbox: Mutex<HttpInbox>,
    /// Jobs admitted here whose completion has not yet been pushed into
    /// the inbox; the exit check waits for zero so no terminal frame is
    /// lost in the worker→loop handoff.
    pending_jobs: AtomicUsize,
}

#[derive(Default)]
struct HttpInbox {
    completions: Vec<HttpCompletion>,
    exit: bool,
}

/// A job's terminal frame crossing from a worker thread to the loop.
/// HTTP being poll-based, completions are keyed by job id — not by
/// connection — so the submitting connection may die and any later
/// connection of the same tenant can still collect the report.
struct HttpCompletion {
    job_id: u64,
    /// The pre-encoded binary terminal frame; `None` for a cancelled
    /// job.
    frame: Option<Vec<u8>>,
}

/// Increments the pending-job count for exactly as long as a deliver
/// callback is outstanding (dropped-unfired included), mirroring the
/// reactor's guard.
struct PendingGuard(Arc<HttpShared>);

impl PendingGuard {
    fn new(shared: Arc<HttpShared>) -> PendingGuard {
        shared.pending_jobs.fetch_add(1, Ordering::AcqRel);
        PendingGuard(shared)
    }
}

impl Drop for PendingGuard {
    fn drop(&mut self) {
        self.0.pending_jobs.fetch_sub(1, Ordering::AcqRel);
        let _ = self.0.poller.notify();
    }
}

/// One HTTP connection's state machine.
struct HttpConn {
    stream: TcpStream,
    parser: HttpParser,
    /// Encoded-but-unsent bytes (`out[out_pos..]` is pending).
    out: Vec<u8>,
    out_pos: usize,
    /// (read, write) interest currently registered with the poller.
    registered: (bool, bool),
    read_eof: bool,
    /// Flush queued output, then close (fatal parse error, explicit
    /// `connection: close`, or HTTP/1.0).
    closing: bool,
}

impl HttpConn {
    fn pending_out(&self) -> usize {
        self.out.len() - self.out_pos
    }
}

/// A terminal frame retained for polling; `served` dedupes the
/// reports-streamed accounting across repeated GETs.
struct TerminalEntry {
    frame: Option<Vec<u8>>,
    served: bool,
}

/// Bounded job-id-keyed retention of terminal frames.
#[derive(Default)]
struct TerminalStore {
    entries: HashMap<u64, TerminalEntry>,
    order: VecDeque<u64>,
}

impl TerminalStore {
    fn insert(&mut self, job_id: u64, frame: Option<Vec<u8>>) {
        if self
            .entries
            .insert(
                job_id,
                TerminalEntry {
                    frame,
                    served: false,
                },
            )
            .is_none()
        {
            self.order.push_back(job_id);
        }
        while self.order.len() > TERMINAL_FRAMES_RETAINED {
            if let Some(old) = self.order.pop_front() {
                self.entries.remove(&old);
            }
        }
    }
}

/// The HTTP/1.1 + JSON front end; see the module docs.
pub struct HttpServer {
    core: Arc<SessionCore>,
    local_addr: SocketAddr,
    shared: Arc<HttpShared>,
    handle: Option<thread::JoinHandle<()>>,
    down: bool,
}

impl HttpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// event loop; the backing worker pool boots immediately.
    ///
    /// # Errors
    ///
    /// Propagates bind and poller-creation failures.
    pub fn bind<A: ToSocketAddrs>(addr: A, config: HttpConfig) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let core = SessionCore::new(config.wire, FrontendKind::Http);
        let backend = if config.poll_backend {
            BackendKind::Poll
        } else {
            BackendKind::Epoll
        };
        let shared = Arc::new(HttpShared {
            poller: Poller::with_backend(backend)?,
            inbox: Mutex::new(HttpInbox::default()),
            pending_jobs: AtomicUsize::new(0),
        });
        shared
            .poller
            .add(listener.as_raw_fd(), Event::readable(KEY_LISTENER))?;
        let http_loop = HttpLoop {
            core: Arc::clone(&core),
            shared: Arc::clone(&shared),
            listener: Some(listener),
            slab: Vec::new(),
            free: Vec::new(),
            parked: Vec::new(),
            terminals: TerminalStore::default(),
            max_wbuf: config.max_write_buffer,
            exiting: false,
            exit_deadline: None,
        };
        let handle = thread::Builder::new()
            .name("msropm-http".into())
            .spawn(move || http_loop.run())
            .expect("spawn http loop");
        Ok(HttpServer {
            core,
            local_addr,
            shared,
            handle: Some(handle),
            down: false,
        })
    }

    /// The bound address (reports the ephemeral port after `bind(":0")`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Current server-wide counters as the legacy wire struct.
    pub fn stats(&self) -> proto::WireStats {
        self.core.wire_stats()
    }

    /// Current server-wide counters as the named registry.
    pub fn registry(&self) -> crate::stats::Registry {
        self.core.stats_registry()
    }

    /// Report bodies actually served to a `GET /v1/jobs/{id}` (each
    /// report counted once, however often it is re-polled).
    pub fn reports_streamed(&self) -> u64 {
        self.core.reports_streamed()
    }

    /// Graceful drain: stop admitting, wait for every admitted job to
    /// reach a terminal state, flush what can be flushed, join the
    /// loop.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        if self.down {
            return;
        }
        self.down = true;
        self.core.begin_drain();
        self.core.await_drained();
        lock_unpoisoned(&self.shared.inbox).exit = true;
        let _ = self.shared.poller.notify();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    /// Dropping the front end performs the same graceful drain as
    /// [`HttpServer::shutdown`].
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// The event loop's full state; `run` is the thread body.
struct HttpLoop {
    core: Arc<SessionCore>,
    shared: Arc<HttpShared>,
    listener: Option<TcpListener>,
    slab: Vec<Option<HttpConn>>,
    free: Vec<usize>,
    parked: Vec<ParkedSubmit>,
    terminals: TerminalStore,
    max_wbuf: usize,
    exiting: bool,
    exit_deadline: Option<Instant>,
}

impl HttpLoop {
    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            let timeout = if !self.parked.is_empty() {
                // A parked submit can also become enqueueable when a
                // worker picks up a job (which signals nothing), so
                // poll on a short tick rather than relying purely on
                // completion wakeups.
                Some(Duration::from_millis(10))
            } else if self.exiting {
                Some(Duration::from_millis(20))
            } else {
                None
            };
            if self.shared.poller.wait(&mut events, timeout).is_err() {
                break;
            }
            self.handle_inbox();
            for &ev in &events {
                if ev.key == KEY_LISTENER {
                    self.accept_ready();
                } else {
                    self.conn_event(ev);
                }
            }
            self.retry_parked();
            if self.exiting && self.ready_to_exit() {
                break;
            }
        }
        self.teardown();
    }

    /// Drains the cross-thread inbox: file terminal frames, observe the
    /// exit flag.
    fn handle_inbox(&mut self) {
        let (completions, exit) = {
            let mut inbox = lock_unpoisoned(&self.shared.inbox);
            (std::mem::take(&mut inbox.completions), inbox.exit)
        };
        if exit && !self.exiting {
            self.exiting = true;
            self.exit_deadline = Some(Instant::now() + DRAIN_FLUSH_DEADLINE);
            if let Some(listener) = self.listener.take() {
                let _ = self.shared.poller.delete(listener.as_raw_fd());
            }
        }
        for completion in completions {
            self.terminals.insert(completion.job_id, completion.frame);
        }
    }

    /// Pulls any already-delivered completions into the terminal store
    /// without waiting for the next poll wakeup — `job_status` calls
    /// this when the session says a job is terminal but its frame has
    /// not been filed yet (the worker updates the status cell before
    /// the completion hook pushes the frame through the inbox).
    fn drain_completions(&mut self) {
        let completions = std::mem::take(&mut lock_unpoisoned(&self.shared.inbox).completions);
        for completion in completions {
            self.terminals.insert(completion.job_id, completion.frame);
        }
    }

    /// Accepts until the listener would block.
    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if self.core.at_connection_cap() {
                        // Over the cap: one best-effort 503 (the stream
                        // is still blocking), then close.
                        let body = error_body(ErrorCode::Busy, "connection cap reached").render();
                        let head = format!(
                            "HTTP/1.1 503 {}\r\ncontent-type: application/json\r\n\
                             content-length: {}\r\nconnection: close\r\n\r\n",
                            status_text(503),
                            body.len()
                        );
                        let _ = (&stream).write_all(head.as_bytes());
                        let _ = (&stream).write_all(body.as_bytes());
                        continue;
                    }
                    self.core.connection_opened();
                    let _ = stream.set_nodelay(true);
                    self.register(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }

    /// Installs an accepted connection into the slab and poller.
    fn register(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            self.core.connection_closed();
            return;
        }
        let idx = self.free.pop().unwrap_or_else(|| {
            self.slab.push(None);
            self.slab.len() - 1
        });
        let key = idx + FIRST_CONN_KEY;
        if self
            .shared
            .poller
            .add(stream.as_raw_fd(), Event::readable(key))
            .is_err()
        {
            self.free.push(idx);
            self.core.connection_closed();
            return;
        }
        self.slab[idx] = Some(HttpConn {
            stream,
            parser: HttpParser::new(),
            out: Vec::new(),
            out_pos: 0,
            registered: (true, false),
            read_eof: false,
            closing: false,
        });
    }

    fn conn_mut(&mut self, idx: usize) -> Option<&mut HttpConn> {
        self.slab.get_mut(idx).and_then(Option::as_mut)
    }

    fn close(&mut self, idx: usize) {
        if let Some(conn) = self.slab.get_mut(idx).and_then(Option::take) {
            let _ = self.shared.poller.delete(conn.stream.as_raw_fd());
            self.free.push(idx);
            self.core.connection_closed();
        }
    }

    /// Dispatches one readiness event for a connection slot.
    fn conn_event(&mut self, ev: Event) {
        let idx = ev.key - FIRST_CONN_KEY;
        let Some(conn) = self.conn_mut(idx) else {
            return;
        };
        if conn.registered == (false, false) {
            // Level-triggered error/hang-up on a connection with no
            // registered interest: nothing to read or flush, close it
            // rather than spin.
            self.close(idx);
            return;
        }
        if ev.writable {
            self.flush(idx);
        }
        let readable = ev.readable
            && self
                .conn_mut(idx)
                .is_some_and(|conn| !conn.read_eof && !conn.closing);
        if readable {
            self.conn_read(idx);
        }
        self.maybe_close(idx);
        self.update_interest(idx);
    }

    /// Reads until the socket would block, feeding the request parser.
    fn conn_read(&mut self, idx: usize) {
        let mut buf = [0u8; 16 << 10];
        loop {
            let Some(conn) = self.conn_mut(idx) else {
                return;
            };
            match (&conn.stream).read(&mut buf) {
                Ok(0) => {
                    conn.read_eof = true;
                    return;
                }
                Ok(n) => {
                    conn.parser.push(&buf[..n]);
                    if !self.drain_requests(idx) {
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close(idx);
                    return;
                }
            }
        }
    }

    /// Pulls every complete request out of the parser; `false` once the
    /// connection should stop being read.
    fn drain_requests(&mut self, idx: usize) -> bool {
        loop {
            let step = {
                let Some(conn) = self.conn_mut(idx) else {
                    return false;
                };
                match conn.parser.next_request() {
                    Ok(Some(req)) => Ok(req),
                    Ok(None) => return true,
                    Err(e) => {
                        if e.fatal {
                            conn.closing = true;
                        }
                        Err(e)
                    }
                }
            };
            match step {
                Ok(req) => {
                    let keep = req.keep_alive;
                    self.handle_request(idx, req);
                    if self.conn_mut(idx).is_none() {
                        return false;
                    }
                    if !keep {
                        return false;
                    }
                }
                Err(e) => {
                    // Framing errors answer with the parser's status;
                    // only fatal ones (desync) close the connection —
                    // an oversized body is discarded and serving
                    // continues (hostile input must not take the
                    // connection down).
                    let fatal = e.fatal;
                    let body = error_body(ErrorCode::Malformed, &e.reason).render();
                    self.respond(idx, e.status, "application/json", body.as_bytes(), fatal);
                    if fatal {
                        return false;
                    }
                }
            }
        }
    }

    /// The deliver callback for a submit admitted on this loop: push
    /// the terminal frame into the inbox, keyed by job id.
    fn deliver_hook(&self) -> DeliverFn {
        let guard = PendingGuard::new(Arc::clone(&self.shared));
        let shared = Arc::clone(&self.shared);
        Box::new(move |_core, job_id, frame| {
            lock_unpoisoned(&shared.inbox)
                .completions
                .push(HttpCompletion { job_id, frame });
            // The guard's drop decrements the pending count and wakes
            // the loop *after* the completion is visible in the inbox.
            drop(guard);
        })
    }

    /// Routes one parsed request. `close` mirrors the request's
    /// keep-alive decision into the response headers.
    fn handle_request(&mut self, idx: usize, req: HttpRequest) {
        let close = !req.keep_alive;
        match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/v1/jobs") => match parse_submit_job(&req.body) {
                Ok((tenant, graph, job, deadline_ms)) => {
                    let deliver = self.deliver_hook();
                    let disposition =
                        self.core
                            .submit_nonblocking(tenant, graph, job, deadline_ms, deliver);
                    self.submit_reply(idx, disposition, close);
                }
                Err(e) => self.respond_api_error(idx, &e, close),
            },
            ("POST", "/v1/problems") => match parse_submit_problem(&req.body) {
                Ok(sub) => {
                    let deliver = self.deliver_hook();
                    let disposition = self.core.submit_problem_nonblocking(sub, deliver);
                    self.submit_reply(idx, disposition, close);
                }
                Err(e) => self.respond_api_error(idx, &e, close),
            },
            ("GET", "/v1/stats") => {
                let registry = self.core.stats_registry();
                let counters = registry
                    .iter()
                    .map(|(def, value)| (def.name.to_string(), Json::Num(value as f64)))
                    .collect();
                let body = Json::Obj(vec![
                    (
                        "frontend".into(),
                        Json::Str(registry.frontend().to_string()),
                    ),
                    ("counters".into(), Json::Obj(counters)),
                ]);
                self.respond_json(idx, 200, &body, close);
            }
            ("GET", "/metrics") => {
                let text = self.core.stats_registry().render_prometheus();
                self.respond(
                    idx,
                    200,
                    "text/plain; version=0.0.4",
                    text.as_bytes(),
                    close,
                );
            }
            (method, path) if path.starts_with("/v1/jobs/") => {
                let id = &path["/v1/jobs/".len()..];
                let Ok(job_id) = id.parse::<u64>() else {
                    return self.respond_api_error(idx, &not_found("no such job resource"), close);
                };
                let Some(tenant) = query_param(&req.query, "tenant") else {
                    return self.respond_api_error(
                        idx,
                        &bad("missing \"tenant\" query parameter"),
                        close,
                    );
                };
                match method {
                    "GET" => {
                        let (status, body) = self.job_status(&tenant, job_id);
                        self.respond_json(idx, status, &body, close);
                    }
                    "DELETE" => {
                        let (status, body) = self.job_cancel(&tenant, job_id);
                        self.respond_json(idx, status, &body, close);
                    }
                    _ => self.respond_api_error(idx, &method_not_allowed(), close),
                }
            }
            (_, "/v1/jobs") | (_, "/v1/problems") | (_, "/v1/stats") | (_, "/metrics") => {
                self.respond_api_error(idx, &method_not_allowed(), close)
            }
            _ => self.respond_api_error(idx, &not_found("no such resource"), close),
        }
    }

    /// Applies a submit disposition: park queue-full admissions and map
    /// the reply (`Submitted` → `202`, typed errors → their status).
    fn submit_reply(&mut self, idx: usize, disposition: SubmitDisposition, close: bool) {
        let resp = match disposition {
            SubmitDisposition::Reply(resp) => resp,
            SubmitDisposition::Parked(parked, resp) => {
                self.parked.push(parked);
                resp
            }
        };
        match resp {
            Response::Submitted { job_id } => {
                let body = Json::Obj(vec![("job_id".into(), Json::Num(job_id as f64))]);
                self.respond_json(idx, 202, &body, close);
            }
            Response::Error { code, message } => {
                self.respond_json(idx, http_status(code), &error_body(code, &message), close)
            }
            _ => self.respond_json(
                idx,
                500,
                &error_body(ErrorCode::Internal, "unexpected submit reply"),
                close,
            ),
        }
    }

    /// `GET /v1/jobs/{id}`: the session's status answer, upgraded with
    /// the retained terminal frame once there is one. A terminal
    /// `JobFailed` answers with the failure's mapped status (`504` for
    /// an expired deadline).
    fn job_status(&mut self, tenant: &str, job_id: u64) -> (u16, Json) {
        let resp = self
            .core
            .handle_control(&Request::Status {
                tenant: tenant.to_string(),
                job_id,
            })
            .expect("status is a control verb");
        let mut state = match resp {
            Response::StatusReply { state, .. } => state,
            Response::Error { code, message } => {
                return (http_status(code), error_body(code, &message));
            }
            _ => {
                return (
                    500,
                    error_body(ErrorCode::Internal, "unexpected status reply"),
                );
            }
        };
        // `done`/`failed` promise a report (or typed error) in the same
        // body, but the worker flips the status cell before its
        // completion hook files the frame here. Pull pending
        // completions in; if the frame is still in flight, answer
        // `running` — the next poll will see both flip together.
        if matches!(state, crate::JobState::Done | crate::JobState::Failed)
            && !self.terminals.entries.contains_key(&job_id)
        {
            self.drain_completions();
            if !self.terminals.entries.contains_key(&job_id) {
                state = crate::JobState::Running;
            }
        }
        let mut fields = vec![
            ("job_id".into(), Json::Num(job_id as f64)),
            ("state".into(), Json::Str(state.to_string())),
        ];
        if let Some(entry) = self.terminals.entries.get_mut(&job_id) {
            match entry.frame.as_deref().map(proto::decode_response) {
                Some(Ok(Response::Report(report))) => {
                    if !entry.served {
                        entry.served = true;
                        self.core.note_report_streamed();
                    }
                    fields.push(("report".into(), report_json(&report)));
                }
                Some(Ok(Response::ProblemReport(report))) => {
                    if !entry.served {
                        entry.served = true;
                        self.core.note_report_streamed();
                    }
                    fields.push(("report".into(), problem_report_json(&report)));
                }
                Some(Ok(Response::JobFailed { code, message, .. })) => {
                    fields.push(("error".into(), error_body(code, &message)));
                    return (http_status(code), Json::Obj(fields));
                }
                Some(_) => {
                    return (
                        500,
                        error_body(ErrorCode::Internal, "corrupt terminal frame"),
                    );
                }
                // A cancelled job retains no frame; the state already
                // says "cancelled".
                None => {}
            }
        }
        (200, Json::Obj(fields))
    }

    /// `DELETE /v1/jobs/{id}`: cooperative cancel through the session.
    fn job_cancel(&mut self, tenant: &str, job_id: u64) -> (u16, Json) {
        let resp = self
            .core
            .handle_control(&Request::Cancel {
                tenant: tenant.to_string(),
                job_id,
            })
            .expect("cancel is a control verb");
        match resp {
            Response::CancelReply { job_id, state } => (
                200,
                Json::Obj(vec![
                    ("job_id".into(), Json::Num(job_id as f64)),
                    ("state".into(), Json::Str(state.to_string())),
                ]),
            ),
            Response::Error { code, message } => (http_status(code), error_body(code, &message)),
            _ => (
                500,
                error_body(ErrorCode::Internal, "unexpected cancel reply"),
            ),
        }
    }

    fn respond_api_error(&mut self, idx: usize, e: &ApiError, close: bool) {
        self.respond_json(idx, e.status, &error_body(e.code, &e.message), close);
    }

    fn respond_json(&mut self, idx: usize, status: u16, body: &Json, close: bool) {
        let text = body.render();
        self.respond(idx, status, "application/json", text.as_bytes(), close);
    }

    /// Queues one response (head + body), flushes opportunistically,
    /// and drops slow consumers over the write-buffer cap. `close`
    /// advertises `connection: close` and stops reading further
    /// requests.
    fn respond(&mut self, idx: usize, status: u16, content_type: &str, body: &[u8], close: bool) {
        {
            let Some(conn) = self.conn_mut(idx) else {
                return;
            };
            let head = format!(
                "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\n\
                 content-length: {}\r\n{}\r\n",
                status_text(status),
                body.len(),
                if close { "connection: close\r\n" } else { "" }
            );
            conn.out.extend_from_slice(head.as_bytes());
            conn.out.extend_from_slice(body);
            if close {
                conn.closing = true;
            }
        }
        self.flush(idx);
        if let Some(conn) = self.conn_mut(idx) {
            if conn.pending_out() > self.max_wbuf {
                // Slow consumer: drop it instead of holding the memory.
                self.close(idx);
                return;
            }
        }
        self.update_interest(idx);
    }

    /// Retries parked submits; keeps whatever is still blocked on a
    /// full queue.
    fn retry_parked(&mut self) {
        if self.parked.is_empty() {
            return;
        }
        let parked = std::mem::take(&mut self.parked);
        for p in parked {
            if let Some(still) = self.core.retry_parked(p) {
                self.parked.push(still);
            }
        }
    }

    /// Writes pending output until empty or the socket would block,
    /// passing through the same fault-injection points as the other
    /// front ends.
    fn flush(&mut self, idx: usize) {
        loop {
            let Some(conn) = self.conn_mut(idx) else {
                return;
            };
            if conn.out_pos >= conn.out.len() {
                break;
            }
            if faultinject::should_sever_write() {
                let _ = conn.stream.shutdown(Shutdown::Both);
                self.close(idx);
                return;
            }
            let cap = faultinject::short_write_cap(conn.out.len() - conn.out_pos);
            match (&conn.stream).write(&conn.out[conn.out_pos..conn.out_pos + cap]) {
                Ok(0) => {
                    self.close(idx);
                    return;
                }
                Ok(n) => conn.out_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close(idx);
                    return;
                }
            }
        }
        let Some(conn) = self.conn_mut(idx) else {
            return;
        };
        if conn.out_pos == conn.out.len() {
            conn.out.clear();
            conn.out_pos = 0;
        } else if conn.out_pos > 64 << 10 {
            conn.out.drain(..conn.out_pos);
            conn.out_pos = 0;
        }
    }

    /// Closes a connection that has finished its useful life: a close
    /// decision flushes-then-closes; a half-closed peer closes once its
    /// queued responses are flushed.
    fn maybe_close(&mut self, idx: usize) {
        let Some(conn) = self.conn_mut(idx) else {
            return;
        };
        let drained = conn.pending_out() == 0;
        if (conn.closing || conn.read_eof) && drained {
            self.close(idx);
        }
    }

    /// Syncs the poller registration with what the state machine needs.
    fn update_interest(&mut self, idx: usize) {
        let Some(conn) = self.conn_mut(idx) else {
            return;
        };
        let want = (!conn.read_eof && !conn.closing, conn.pending_out() > 0);
        if want == conn.registered {
            return;
        }
        let key = idx + FIRST_CONN_KEY;
        let interest = Event {
            key,
            readable: want.0,
            writable: want.1,
        };
        let fd = conn.stream.as_raw_fd();
        if self.shared.poller.modify(fd, interest).is_ok() {
            if let Some(conn) = self.conn_mut(idx) {
                conn.registered = want;
            }
        } else {
            self.close(idx);
        }
    }

    /// True once a draining loop has nothing left to deliver — or the
    /// flush deadline has passed.
    fn ready_to_exit(&self) -> bool {
        if self
            .exit_deadline
            .is_some_and(|deadline| Instant::now() >= deadline)
        {
            return true;
        }
        if !self.parked.is_empty() {
            return false;
        }
        if self.shared.pending_jobs.load(Ordering::Acquire) != 0 {
            return false;
        }
        if !lock_unpoisoned(&self.shared.inbox).completions.is_empty() {
            return false;
        }
        self.slab
            .iter()
            .flatten()
            .all(|conn| conn.pending_out() == 0)
    }

    /// Final teardown: close every connection and release the slab.
    fn teardown(&mut self) {
        for idx in 0..self.slab.len() {
            self.close(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ServerConfig, ShardPolicy};

    fn http_config(workers: usize, max_inflight: usize, max_connections: usize) -> HttpConfig {
        HttpConfig {
            wire: WireConfig {
                server: ServerConfig {
                    workers,
                    queue_capacity: 32,
                    cache_capacity: 4,
                    shards: ShardPolicy::Fixed(1),
                    ..ServerConfig::default()
                },
                max_inflight_jobs: max_inflight,
                max_queued_lanes: 1024,
                max_connections,
            },
            ..HttpConfig::default()
        }
    }

    fn server(workers: usize) -> HttpServer {
        HttpServer::bind("127.0.0.1:0", http_config(workers, 32, 8)).expect("bind ephemeral port")
    }

    /// Minimal blocking test client: one request at a time over a
    /// keep-alive connection.
    struct TestClient {
        stream: TcpStream,
    }

    fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
        haystack.windows(needle.len()).position(|w| w == needle)
    }

    impl TestClient {
        fn connect(addr: SocketAddr) -> TestClient {
            TestClient {
                stream: TcpStream::connect(addr).expect("connect"),
            }
        }

        fn send_raw(&mut self, bytes: &[u8]) {
            self.stream.write_all(bytes).expect("send request");
        }

        fn request(&mut self, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
            let body = body.unwrap_or("");
            let req = format!(
                "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n{body}",
                body.len()
            );
            self.send_raw(req.as_bytes());
            self.read_response().expect("response")
        }

        /// Reads one response; `None` on a clean EOF before any byte.
        fn read_response(&mut self) -> Option<(u16, String)> {
            let mut buf = Vec::new();
            let mut tmp = [0u8; 4096];
            let header_end = loop {
                if let Some(pos) = find_subslice(&buf, b"\r\n\r\n") {
                    break pos + 4;
                }
                let n = self.stream.read(&mut tmp).expect("read head");
                if n == 0 {
                    assert!(buf.is_empty(), "connection died mid-response");
                    return None;
                }
                buf.extend_from_slice(&tmp[..n]);
            };
            let head = std::str::from_utf8(&buf[..header_end]).expect("utf8 head");
            let status: u16 = head
                .split(' ')
                .nth(1)
                .expect("status code")
                .parse()
                .expect("numeric status");
            let content_length: usize = head
                .lines()
                .find_map(|l| {
                    let (k, v) = l.split_once(':')?;
                    k.eq_ignore_ascii_case("content-length")
                        .then(|| v.trim().parse().expect("numeric content-length"))
                })
                .unwrap_or(0);
            while buf.len() < header_end + content_length {
                let n = self.stream.read(&mut tmp).expect("read body");
                assert!(n > 0, "connection died mid-body");
                buf.extend_from_slice(&tmp[..n]);
            }
            let body = String::from_utf8(buf[header_end..header_end + content_length].to_vec())
                .expect("utf8 body");
            (status, body).into()
        }
    }

    fn field<'a>(j: &'a Json, key: &str) -> &'a Json {
        let Json::Obj(fields) = j else {
            panic!("expected object, got {j:?}");
        };
        get(fields, key).unwrap_or_else(|| panic!("missing field {key} in {j:?}"))
    }

    fn parse_body(body: &str) -> Json {
        json::parse(body).expect("valid JSON body")
    }

    fn job_id_of(body: &str) -> u64 {
        field(&parse_body(body), "job_id").as_u64().expect("job_id")
    }

    fn state_of(j: &Json) -> String {
        field(j, "state")
            .as_str()
            .expect("state string")
            .to_string()
    }

    /// Polls `GET /v1/jobs/{id}` until the job leaves queued/running.
    fn poll_terminal(client: &mut TestClient, job_id: u64) -> (u16, Json) {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let (status, body) =
                client.request("GET", &format!("/v1/jobs/{job_id}?tenant=t"), None);
            let j = parse_body(&body);
            if status != 200 {
                return (status, j);
            }
            let state = state_of(&j);
            if state != "queued" && state != "running" {
                return (status, j);
            }
            assert!(
                Instant::now() < deadline,
                "job {job_id} never went terminal"
            );
            thread::sleep(Duration::from_millis(5));
        }
    }

    const MAXCUT_DIMACS: &str = "p edge 4 5\ne 1 2\ne 2 3\ne 3 4\ne 4 1\ne 1 3\n";

    fn problem_body(class: &str, input: &str, extra_config: Vec<(String, Json)>) -> String {
        let mut config = vec![("dt".into(), Json::Num(0.02))];
        config.extend(extra_config);
        Json::Obj(vec![
            ("tenant".into(), Json::Str("t".into())),
            ("class".into(), Json::Str(class.into())),
            ("input".into(), Json::Str(input.into())),
            ("replicas".into(), Json::Num(2.0)),
            ("seed".into(), Json::u64_str(7)),
            ("config".into(), Json::Obj(config)),
        ])
        .render()
    }

    // -- parser unit coverage (proptests live in tests/http_parser.rs) --

    #[test]
    fn parser_handles_pipelined_requests_and_bodies() {
        let mut p = HttpParser::new();
        p.push(b"POST /a HTTP/1.1\r\ncontent-length: 3\r\n\r\nabcGET /b?x=1 HTTP/1.1\r\n\r\n");
        let first = p.next_request().unwrap().unwrap();
        assert_eq!(first.method, "POST");
        assert_eq!(first.path, "/a");
        assert_eq!(first.body, b"abc");
        assert!(first.keep_alive);
        let second = p.next_request().unwrap().unwrap();
        assert_eq!(second.method, "GET");
        assert_eq!(second.path, "/b");
        assert_eq!(second.query, "x=1");
        assert!(second.body.is_empty());
        assert!(p.next_request().unwrap().is_none());
    }

    #[test]
    fn parser_recovers_after_oversized_body() {
        let mut p = HttpParser::new();
        let huge = MAX_BODY_LEN + 5;
        p.push(format!("POST /big HTTP/1.1\r\ncontent-length: {huge}\r\n\r\n").as_bytes());
        let err = p.next_request().unwrap_err();
        assert_eq!(err.status, 413);
        assert!(!err.fatal);
        // Dribble the rejected body through in chunks, then a good
        // request: the parser resyncs at the body boundary.
        let mut left = huge;
        while left > 0 {
            let n = left.min(1 << 20);
            p.push(&vec![b'x'; n as usize]);
            left -= n;
            assert!(p.next_request().unwrap().is_none() || left == 0);
        }
        p.push(b"GET /ok HTTP/1.1\r\n\r\n");
        let req = p.next_request().unwrap().unwrap();
        assert_eq!(req.path, "/ok");
    }

    #[test]
    fn parser_poisons_on_fatal_errors() {
        for (raw, status) in [
            (&b"GARBAGE\r\n\r\n"[..], 400),
            (&b"GET /x HTTP/3.0\r\n\r\n"[..], 505),
            (&b"GET /x HTTP/1.1\r\ncontent-length: nope\r\n\r\n"[..], 400),
            (
                &b"GET /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n"[..],
                501,
            ),
        ] {
            let mut p = HttpParser::new();
            p.push(raw);
            let err = p.next_request().unwrap_err();
            assert_eq!(
                err.status,
                status,
                "input {:?}",
                String::from_utf8_lossy(raw)
            );
            assert!(err.fatal);
            // Sticky: further pushes cannot desync into garbage.
            p.push(b"GET /ok HTTP/1.1\r\n\r\n");
            assert!(p.next_request().is_err());
        }
    }

    #[test]
    fn parser_enforces_line_and_header_caps() {
        let mut p = HttpParser::new();
        p.push(b"GET /");
        p.push(&vec![b'a'; MAX_REQUEST_LINE + 10]);
        let err = p.next_request().unwrap_err();
        assert_eq!(err.status, 414);
        assert!(err.fatal);

        let mut p = HttpParser::new();
        p.push(b"GET /x HTTP/1.1\r\n");
        for i in 0..(MAX_HEADERS + 1) {
            p.push(format!("h{i}: v\r\n").as_bytes());
        }
        p.push(b"\r\n");
        let err = p.next_request().unwrap_err();
        assert_eq!(err.status, 431);
        assert!(err.fatal);
    }

    #[test]
    fn parser_connection_header_overrides_version_default() {
        let mut p = HttpParser::new();
        p.push(b"GET /a HTTP/1.1\r\nconnection: close\r\n\r\n");
        assert!(!p.next_request().unwrap().unwrap().keep_alive);
        let mut p = HttpParser::new();
        p.push(b"GET /a HTTP/1.0\r\n\r\n");
        assert!(!p.next_request().unwrap().unwrap().keep_alive);
        let mut p = HttpParser::new();
        p.push(b"GET /a HTTP/1.0\r\nconnection: keep-alive\r\n\r\n");
        assert!(p.next_request().unwrap().unwrap().keep_alive);
    }

    // -- endpoint coverage --

    #[test]
    fn problem_submit_polls_to_a_decoded_report() {
        let server = server(2);
        let mut client = TestClient::connect(server.local_addr());
        let (status, body) = client.request(
            "POST",
            "/v1/jobs",
            Some(&problem_body("max-cut", MAXCUT_DIMACS, vec![])),
        );
        // Wrong endpoint for a problem body: graph is missing.
        assert_eq!(status, 400, "{body}");

        let (status, body) = client.request(
            "POST",
            "/v1/problems",
            Some(&problem_body("max-cut", MAXCUT_DIMACS, vec![])),
        );
        assert_eq!(status, 202, "{body}");
        let job_id = job_id_of(&body);

        let (status, report) = poll_terminal(&mut client, job_id);
        assert_eq!(status, 200, "{report:?}");
        assert_eq!(state_of(&report), "done");
        let report = field(&report, "report");
        assert_eq!(field(report, "type").as_str(), Some("problem_report"));
        assert_eq!(field(report, "class").as_str(), Some("max-cut"));
        assert_eq!(field(report, "seed").as_u64(), Some(7));
        let Json::Arr(ranked) = field(report, "ranked") else {
            panic!("ranked must be an array");
        };
        assert_eq!(ranked.len(), 2);
        let sol = field(&ranked[0], "solution");
        assert_eq!(field(sol, "kind").as_str(), Some("cut_sides"));
        let Json::Arr(values) = field(sol, "values") else {
            panic!("values must be an array");
        };
        assert_eq!(values.len(), 4);

        // Re-polling still answers the report, but streams it once.
        let (_, again) = poll_terminal(&mut client, job_id);
        assert_eq!(state_of(&again), "done");
        assert_eq!(server.reports_streamed(), 1);
    }

    #[test]
    fn raw_job_submit_roundtrip() {
        let server = server(1);
        let mut client = TestClient::connect(server.local_addr());
        let body = Json::Obj(vec![
            ("tenant".into(), Json::Str("t".into())),
            (
                "graph".into(),
                Json::Obj(vec![
                    ("nodes".into(), Json::Num(3.0)),
                    (
                        "edges".into(),
                        Json::Arr(vec![
                            Json::Arr(vec![Json::Num(0.0), Json::Num(1.0)]),
                            Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)]),
                            Json::Arr(vec![Json::Num(2.0), Json::Num(0.0)]),
                        ]),
                    ),
                ]),
            ),
            ("replicas".into(), Json::Num(2.0)),
            ("seed".into(), Json::Num(21.0)),
            (
                "config".into(),
                Json::Obj(vec![("dt".into(), Json::Num(0.02))]),
            ),
        ])
        .render();
        let (status, reply) = client.request("POST", "/v1/jobs", Some(&body));
        assert_eq!(status, 202, "{reply}");
        let job_id = job_id_of(&reply);
        let (status, report) = poll_terminal(&mut client, job_id);
        assert_eq!(status, 200);
        assert_eq!(state_of(&report), "done");
        let report = field(&report, "report");
        assert_eq!(field(report, "type").as_str(), Some("report"));
        let Json::Arr(ranked) = field(report, "ranked") else {
            panic!("ranked must be an array");
        };
        assert_eq!(ranked.len(), 2);
        let Json::Arr(coloring) = field(&ranked[0], "coloring") else {
            panic!("coloring must be an array");
        };
        assert_eq!(coloring.len(), 3);
    }

    #[test]
    fn hostile_requests_leave_the_connection_serving() {
        let server = server(1);
        let mut client = TestClient::connect(server.local_addr());

        // Bad JSON → 400, connection must keep serving.
        let (status, _) = client.request("POST", "/v1/problems", Some("{not json"));
        assert_eq!(status, 400);
        // Unknown path → 404.
        let (status, _) = client.request("GET", "/nope", None);
        assert_eq!(status, 404);
        // Wrong method → 405.
        let (status, _) = client.request("PUT", "/v1/stats", None);
        assert_eq!(status, 405);
        // Unknown problem class → 422.
        let (status, _) = client.request(
            "POST",
            "/v1/problems",
            Some(&problem_body("tsp", "x", vec![])),
        );
        assert_eq!(status, 422);
        // Unparseable DIMACS → 400.
        let (status, _) = client.request(
            "POST",
            "/v1/problems",
            Some(&problem_body("max-cut", "p edge nope\n", vec![])),
        );
        assert_eq!(status, 400);
        // Unknown config knob → 400, not silently defaulted.
        let (status, body) = client.request(
            "POST",
            "/v1/problems",
            Some(&problem_body(
                "max-cut",
                MAXCUT_DIMACS,
                vec![("warp_factor".into(), Json::Num(9.0))],
            )),
        );
        assert_eq!(status, 400, "{body}");
        // Oversized declared body → 413, recoverable without sending it.
        client.send_raw(
            format!(
                "POST /v1/jobs HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
                MAX_BODY_LEN + 1
            )
            .as_bytes(),
        );
        let (status, _) = client.read_response().expect("413 response");
        assert_eq!(status, 413);
        // The connection is now resyncing inside the (never-sent)
        // skipped body; anything further we write to it is discarded as
        // body bytes. Open a fresh connection to confirm the server
        // itself survived the whole gauntlet.
        let mut fresh = TestClient::connect(server.local_addr());
        let (status, body) = fresh.request("GET", "/v1/stats", None);
        assert_eq!(status, 200);
        assert_eq!(field(&parse_body(&body), "frontend").as_str(), Some("http"));
    }

    #[test]
    fn stats_and_metrics_render_the_registry() {
        let server = server(1);
        let mut client = TestClient::connect(server.local_addr());
        let (status, body) = client.request(
            "POST",
            "/v1/problems",
            Some(&problem_body(
                "mis",
                "p edge 4 4\ne 1 2\ne 2 3\ne 3 4\ne 4 1\n",
                vec![],
            )),
        );
        assert_eq!(status, 202, "{body}");
        let job_id = job_id_of(&body);
        let (_, report) = poll_terminal(&mut client, job_id);
        assert_eq!(state_of(&report), "done");

        let (status, body) = client.request("GET", "/v1/stats", None);
        assert_eq!(status, 200);
        let stats = parse_body(&body);
        assert_eq!(field(&stats, "frontend").as_str(), Some("http"));
        let counters = field(&stats, "counters");
        assert_eq!(field(counters, "jobs_completed").as_u64(), Some(1));
        assert_eq!(field(counters, "connections").as_u64(), Some(1));

        let (status, text) = client.request("GET", "/metrics", None);
        assert_eq!(status, 200);
        assert!(
            text.contains("# TYPE msropm_jobs_completed counter"),
            "{text}"
        );
        assert!(text.contains("msropm_jobs_completed 1"), "{text}");
        assert!(text.contains("msropm_frontend{kind=\"http\"} 1"), "{text}");
    }

    #[test]
    fn quota_deadline_cancel_and_ownership_map_to_http_statuses() {
        // One worker, one in-flight job per tenant.
        let server =
            HttpServer::bind("127.0.0.1:0", http_config(1, 1, 8)).expect("bind ephemeral port");
        let mut client = TestClient::connect(server.local_addr());
        // Occupy the single worker with a long job from tenant "u"
        // (paper-default dt, many replicas ≈ 100 ms) so tenant "t"'s
        // job below sits in the queue, where a cancel lands
        // deterministically (cancelling a *running* job is cooperative
        // and may lose the race to completion).
        let occupy = |tenant: &str, replicas: f64| {
            Json::Obj(vec![
                ("tenant".into(), Json::Str(tenant.into())),
                ("class".into(), Json::Str("max-cut".into())),
                ("input".into(), Json::Str(MAXCUT_DIMACS.into())),
                ("replicas".into(), Json::Num(replicas)),
            ])
            .render()
        };
        let (status, body) = client.request("POST", "/v1/problems", Some(&occupy("u", 64.0)));
        assert_eq!(status, 202, "{body}");
        let (status, body) = client.request("POST", "/v1/problems", Some(&occupy("t", 4.0)));
        assert_eq!(status, 202, "{body}");
        let slow_id = job_id_of(&body);

        // Second in-flight job for the same tenant: quota → 429.
        let (status, body) = client.request(
            "POST",
            "/v1/problems",
            Some(&problem_body("max-cut", MAXCUT_DIMACS, vec![])),
        );
        assert_eq!(status, 429, "{body}");
        assert_eq!(
            field(&parse_body(&body), "code").as_u64(),
            Some(ErrorCode::QuotaInFlight as u16 as u64)
        );

        // Another tenant may not poll or cancel it.
        let (status, _) = client.request("GET", &format!("/v1/jobs/{slow_id}?tenant=other"), None);
        assert_eq!(status, 403);
        let (status, _) =
            client.request("DELETE", &format!("/v1/jobs/{slow_id}?tenant=other"), None);
        assert_eq!(status, 403);
        // Unknown job → 404; missing tenant → 400.
        let (status, _) = client.request("GET", "/v1/jobs/999999?tenant=t", None);
        assert_eq!(status, 404);
        let (status, _) = client.request("GET", &format!("/v1/jobs/{slow_id}"), None);
        assert_eq!(status, 400);

        // Cancel the queued job and poll to the cancelled terminal
        // state (observed once the worker pops it past the occupier).
        let (status, body) =
            client.request("DELETE", &format!("/v1/jobs/{slow_id}?tenant=t"), None);
        assert_eq!(status, 200, "{body}");
        let (status, j) = poll_terminal(&mut client, slow_id);
        assert_eq!(status, 200);
        assert_eq!(state_of(&j), "cancelled");

        // A deadline that expires while the job waits in the queue
        // fails it with 504 on poll: occupy the single worker with a
        // third tenant's slow job, then submit a 1 ms-deadline job
        // behind it.
        let (status, body) = client.request("POST", "/v1/problems", Some(&occupy("v", 32.0)));
        assert_eq!(status, 202, "{body}");
        let deadline = Json::Obj(vec![
            ("tenant".into(), Json::Str("t".into())),
            ("class".into(), Json::Str("max-cut".into())),
            ("input".into(), Json::Str(MAXCUT_DIMACS.into())),
            ("replicas".into(), Json::Num(4.0)),
            ("deadline_ms".into(), Json::Num(1.0)),
        ])
        .render();
        let (status, body) = client.request("POST", "/v1/problems", Some(&deadline));
        assert_eq!(status, 202, "{body}");
        let dead_id = job_id_of(&body);
        thread::sleep(Duration::from_millis(5));
        let (status, j) = poll_terminal(&mut client, dead_id);
        assert_eq!(status, 504, "{j:?}");
        assert_eq!(state_of(&j), "failed");
        assert_eq!(
            field(field(&j, "error"), "code").as_u64(),
            Some(ErrorCode::DeadlineExceeded as u16 as u64)
        );
    }

    #[test]
    fn http10_and_connection_close_end_the_connection() {
        let server = server(1);
        let mut client = TestClient::connect(server.local_addr());
        client.send_raw(b"GET /v1/stats HTTP/1.0\r\n\r\n");
        let (status, _) = client.read_response().expect("response before close");
        assert_eq!(status, 200);
        // The server closes after an HTTP/1.0 exchange.
        assert!(client.read_response().is_none());

        let mut client = TestClient::connect(server.local_addr());
        client.send_raw(b"GET /metrics HTTP/1.1\r\nconnection: close\r\n\r\n");
        let (status, _) = client.read_response().expect("response before close");
        assert_eq!(status, 200);
        assert!(client.read_response().is_none());
    }

    #[test]
    fn connection_cap_answers_busy_503() {
        let server =
            HttpServer::bind("127.0.0.1:0", http_config(1, 32, 1)).expect("bind ephemeral port");
        let mut first = TestClient::connect(server.local_addr());
        let (status, _) = first.request("GET", "/v1/stats", None);
        assert_eq!(status, 200);
        // Second connection is over the cap: one 503, then close.
        let mut second = TestClient::connect(server.local_addr());
        let (status, body) = second.read_response().expect("busy response");
        assert_eq!(status, 503);
        assert_eq!(
            field(&parse_body(&body), "code").as_u64(),
            Some(ErrorCode::Busy as u16 as u64)
        );
        assert!(second.read_response().is_none());
    }
}
