//! Runtime-armed fault injection points for chaos testing.
//!
//! The serving stack calls tiny check functions at the places failures
//! matter: job execution (worker panics), completion delivery (slow
//! hooks), and the socket write paths of both front ends (short writes,
//! abrupt disconnects). Each check's **disarmed fast path is a single
//! relaxed atomic load** of one process-global bitmask — `wire_bench`
//! asserts this stays free (and that the module is quiescent unless a
//! test armed it), so production serving pays nothing for the
//! instrumentation.
//!
//! Fault points are process-global: chaos tests that arm them must
//! serialize (the suite holds a mutex) and disarm on every exit path —
//! take a [`guard`] so a panicking assertion cannot leak an armed fault
//! into the next test.
//!
//! | point | armed by | fires |
//! |---|---|---|
//! | panic-in-solve | [`arm_panic_in_solve`] | panics inside the worker's `catch_unwind` region on the Nth job → typed `Failed` outcome |
//! | kill-worker | [`arm_kill_worker`] | panics **outside** the catch region on the Nth job → worker thread dies, `WorkerDied`/supervisor path |
//! | delay-completion | [`arm_delay_completion`] | sleeps before every completion delivery while armed |
//! | short-writes | [`arm_short_writes`] | caps every socket write to 7 bytes while armed |
//! | sever-write | [`arm_sever_write`] | the Nth socket write shuts the connection down instead of writing |

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const PANIC_IN_SOLVE: u64 = 1 << 0;
const KILL_WORKER: u64 = 1 << 1;
const DELAY_COMPLETION: u64 = 1 << 2;
const SHORT_WRITES: u64 = 1 << 3;
const SEVER_WRITE: u64 = 1 << 4;

/// Which fault points are armed (bitmask). Every check function's
/// disarmed fast path is one relaxed load of this.
static ARMED: AtomicU64 = AtomicU64::new(0);
static PANIC_COUNTDOWN: AtomicU64 = AtomicU64::new(0);
static KILL_COUNTDOWN: AtomicU64 = AtomicU64::new(0);
static DELAY_MS: AtomicU64 = AtomicU64::new(0);
static SEVER_COUNTDOWN: AtomicU64 = AtomicU64::new(0);

#[inline(always)]
fn is_armed(bit: u64) -> bool {
    ARMED.load(Ordering::Relaxed) & bit != 0
}

/// Decrements `counter`; exactly one caller observes the 1 → 0 edge,
/// disarms `bit` and fires. Never underflows under races.
fn countdown_fires(counter: &AtomicU64, bit: u64) -> bool {
    loop {
        let cur = counter.load(Ordering::Acquire);
        if cur == 0 {
            return false;
        }
        if counter
            .compare_exchange(cur, cur - 1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            if cur == 1 {
                ARMED.fetch_and(!bit, Ordering::AcqRel);
                return true;
            }
            return false;
        }
    }
}

/// Arms panic-in-solve: the `nth` job (1-based) to enter solve
/// execution panics **inside** the worker's `catch_unwind` region —
/// exercising the typed `JobCompletion::Failed` path without killing
/// the thread. Fires once, then disarms itself.
///
/// # Panics
///
/// Panics if `nth == 0`.
pub fn arm_panic_in_solve(nth: u64) {
    assert!(nth > 0, "countdown must be at least 1");
    PANIC_COUNTDOWN.store(nth, Ordering::Release);
    ARMED.fetch_or(PANIC_IN_SOLVE, Ordering::AcqRel);
}

/// Arms kill-worker: the `nth` job (1-based) to reach a worker panics
/// **outside** the `catch_unwind` region, killing the worker thread
/// mid-job — exercising the `CompletionHook::Drop` → `WorkerDied` path
/// and the supervisor respawn. Fires once, then disarms itself.
///
/// # Panics
///
/// Panics if `nth == 0`.
pub fn arm_kill_worker(nth: u64) {
    assert!(nth > 0, "countdown must be at least 1");
    KILL_COUNTDOWN.store(nth, Ordering::Release);
    ARMED.fetch_or(KILL_WORKER, Ordering::AcqRel);
}

/// Arms delay-completion: every completion delivery sleeps `millis`
/// first, until disarmed.
pub fn arm_delay_completion(millis: u64) {
    DELAY_MS.store(millis, Ordering::Release);
    ARMED.fetch_or(DELAY_COMPLETION, Ordering::AcqRel);
}

/// Arms short-writes: every socket write in both front ends is capped
/// to 7 bytes, until disarmed — frames cross the wire in dribbles,
/// exercising partial-write handling end to end.
pub fn arm_short_writes() {
    ARMED.fetch_or(SHORT_WRITES, Ordering::AcqRel);
}

/// Arms sever-write: the `nth` socket write (1-based, across all
/// connections) shuts the peer connection down instead of writing —
/// an abrupt server-side disconnect mid-stream. Fires once, then
/// disarms itself.
///
/// # Panics
///
/// Panics if `nth == 0`.
pub fn arm_sever_write(nth: u64) {
    assert!(nth > 0, "countdown must be at least 1");
    SEVER_COUNTDOWN.store(nth, Ordering::Release);
    ARMED.fetch_or(SEVER_WRITE, Ordering::AcqRel);
}

/// Disarms every fault point and zeroes the countdowns.
pub fn disarm_all() {
    ARMED.store(0, Ordering::Release);
    PANIC_COUNTDOWN.store(0, Ordering::Release);
    KILL_COUNTDOWN.store(0, Ordering::Release);
    DELAY_MS.store(0, Ordering::Release);
    SEVER_COUNTDOWN.store(0, Ordering::Release);
}

/// `true` when no fault point is armed — the production steady state,
/// asserted by `wire_bench` before taking perf measurements.
pub fn quiescent() -> bool {
    ARMED.load(Ordering::Acquire) == 0
}

/// A drop guard that [`disarm_all`]s — chaos tests hold one so a
/// panicking assertion cannot leak an armed fault into the next test.
#[derive(Debug)]
pub struct FaultGuard(());

impl Drop for FaultGuard {
    fn drop(&mut self) {
        disarm_all();
    }
}

/// Takes a [`FaultGuard`] (and starts from a clean slate).
pub fn guard() -> FaultGuard {
    disarm_all();
    FaultGuard(())
}

/// Worker-loop check point, called inside the `catch_unwind` region.
///
/// # Panics
///
/// Panics when [`arm_panic_in_solve`]'s countdown fires.
#[inline]
pub fn maybe_panic_in_solve() {
    if !is_armed(PANIC_IN_SOLVE) {
        return;
    }
    if countdown_fires(&PANIC_COUNTDOWN, PANIC_IN_SOLVE) {
        panic!("fault injection: panic_in_solve fired");
    }
}

/// Worker-loop check point, called **outside** the `catch_unwind`
/// region with the job envelope in scope.
///
/// # Panics
///
/// Panics when [`arm_kill_worker`]'s countdown fires, killing the
/// calling worker thread.
#[inline]
pub fn maybe_kill_worker() {
    if !is_armed(KILL_WORKER) {
        return;
    }
    if countdown_fires(&KILL_COUNTDOWN, KILL_WORKER) {
        panic!("fault injection: kill_worker fired");
    }
}

/// Completion-delivery check point: sleeps while delay-completion is
/// armed, else returns immediately.
#[inline]
pub fn maybe_delay_completion() {
    if !is_armed(DELAY_COMPLETION) {
        return;
    }
    std::thread::sleep(Duration::from_millis(DELAY_MS.load(Ordering::Acquire)));
}

/// Socket-write check point: how many of `len` bytes this write may
/// move. `len` when disarmed; at most 7 while short-writes is armed.
#[inline]
pub fn short_write_cap(len: usize) -> usize {
    if !is_armed(SHORT_WRITES) {
        return len;
    }
    len.min(7)
}

/// Socket-write check point: `true` when this write should sever the
/// connection instead (the armed countdown just fired).
#[inline]
pub fn should_sever_write() -> bool {
    is_armed(SEVER_WRITE) && countdown_fires(&SEVER_COUNTDOWN, SEVER_WRITE)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Fault state is process-global; this suite touches it from one
    // test only so it cannot race its siblings.
    #[test]
    fn countdowns_fire_exactly_once_and_disarm() {
        let _g = guard();
        assert!(quiescent());
        arm_short_writes();
        assert!(!quiescent());
        assert_eq!(short_write_cap(1024), 7);
        assert_eq!(short_write_cap(3), 3);
        arm_sever_write(3);
        assert!(!should_sever_write());
        assert!(!should_sever_write());
        assert!(should_sever_write());
        assert!(!should_sever_write(), "sever fires once then disarms");
        disarm_all();
        assert!(quiescent());
        assert_eq!(short_write_cap(1024), 1024);
        maybe_panic_in_solve(); // disarmed: must not panic
        maybe_kill_worker();
        maybe_delay_completion();
    }
}
