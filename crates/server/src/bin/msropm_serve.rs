//! Standalone server daemon: binds a TCP port and serves jobs until
//! killed, over any of the three front ends.
//!
//! ```text
//! msropm_serve [--addr HOST:PORT] [--frontend threads|reactor|http]
//!              [--workers N] [--queue N] [--cache N] [--shards auto|N]
//!              [--backend f64|fixed] [--max-inflight N] [--max-lanes N]
//!              [--max-conns N] [--loops N] [--max-wbuf BYTES]
//!              [--poll-backend] [--port-file PATH]
//! ```
//!
//! `--shards auto` (default) lets each job's solve shard across the
//! core-count-wide pool when the queue is shallow, narrowing under
//! backlog; `--shards N` pins every job to N shards (`--shards 1`
//! disables intra-job parallelism). Reports are bit-identical either
//! way.
//!
//! `--backend fixed` forces every accepted job onto the fixed-point
//! phase kernel (see the `osc::fxkernel` module) regardless of what the
//! submission asked for — one flag pins the whole deployment to the
//! integer path; `--backend f64` pins the float path. Without the flag
//! each job's own config picks its backend.
//!
//! `--frontend threads` (default) serves each binary-protocol
//! connection with a reader/writer thread pair; `--frontend reactor`
//! multiplexes the same binary protocol over `--loops` nonblocking
//! event loops (epoll, or `poll(2)` with `--poll-backend`) so
//! thousands of idle connections cost no threads; `--frontend http`
//! serves the HTTP/1.1 + JSON gateway (see the server crate's `http`
//! module for the endpoint table). All three run the same session
//! core, so quotas, deadlines, cancellation, and drain behave
//! identically. `--max-conns` caps concurrent connections,
//! `--max-wbuf` caps a nonblocking connection's buffered unsent bytes
//! before a non-reading peer is dropped.
//!
//! `--addr 127.0.0.1:0` binds an ephemeral port; the bound address is
//! printed as `listening on ADDR` (and written to `--port-file` when
//! given, which is what the CI smoke stages parse).

use msropm_core::KernelBackend;
use msropm_server::proto::FrontendKind;
use msropm_server::{ServerConfig, ShardPolicy};
use std::time::Duration;

fn main() {
    let mut addr = "127.0.0.1:7227".to_string();
    let mut builder = ServerConfig::builder();
    let mut port_file: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} requires a value"))
        };
        builder = match a.as_str() {
            "--addr" => {
                addr = value("--addr");
                builder
            }
            "--frontend" => {
                let v = value("--frontend");
                let kind = FrontendKind::from_name(&v).unwrap_or_else(|| {
                    eprintln!("unknown frontend {v:?}; valid: threads, reactor, http");
                    std::process::exit(2);
                });
                builder.frontend(kind)
            }
            "--workers" => builder.workers(value("--workers").parse().expect("--workers N")),
            "--queue" => builder.queue_capacity(value("--queue").parse().expect("--queue N")),
            "--cache" => builder.cache_capacity(value("--cache").parse().expect("--cache N")),
            "--shards" => {
                let v = value("--shards");
                builder.shards(if v == "auto" {
                    ShardPolicy::Auto
                } else {
                    ShardPolicy::Fixed(v.parse().expect("--shards auto|N"))
                })
            }
            "--backend" => {
                let v = value("--backend");
                let backend = KernelBackend::from_name(&v).unwrap_or_else(|| {
                    eprintln!("unknown backend {v:?}; valid: f64, fixed");
                    std::process::exit(2);
                });
                builder.backend(backend)
            }
            "--max-inflight" => builder
                .max_inflight_jobs(value("--max-inflight").parse().expect("--max-inflight N")),
            "--max-lanes" => {
                builder.max_queued_lanes(value("--max-lanes").parse().expect("--max-lanes N"))
            }
            "--max-conns" => {
                builder.max_connections(value("--max-conns").parse().expect("--max-conns N"))
            }
            "--loops" => builder.loops(value("--loops").parse().expect("--loops N")),
            "--max-wbuf" => {
                builder.max_write_buffer(value("--max-wbuf").parse().expect("--max-wbuf BYTES"))
            }
            "--poll-backend" => builder.poll_backend(true),
            "--port-file" => {
                port_file = Some(value("--port-file"));
                builder
            }
            other => {
                eprintln!(
                    "unknown argument {other:?}; valid: --addr HOST:PORT, \
                     --frontend threads|reactor|http, --workers N, --queue N, --cache N, \
                     --shards auto|N, --backend f64|fixed, --max-inflight N, \
                     --max-lanes N, --max-conns N, --loops N, --max-wbuf BYTES, \
                     --poll-backend, --port-file PATH"
                );
                std::process::exit(2);
            }
        };
    }
    let server = builder.bind(&addr).unwrap_or_else(|e| {
        eprintln!("failed to bind {addr}: {e}");
        std::process::exit(1);
    });
    let bound = server.local_addr();
    println!("listening on {bound} ({} frontend)", server.kind());
    if let Some(path) = port_file {
        std::fs::write(&path, format!("{bound}\n"))
            .unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
    }
    // Serve until killed (SIGTERM/SIGKILL from the operator or CI's
    // `timeout`); the front end and workers run on their own threads.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
