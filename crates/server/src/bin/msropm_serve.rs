//! Standalone wire-server daemon: binds a TCP port and serves the
//! framed job protocol until killed.
//!
//! ```text
//! msropm_serve [--addr HOST:PORT] [--frontend threads|reactor]
//!              [--workers N] [--queue N] [--cache N] [--shards auto|N]
//!              [--max-inflight N] [--max-lanes N] [--max-conns N]
//!              [--loops N] [--max-wbuf BYTES] [--poll-backend]
//!              [--port-file PATH]
//! ```
//!
//! `--shards auto` (default) lets each job's solve shard across the
//! core-count-wide pool when the queue is shallow, narrowing under
//! backlog; `--shards N` pins every job to N shards (`--shards 1`
//! disables intra-job parallelism). Reports are bit-identical either
//! way.
//!
//! `--frontend threads` (default) serves each connection with a
//! reader/writer thread pair; `--frontend reactor` multiplexes every
//! connection over `--loops` nonblocking event loops (epoll, or
//! `poll(2)` with `--poll-backend`) so thousands of idle connections
//! cost no threads. Both speak the identical wire protocol against the
//! same session core. `--max-conns` caps concurrent connections,
//! `--max-wbuf` caps a reactor connection's buffered unsent bytes
//! before a non-reading peer is dropped.
//!
//! `--addr 127.0.0.1:0` binds an ephemeral port; the bound address is
//! printed as `listening on ADDR` (and written to `--port-file` when
//! given, which is what the CI wire-smoke stage parses).

use msropm_server::reactor::{ReactorConfig, ReactorServer};
use msropm_server::wire::WireServer;
use msropm_server::{Frontend, ShardPolicy};
use std::time::Duration;

fn main() {
    let mut addr = "127.0.0.1:7227".to_string();
    let mut config = ReactorConfig::default();
    let mut reactor = false;
    let mut port_file: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} requires a value"))
        };
        match a.as_str() {
            "--addr" => addr = value("--addr"),
            "--frontend" => match value("--frontend").as_str() {
                "threads" => reactor = false,
                "reactor" => reactor = true,
                other => {
                    eprintln!("unknown frontend {other:?}; valid: threads, reactor");
                    std::process::exit(2);
                }
            },
            "--workers" => {
                config.wire.server.workers = value("--workers").parse().expect("--workers N")
            }
            "--queue" => {
                config.wire.server.queue_capacity = value("--queue").parse().expect("--queue N")
            }
            "--cache" => {
                config.wire.server.cache_capacity = value("--cache").parse().expect("--cache N")
            }
            "--shards" => {
                let v = value("--shards");
                config.wire.server.shards = if v == "auto" {
                    ShardPolicy::Auto
                } else {
                    ShardPolicy::Fixed(v.parse().expect("--shards auto|N"))
                }
            }
            "--max-inflight" => {
                config.wire.max_inflight_jobs =
                    value("--max-inflight").parse().expect("--max-inflight N")
            }
            "--max-lanes" => {
                config.wire.max_queued_lanes = value("--max-lanes").parse().expect("--max-lanes N")
            }
            "--max-conns" => {
                config.wire.max_connections = value("--max-conns").parse().expect("--max-conns N")
            }
            "--loops" => config.loops = value("--loops").parse().expect("--loops N"),
            "--max-wbuf" => {
                config.max_write_buffer = value("--max-wbuf").parse().expect("--max-wbuf BYTES")
            }
            "--poll-backend" => config.poll_backend = true,
            "--port-file" => port_file = Some(value("--port-file")),
            other => {
                eprintln!(
                    "unknown argument {other:?}; valid: --addr HOST:PORT, \
                     --frontend threads|reactor, --workers N, --queue N, --cache N, \
                     --shards auto|N, --max-inflight N, --max-lanes N, --max-conns N, \
                     --loops N, --max-wbuf BYTES, --poll-backend, --port-file PATH"
                );
                std::process::exit(2);
            }
        }
    }
    let server: Frontend = if reactor {
        ReactorServer::bind(&addr, config).map(Frontend::from)
    } else {
        WireServer::bind(&addr, config.wire).map(Frontend::from)
    }
    .unwrap_or_else(|e| {
        eprintln!("failed to bind {addr}: {e}");
        std::process::exit(1);
    });
    let bound = server.local_addr();
    println!("listening on {bound} ({} frontend)", server.kind());
    if let Some(path) = port_file {
        std::fs::write(&path, format!("{bound}\n"))
            .unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
    }
    // Serve until killed (SIGTERM/SIGKILL from the operator or CI's
    // `timeout`); the front end and workers run on their own threads.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
