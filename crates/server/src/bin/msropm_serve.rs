//! Standalone wire-server daemon: binds a TCP port and serves the
//! framed job protocol until killed.
//!
//! ```text
//! msropm_serve [--addr HOST:PORT] [--workers N] [--queue N]
//!              [--cache N] [--max-inflight N] [--max-lanes N]
//!              [--port-file PATH]
//! ```
//!
//! `--addr 127.0.0.1:0` binds an ephemeral port; the bound address is
//! printed as `listening on ADDR` (and written to `--port-file` when
//! given, which is what the CI wire-smoke stage parses).

use msropm_server::wire::{WireConfig, WireServer};
use std::time::Duration;

fn main() {
    let mut addr = "127.0.0.1:7227".to_string();
    let mut config = WireConfig::default();
    let mut port_file: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} requires a value"))
        };
        match a.as_str() {
            "--addr" => addr = value("--addr"),
            "--workers" => config.server.workers = value("--workers").parse().expect("--workers N"),
            "--queue" => {
                config.server.queue_capacity = value("--queue").parse().expect("--queue N")
            }
            "--cache" => {
                config.server.cache_capacity = value("--cache").parse().expect("--cache N")
            }
            "--max-inflight" => {
                config.max_inflight_jobs =
                    value("--max-inflight").parse().expect("--max-inflight N")
            }
            "--max-lanes" => {
                config.max_queued_lanes = value("--max-lanes").parse().expect("--max-lanes N")
            }
            "--port-file" => port_file = Some(value("--port-file")),
            other => {
                eprintln!(
                    "unknown argument {other:?}; valid: --addr HOST:PORT, --workers N, \
                     --queue N, --cache N, --max-inflight N, --max-lanes N, --port-file PATH"
                );
                std::process::exit(2);
            }
        }
    }
    let server = WireServer::bind(&addr, config).unwrap_or_else(|e| {
        eprintln!("failed to bind {addr}: {e}");
        std::process::exit(1);
    });
    let bound = server.local_addr();
    println!("listening on {bound}");
    if let Some(path) = port_file {
        std::fs::write(&path, format!("{bound}\n"))
            .unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
    }
    // Serve until killed (SIGTERM/SIGKILL from the operator or CI's
    // `timeout`); the acceptor and workers run on their own threads.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
