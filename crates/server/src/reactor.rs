//! Event-driven reactor front end: a nonblocking epoll/poll loop
//! serving the same wire protocol as [`crate::wire`] without a thread
//! per connection.
//!
//! The threaded front end costs two OS threads per connection, so
//! concurrency is bounded by thread count rather than solver
//! throughput; ten thousand mostly idle clients would burn gigabytes of
//! stacks doing nothing. The reactor inverts the shape: **N event-loop
//! threads** (default 1) own all sockets via a [`polling::Poller`]
//! (epoll on Linux, `poll(2)` fallback), and each connection is a small
//! state machine — a read buffer feeding the incremental
//! [`crate::proto::Decoder`], and a write buffer flushed on writable
//! readiness. An idle connection costs one registered fd and a few
//! hundred bytes; *all* per-tenant quota, registry, and drain semantics
//! come from the shared [`crate::session::SessionCore`], so the two
//! front ends cannot diverge on protocol behaviour (property-tested:
//! report frames are byte-identical across front ends and worker
//! counts).
//!
//! # Completion wakeups
//!
//! Job completions are delivered by the worker thread through the
//! session hook: the encoded report frame is pushed into the owning
//! loop's inbox and the loop is woken through the poller's
//! eventfd/pipe notifier — no per-connection or per-job thread
//! anywhere. Cancelled jobs deliver no frame (the wire contract:
//! **a cancelled job never streams a report**).
//!
//! # Backpressure
//!
//! Two mechanisms replace the threaded front end's "block the
//! connection thread":
//!
//! - a full worker queue **parks** the (already admitted) submit inside
//!   the loop and retries as completions free capacity — the client
//!   sees `submitted` and a `queued` status, never a stalled loop;
//! - a peer that stops reading while reports pile up grows its write
//!   buffer until [`ReactorConfig::max_write_buffer`], at which point
//!   the connection is dropped (a slow consumer must not hold frame
//!   memory hostage).
//!
//! # Shutdown
//!
//! [`ReactorServer::shutdown`] mirrors the threaded drain: submits are
//! rejected with the typed `Draining` error while in-flight jobs run to
//! terminal states, every pending report frame is flushed (bounded by a
//! five-second deadline against stuck peers), and only then do the
//! loops, connections, and worker pool tear down.

use crate::proto::{
    self, Decoder, ErrorCode, FrontendKind, ProtoError, Request, Response, WireStats,
};
use crate::session::{
    DeliverFn, ParkedSubmit, ProblemSubmission, SessionCore, SubmitDisposition, WireConfig,
};
use crate::{faultinject, lock_unpoisoned};
use polling::{BackendKind, Event, Poller};
use std::io::{Read as _, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Sizing and policy knobs of a [`ReactorServer`].
#[derive(Debug, Clone, Copy)]
pub struct ReactorConfig {
    /// Session policy shared with the threaded front end (worker pool,
    /// quotas, connection cap).
    pub wire: WireConfig,
    /// Event-loop threads. Loop 0 owns the listener; accepted
    /// connections are distributed round-robin across all loops.
    pub loops: usize,
    /// Per-connection cap on buffered unsent bytes; a peer that lets
    /// its write buffer exceed this (by not reading) is disconnected.
    pub max_write_buffer: usize,
    /// Force the portable `poll(2)` backend instead of epoll (testing
    /// and debugging).
    pub poll_backend: bool,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            wire: WireConfig::default(),
            loops: 1,
            max_write_buffer: 8 << 20,
            poll_backend: false,
        }
    }
}

/// Poller key of loop 0's listener; connection keys are
/// `slab index + FIRST_CONN_KEY`.
const KEY_LISTENER: usize = 0;
const FIRST_CONN_KEY: usize = 1;

/// How long a draining loop keeps retrying flushes to peers that have
/// stopped reading before force-closing them.
const DRAIN_FLUSH_DEADLINE: Duration = Duration::from_secs(5);

/// A finished job routed back to its loop: the encoded terminal frame
/// — a report, or a typed `JobFailed` for failed/deadline-exceeded
/// jobs (`None` for cancelled ones) — addressed to a connection slot.
struct Completion {
    conn: usize,
    generation: u64,
    frame: Option<Vec<u8>>,
}

#[derive(Default)]
struct Inbox {
    /// Connections accepted by loop 0 and assigned to this loop.
    new_conns: Vec<TcpStream>,
    /// Completions delivered by worker threads.
    completions: Vec<Completion>,
    /// Set once by shutdown after the session has drained.
    exit: bool,
}

/// The cross-thread surface of one event loop: its poller (for
/// notification) and its inbox.
struct LoopShared {
    poller: Poller,
    inbox: Mutex<Inbox>,
    /// Jobs admitted on this loop whose completion has not yet been
    /// pushed into the inbox; the exit check waits for zero so no
    /// report frame can be lost in the worker→loop handoff.
    pending_jobs: AtomicUsize,
}

/// Increments a loop's pending-job count for exactly as long as the
/// matching deliver callback is outstanding — decremented (with a
/// wakeup) whether the callback fires or is dropped unfired, so the
/// drain accounting can never leak.
struct PendingGuard(Arc<LoopShared>);

impl PendingGuard {
    fn new(shared: Arc<LoopShared>) -> PendingGuard {
        shared.pending_jobs.fetch_add(1, Ordering::AcqRel);
        PendingGuard(shared)
    }
}

impl Drop for PendingGuard {
    fn drop(&mut self) {
        self.0.pending_jobs.fetch_sub(1, Ordering::AcqRel);
        let _ = self.0.poller.notify();
    }
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    /// Guards completions against slot reuse: a frame addressed to a
    /// recycled index is discarded unless the generation matches.
    generation: u64,
    decoder: Decoder,
    /// Encoded-but-unsent bytes (`out[out_pos..]` is pending).
    out: Vec<u8>,
    out_pos: usize,
    /// (read, write) interest currently registered with the poller.
    registered: (bool, bool),
    /// Peer closed its write side; serve queued output, accept no new
    /// requests, close once outstanding jobs finish.
    read_eof: bool,
    /// Fatal protocol desync: flush queued output, then close.
    closing: bool,
    /// Jobs admitted on this connection and not yet completion-routed.
    jobs_outstanding: usize,
}

impl Conn {
    fn pending_out(&self) -> usize {
        self.out.len() - self.out_pos
    }
}

/// The reactor front end; see the module docs.
pub struct ReactorServer {
    core: Arc<SessionCore>,
    local_addr: SocketAddr,
    loops: Vec<(Arc<LoopShared>, thread::JoinHandle<()>)>,
    down: bool,
}

impl ReactorServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// event loops; the backing worker pool boots immediately.
    ///
    /// # Errors
    ///
    /// Propagates bind and poller-creation failures.
    ///
    /// # Panics
    ///
    /// Panics if `config.loops` is zero.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        config: ReactorConfig,
    ) -> std::io::Result<ReactorServer> {
        assert!(config.loops > 0, "need at least one event loop");
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let core = SessionCore::new(config.wire, FrontendKind::Reactor);
        let backend = if config.poll_backend {
            BackendKind::Poll
        } else {
            BackendKind::Epoll
        };
        let shareds: Vec<Arc<LoopShared>> = (0..config.loops)
            .map(|_| {
                Ok(Arc::new(LoopShared {
                    poller: Poller::with_backend(backend)?,
                    inbox: Mutex::new(Inbox::default()),
                    pending_jobs: AtomicUsize::new(0),
                }))
            })
            .collect::<std::io::Result<_>>()?;
        let mut loops = Vec::with_capacity(config.loops);
        // Loop 0 takes ownership of the listener itself — registering a
        // clone's fd would leave the poll backend watching a raw fd
        // number that gets recycled once the original drops.
        let mut listener = Some(listener);
        for (i, shared) in shareds.iter().enumerate() {
            let event_loop = EventLoop {
                core: Arc::clone(&core),
                shared: Arc::clone(shared),
                peers: shareds.clone(),
                listener: if i == 0 {
                    let listener = listener.take().expect("loop 0 takes the listener");
                    shared
                        .poller
                        .add(listener.as_raw_fd(), Event::readable(KEY_LISTENER))?;
                    Some(listener)
                } else {
                    None
                },
                slab: Vec::new(),
                free: Vec::new(),
                next_gen: 0,
                parked: Vec::new(),
                rr: 0,
                max_wbuf: config.max_write_buffer,
                exiting: false,
                exit_deadline: None,
            };
            let handle = thread::Builder::new()
                .name(format!("msropm-reactor-{i}"))
                .spawn(move || event_loop.run())
                .expect("spawn reactor loop");
            loops.push((Arc::clone(shared), handle));
        }
        Ok(ReactorServer {
            core,
            local_addr,
            loops,
            down: false,
        })
    }

    /// The bound address (reports the ephemeral port after `bind(":0")`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Current server-wide counters (the `stats` verb's payload).
    pub fn stats(&self) -> WireStats {
        self.core.wire_stats()
    }

    /// Report frames actually handed to a connection's write buffer.
    pub fn reports_streamed(&self) -> u64 {
        self.core.reports_streamed()
    }

    /// Graceful drain; see the module docs.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        if self.down {
            return;
        }
        self.down = true;
        self.core.begin_drain();
        // All jobs terminal ⇒ every completion hook has run; each loop's
        // pending counter lets the loop itself wait out the tiny window
        // between a hook releasing the quota slot and pushing its frame.
        self.core.await_drained();
        for (shared, _) in &self.loops {
            lock_unpoisoned(&shared.inbox).exit = true;
            let _ = shared.poller.notify();
        }
        for (_, handle) in self.loops.drain(..) {
            let _ = handle.join();
        }
        // The JobServer drains and joins its workers when the last
        // Arc<SessionCore> drops.
    }
}

impl Drop for ReactorServer {
    /// Dropping the front end performs the same graceful drain as
    /// [`ReactorServer::shutdown`].
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// One event loop's full state; `run` is the thread body.
struct EventLoop {
    core: Arc<SessionCore>,
    shared: Arc<LoopShared>,
    /// Every loop of the reactor, in index order (round-robin targets;
    /// only loop 0, the listener owner, actually assigns).
    peers: Vec<Arc<LoopShared>>,
    listener: Option<TcpListener>,
    slab: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_gen: u64,
    parked: Vec<ParkedSubmit>,
    rr: usize,
    max_wbuf: usize,
    exiting: bool,
    exit_deadline: Option<Instant>,
}

impl EventLoop {
    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            let timeout = if !self.parked.is_empty() {
                // A parked submit can also become enqueueable when a
                // worker *picks up* a job (which signals nothing), so
                // poll on a short tick rather than relying purely on
                // completion wakeups.
                Some(Duration::from_millis(10))
            } else if self.exiting {
                Some(Duration::from_millis(20))
            } else {
                None
            };
            if self.shared.poller.wait(&mut events, timeout).is_err() {
                // A broken poller is unrecoverable; drop every
                // connection rather than spin.
                break;
            }
            self.handle_inbox();
            for &ev in &events {
                if ev.key == KEY_LISTENER {
                    self.accept_ready();
                } else {
                    self.conn_event(ev);
                }
            }
            self.retry_parked();
            if self.exiting && self.ready_to_exit() {
                break;
            }
        }
        self.teardown();
    }

    /// Drains the cross-thread inbox: adopt assigned connections,
    /// route completions, observe the exit flag.
    fn handle_inbox(&mut self) {
        let (new_conns, completions, exit) = {
            let mut inbox = lock_unpoisoned(&self.shared.inbox);
            (
                std::mem::take(&mut inbox.new_conns),
                std::mem::take(&mut inbox.completions),
                inbox.exit,
            )
        };
        if exit && !self.exiting {
            self.exiting = true;
            self.exit_deadline = Some(Instant::now() + DRAIN_FLUSH_DEADLINE);
            // Stop accepting: unregister and drop the listener.
            if let Some(listener) = self.listener.take() {
                let _ = self.shared.poller.delete(listener.as_raw_fd());
            }
        }
        for stream in new_conns {
            if self.exiting {
                // Adopted after the drain finished: nothing left to
                // serve them with.
                self.core.connection_closed();
                continue;
            }
            self.register(stream);
        }
        for completion in completions {
            self.route_completion(completion);
        }
    }

    /// Accepts until the listener would block.
    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if self.core.at_connection_cap() {
                        // Over the cap: one typed error frame
                        // (best-effort, the stream is still blocking),
                        // then close.
                        let frame = proto::encode_response(&Response::Error {
                            code: ErrorCode::Busy,
                            message: "connection cap reached".into(),
                        });
                        let mut out = Vec::new();
                        let _ = proto::write_frame(&mut out, &frame);
                        let _ = (&stream).write_all(&out);
                        continue;
                    }
                    self.core.connection_opened();
                    let _ = stream.set_nodelay(true);
                    // Round-robin across loops; local assignment skips
                    // the inbox.
                    let target = self.rr % self.peers.len();
                    self.rr = self.rr.wrapping_add(1);
                    if Arc::ptr_eq(&self.peers[target], &self.shared) {
                        self.register(stream);
                    } else {
                        let peer = &self.peers[target];
                        lock_unpoisoned(&peer.inbox).new_conns.push(stream);
                        let _ = peer.poller.notify();
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }

    /// Installs an accepted connection into the slab and poller.
    fn register(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            self.core.connection_closed();
            return;
        }
        let idx = self.free.pop().unwrap_or_else(|| {
            self.slab.push(None);
            self.slab.len() - 1
        });
        self.next_gen += 1;
        let key = idx + FIRST_CONN_KEY;
        if self
            .shared
            .poller
            .add(stream.as_raw_fd(), Event::readable(key))
            .is_err()
        {
            self.free.push(idx);
            self.core.connection_closed();
            return;
        }
        self.slab[idx] = Some(Conn {
            stream,
            generation: self.next_gen,
            decoder: Decoder::new(),
            out: Vec::new(),
            out_pos: 0,
            registered: (true, false),
            read_eof: false,
            closing: false,
            jobs_outstanding: 0,
        });
    }

    fn conn_mut(&mut self, idx: usize) -> Option<&mut Conn> {
        self.slab.get_mut(idx).and_then(Option::as_mut)
    }

    /// Fully closes a connection: poller deregistration, slot recycle,
    /// live-connection accounting. Late completions for it are dropped
    /// by the generation check.
    fn close(&mut self, idx: usize) {
        if let Some(conn) = self.slab.get_mut(idx).and_then(Option::take) {
            let _ = self.shared.poller.delete(conn.stream.as_raw_fd());
            self.free.push(idx);
            self.core.connection_closed();
        }
    }

    /// Dispatches one readiness event for a connection slot.
    fn conn_event(&mut self, ev: Event) {
        let idx = ev.key - FIRST_CONN_KEY;
        let Some(conn) = self.conn_mut(idx) else {
            // Stale event for a slot closed earlier in this batch.
            return;
        };
        if conn.registered == (false, false) {
            // Error/hang-up conditions bypass the interest mask
            // (level-triggered), so an event for a connection with no
            // registered interest can only mean the peer reset a
            // half-closed socket. There is nothing to read or flush —
            // close it, or this event would re-fire every wait and spin
            // the loop until the outstanding job finished (its late
            // completion is discarded by the generation check).
            self.close(idx);
            return;
        }
        if ev.writable {
            self.flush(idx);
        }
        let readable = ev.readable
            && self
                .conn_mut(idx)
                .is_some_and(|conn| !conn.read_eof && !conn.closing);
        if readable {
            self.conn_read(idx);
        }
        self.maybe_close(idx);
        self.update_interest(idx);
    }

    /// Reads until the socket would block, feeding the frame decoder.
    fn conn_read(&mut self, idx: usize) {
        let mut buf = [0u8; 16 << 10];
        loop {
            let Some(conn) = self.conn_mut(idx) else {
                return;
            };
            match (&conn.stream).read(&mut buf) {
                Ok(0) => {
                    // Peer closed its write side. Mirror the threaded
                    // front end: keep the connection alive to stream
                    // reports of its outstanding jobs, then close.
                    conn.read_eof = true;
                    return;
                }
                Ok(n) => {
                    conn.decoder.push(&buf[..n]);
                    if !self.drain_frames(idx) {
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close(idx);
                    return;
                }
            }
        }
    }

    /// Pulls every complete frame out of the decoder; `false` once the
    /// connection should stop being read (closed or desynced).
    fn drain_frames(&mut self, idx: usize) -> bool {
        loop {
            let step = {
                let Some(conn) = self.conn_mut(idx) else {
                    return false;
                };
                match conn.decoder.next_frame() {
                    Ok(Some(payload)) => Ok(payload),
                    Ok(None) => return true,
                    Err(e) => {
                        // Framing desync (oversized header): typed
                        // error, flush, close — same as the threaded
                        // front end dropping the connection.
                        conn.closing = true;
                        Err(e)
                    }
                }
            };
            match step {
                Ok(payload) => {
                    self.process_frame(idx, &payload);
                    if self.conn_mut(idx).is_none() {
                        return false;
                    }
                }
                Err(e) => {
                    self.queue_response(
                        idx,
                        &Response::Error {
                            code: ErrorCode::Malformed,
                            message: e.to_string(),
                        },
                    );
                    return false;
                }
            }
        }
    }

    /// Decodes and dispatches one request frame.
    fn process_frame(&mut self, idx: usize, payload: &[u8]) {
        match proto::decode_request(payload) {
            Ok(Request::Submit {
                tenant,
                graph,
                job,
                deadline_ms,
            }) => self.submit(idx, tenant, graph, job, deadline_ms),
            Ok(Request::SubmitProblem {
                tenant,
                spec,
                config,
                replicas,
                seed,
                deadline_ms,
            }) => self.submit_problem(
                idx,
                ProblemSubmission {
                    tenant,
                    spec,
                    config,
                    replicas,
                    seed,
                    deadline_ms,
                },
            ),
            Ok(req) => {
                let resp = self
                    .core
                    .handle_control(&req)
                    .expect("non-submit requests are control verbs");
                self.queue_response(idx, &resp);
            }
            Err(ProtoError::BadTag(t)) => self.queue_response(
                idx,
                &Response::Error {
                    code: ErrorCode::UnsupportedVerb,
                    message: format!("unknown frame type 0x{t:02X}"),
                },
            ),
            Err(e) => self.queue_response(
                idx,
                &Response::Error {
                    code: ErrorCode::Malformed,
                    message: e.to_string(),
                },
            ),
        }
    }

    /// Nonblocking submit: admitted jobs deliver their report through
    /// this loop's inbox; a full worker queue parks the job here.
    fn submit(
        &mut self,
        idx: usize,
        tenant: String,
        graph: msropm_graph::Graph,
        job: msropm_core::BatchJob,
        deadline_ms: u64,
    ) {
        let Some(conn) = self.conn_mut(idx) else {
            return;
        };
        let generation = conn.generation;
        let guard = PendingGuard::new(Arc::clone(&self.shared));
        let shared = Arc::clone(&self.shared);
        let deliver: DeliverFn = Box::new(move |_core, _job_id, frame| {
            lock_unpoisoned(&shared.inbox).completions.push(Completion {
                conn: idx,
                generation,
                frame,
            });
            // The guard's drop decrements the pending count and wakes
            // the loop *after* the completion is visible in the inbox.
            drop(guard);
        });
        let disposition = self
            .core
            .submit_nonblocking(tenant, graph, job, deadline_ms, deliver);
        self.finish_submit(idx, disposition);
    }

    /// Nonblocking problem submit: the spec is compiled at admission
    /// (an unsupported spec answers with a request-scoped error) and
    /// its report decoded at completion; queue handling is identical to
    /// a plain [`Self::submit`].
    fn submit_problem(&mut self, idx: usize, sub: ProblemSubmission) {
        let Some(conn) = self.conn_mut(idx) else {
            return;
        };
        let generation = conn.generation;
        let guard = PendingGuard::new(Arc::clone(&self.shared));
        let shared = Arc::clone(&self.shared);
        let deliver: DeliverFn = Box::new(move |_core, _job_id, frame| {
            lock_unpoisoned(&shared.inbox).completions.push(Completion {
                conn: idx,
                generation,
                frame,
            });
            drop(guard);
        });
        let disposition = self.core.submit_problem_nonblocking(sub, deliver);
        self.finish_submit(idx, disposition);
    }

    /// Applies a submit disposition: count an accepted job against the
    /// connection, park a queue-full admission for retry, and queue the
    /// reply frame either way.
    fn finish_submit(&mut self, idx: usize, disposition: SubmitDisposition) {
        match disposition {
            SubmitDisposition::Reply(resp) => {
                if matches!(resp, Response::Submitted { .. }) {
                    if let Some(conn) = self.conn_mut(idx) {
                        conn.jobs_outstanding += 1;
                    }
                }
                self.queue_response(idx, &resp);
            }
            SubmitDisposition::Parked(parked, resp) => {
                self.parked.push(parked);
                if let Some(conn) = self.conn_mut(idx) {
                    conn.jobs_outstanding += 1;
                }
                self.queue_response(idx, &resp);
            }
        }
    }

    /// Retries parked submits; keeps whatever is still blocked on a
    /// full queue.
    fn retry_parked(&mut self) {
        if self.parked.is_empty() {
            return;
        }
        let parked = std::mem::take(&mut self.parked);
        for p in parked {
            if let Some(still) = self.core.retry_parked(p) {
                self.parked.push(still);
            }
        }
    }

    /// Routes one completed job back to its connection.
    fn route_completion(&mut self, completion: Completion) {
        let Some(conn) = self.conn_mut(completion.conn) else {
            return;
        };
        if conn.generation != completion.generation {
            // The slot was recycled; the original peer is gone and the
            // frame is dropped, matching the threaded front end's
            // silent drain to a dead writer.
            return;
        }
        conn.jobs_outstanding = conn.jobs_outstanding.saturating_sub(1);
        if let Some(frame) = completion.frame {
            let is_report = proto::is_report_frame(&frame);
            if self.queue_bytes(completion.conn, &frame) && is_report {
                self.core.note_report_streamed();
            }
        }
        self.maybe_close(completion.conn);
        self.update_interest(completion.conn);
    }

    /// Encodes and queues a response frame.
    fn queue_response(&mut self, idx: usize, resp: &Response) {
        let frame = proto::encode_response(resp);
        self.queue_bytes(idx, &frame);
        self.update_interest(idx);
    }

    /// Frames `payload` into the connection's write buffer and flushes
    /// opportunistically. Returns `false` when the connection is gone
    /// (dead peer or slow-consumer overflow).
    fn queue_bytes(&mut self, idx: usize, payload: &[u8]) -> bool {
        {
            let Some(conn) = self.conn_mut(idx) else {
                return false;
            };
            if proto::write_frame(&mut conn.out, payload).is_err() {
                // Only possible for an oversized payload we built
                // ourselves; drop the connection rather than desync it.
                self.close(idx);
                return false;
            }
        }
        self.flush(idx);
        let Some(conn) = self.conn_mut(idx) else {
            return false;
        };
        if conn.pending_out() > self.max_wbuf {
            // Slow consumer: the peer stopped reading while frames
            // piled up. Drop it instead of holding the memory.
            self.close(idx);
            return false;
        }
        true
    }

    /// Writes pending output until empty or the socket would block.
    /// Each write attempt passes through the fault-injection socket
    /// points (a single relaxed load each when disarmed): armed
    /// short-writes cap the attempt at a few bytes, and a fired sever
    /// countdown shuts the connection down mid-stream instead.
    fn flush(&mut self, idx: usize) {
        loop {
            let Some(conn) = self.conn_mut(idx) else {
                return;
            };
            if conn.out_pos >= conn.out.len() {
                break;
            }
            if faultinject::should_sever_write() {
                let _ = conn.stream.shutdown(Shutdown::Both);
                self.close(idx);
                return;
            }
            let cap = faultinject::short_write_cap(conn.out.len() - conn.out_pos);
            match (&conn.stream).write(&conn.out[conn.out_pos..conn.out_pos + cap]) {
                Ok(0) => {
                    self.close(idx);
                    return;
                }
                Ok(n) => conn.out_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close(idx);
                    return;
                }
            }
        }
        let Some(conn) = self.conn_mut(idx) else {
            return;
        };
        if conn.out_pos == conn.out.len() {
            conn.out.clear();
            conn.out_pos = 0;
        } else if conn.out_pos > 64 << 10 {
            // Reclaim the flushed prefix of a large buffer.
            conn.out.drain(..conn.out_pos);
            conn.out_pos = 0;
        }
    }

    /// Closes a connection that has finished its useful life: a desync
    /// flushes-then-closes; a half-closed peer closes once its
    /// outstanding jobs have reported and flushed.
    fn maybe_close(&mut self, idx: usize) {
        let Some(conn) = self.conn_mut(idx) else {
            return;
        };
        let drained = conn.pending_out() == 0;
        if (conn.closing && drained) || (conn.read_eof && drained && conn.jobs_outstanding == 0) {
            self.close(idx);
        }
    }

    /// Syncs the poller registration with what the state machine
    /// currently needs (read unless EOF/desync, write while output is
    /// pending).
    fn update_interest(&mut self, idx: usize) {
        let Some(conn) = self.conn_mut(idx) else {
            return;
        };
        let want = (!conn.read_eof && !conn.closing, conn.pending_out() > 0);
        if want == conn.registered {
            return;
        }
        let key = idx + FIRST_CONN_KEY;
        let interest = Event {
            key,
            readable: want.0,
            writable: want.1,
        };
        let fd = conn.stream.as_raw_fd();
        if self.shared.poller.modify(fd, interest).is_ok() {
            if let Some(conn) = self.conn_mut(idx) {
                conn.registered = want;
            }
        } else {
            self.close(idx);
        }
    }

    /// True once a draining loop has nothing left to deliver: no parked
    /// submits, no in-flight completion handoffs, an empty inbox, and
    /// every write buffer flushed — or the flush deadline has passed.
    fn ready_to_exit(&self) -> bool {
        if self
            .exit_deadline
            .is_some_and(|deadline| Instant::now() >= deadline)
        {
            return true;
        }
        if !self.parked.is_empty() {
            return false;
        }
        if self.shared.pending_jobs.load(Ordering::Acquire) != 0 {
            return false;
        }
        {
            let inbox = lock_unpoisoned(&self.shared.inbox);
            if !inbox.new_conns.is_empty() || !inbox.completions.is_empty() {
                return false;
            }
        }
        self.slab
            .iter()
            .flatten()
            .all(|conn| conn.pending_out() == 0)
    }

    /// Final teardown: close every connection and release the slab.
    fn teardown(&mut self) {
        for idx in 0..self.slab.len() {
            self.close(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{decode_response, encode_request, read_frame, write_frame, WireReport};
    use crate::{JobState, ServerConfig};
    use msropm_core::{BatchJob, MsropmConfig};
    use msropm_graph::{generators, Graph};
    use std::io::{BufReader, Write};

    fn fast_config() -> MsropmConfig {
        MsropmConfig {
            dt: 0.02,
            ..MsropmConfig::paper_default()
        }
    }

    fn small_job(replicas: usize, seed: u64) -> BatchJob {
        BatchJob::uniform(fast_config(), replicas, seed)
    }

    fn reactor(config: ReactorConfig) -> ReactorServer {
        ReactorServer::bind("127.0.0.1:0", config).expect("bind ephemeral port")
    }

    /// Minimal blocking test client speaking raw frames; out-of-order
    /// report frames are stashed, never dropped.
    struct RawClient {
        stream: TcpStream,
        reader: BufReader<TcpStream>,
        stash: Vec<WireReport>,
    }

    impl RawClient {
        fn connect(addr: SocketAddr) -> Self {
            let stream = TcpStream::connect(addr).expect("connect");
            let reader = BufReader::new(stream.try_clone().expect("clone"));
            RawClient {
                stream,
                reader,
                stash: Vec::new(),
            }
        }

        fn send(&mut self, req: &Request) {
            let payload = encode_request(req);
            write_frame(&mut self.stream, &payload).expect("write frame");
            self.stream.flush().expect("flush");
        }

        fn recv(&mut self) -> Response {
            let payload = read_frame(&mut self.reader).expect("read frame");
            decode_response(&payload).expect("decode response")
        }

        /// Reads until a non-report frame arrives, stashing reports.
        fn recv_reply(&mut self) -> Response {
            loop {
                match self.recv() {
                    Response::Report(r) => self.stash.push(r),
                    other => return other,
                }
            }
        }

        fn submit(&mut self, tenant: &str, graph: &Graph, job: BatchJob) -> u64 {
            self.send(&Request::Submit {
                tenant: tenant.into(),
                graph: graph.clone(),
                job,
                deadline_ms: 0,
            });
            match self.recv_reply() {
                Response::Submitted { job_id } => job_id,
                other => panic!("expected Submitted, got {other:?}"),
            }
        }

        fn wait_report(&mut self, job_id: u64) -> WireReport {
            loop {
                if let Some(pos) = self.stash.iter().position(|r| r.job_id == job_id) {
                    return self.stash.remove(pos);
                }
                match self.recv() {
                    Response::Report(r) => self.stash.push(r),
                    other => panic!("expected report for {job_id}, got {other:?}"),
                }
            }
        }
    }

    #[cfg(target_os = "linux")]
    fn thread_count() -> usize {
        std::fs::read_dir("/proc/self/task")
            .expect("procfs")
            .count()
    }

    #[test]
    fn submit_streams_a_report_on_both_backends() {
        for poll_backend in [false, true] {
            let server = reactor(ReactorConfig {
                poll_backend,
                ..ReactorConfig::default()
            });
            let g = generators::kings_graph(4, 4);
            let mut c = RawClient::connect(server.local_addr());
            let job_id = c.submit("t", &g, small_job(4, 7));
            let report = c.wait_report(job_id);
            assert_eq!(report.graph_hash, msropm_graph::graph_hash(&g));
            assert_eq!(report.ranked.len(), 4);
            for lane in &report.ranked {
                assert_eq!(proto::verify_lane(&g, lane), Some(lane.conflicts));
            }
            let stats = server.stats();
            assert_eq!(stats.frontend, FrontendKind::Reactor);
            assert_eq!(stats.connections, 1);
            server.shutdown();
        }
    }

    #[test]
    fn full_worker_queue_parks_submits_instead_of_stalling() {
        // Queue capacity 1 with a single worker: a burst of 6 jobs can
        // only fit by parking, yet every submit must be admitted
        // immediately and every report must eventually stream.
        let server = reactor(ReactorConfig {
            wire: WireConfig {
                server: ServerConfig {
                    workers: 1,
                    queue_capacity: 1,
                    cache_capacity: 4,
                    ..ServerConfig::default()
                },
                max_inflight_jobs: 16,
                max_queued_lanes: 1024,
                max_connections: 8,
            },
            ..ReactorConfig::default()
        });
        let g = generators::kings_graph(4, 4);
        let mut c = RawClient::connect(server.local_addr());
        let ids: Vec<u64> = (0..6).map(|i| c.submit("t", &g, small_job(2, i))).collect();
        // A parked job answers status (it is admitted and registered).
        for &id in &ids {
            c.send(&Request::Status {
                tenant: "t".into(),
                job_id: id,
            });
            match c.recv_reply() {
                Response::StatusReply { job_id, .. } => assert_eq!(job_id, id),
                other => panic!("unexpected frame {other:?}"),
            }
        }
        for &id in &ids {
            let report = c.wait_report(id);
            assert_eq!(report.job_id, id);
        }
        server.shutdown();
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn idle_connections_cost_no_threads() {
        let server = reactor(ReactorConfig {
            wire: WireConfig {
                max_connections: 256,
                ..WireConfig::default()
            },
            ..ReactorConfig::default()
        });
        let mut active = RawClient::connect(server.local_addr());
        let baseline = thread_count();
        let idle: Vec<TcpStream> = (0..128)
            .map(|_| TcpStream::connect(server.local_addr()).expect("idle connect"))
            .collect();
        // Wait until the reactor has registered them all.
        let g = generators::kings_graph(4, 4);
        let mut connections = 0;
        for _ in 0..200 {
            active.send(&Request::Stats);
            match active.recv_reply() {
                Response::StatsReply(s) => connections = s.connections,
                other => panic!("unexpected frame {other:?}"),
            }
            if connections >= 129 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(
            connections >= 129,
            "server must track all idle connections, saw {connections}"
        );
        // Idle connections must not have spawned threads (the threaded
        // front end would have added two per connection).
        let with_idle = thread_count();
        assert!(
            with_idle <= baseline + 2,
            "idle connections spawned threads: {baseline} -> {with_idle}"
        );
        // Traffic still flows with the idle fleet attached.
        let id = active.submit("t", &g, small_job(2, 1));
        let report = active.wait_report(id);
        assert_eq!(report.job_id, id);
        drop(idle);
        server.shutdown();
    }

    #[test]
    fn multiple_loops_serve_connections_round_robin() {
        let server = reactor(ReactorConfig {
            loops: 3,
            ..ReactorConfig::default()
        });
        let g = generators::kings_graph(4, 4);
        // More connections than loops: every loop ends up owning some,
        // and each serves submits + reports independently.
        let mut clients: Vec<RawClient> = (0..7)
            .map(|_| RawClient::connect(server.local_addr()))
            .collect();
        let ids: Vec<u64> = clients
            .iter_mut()
            .enumerate()
            .map(|(i, c)| c.submit(&format!("t{i}"), &g, small_job(2, i as u64)))
            .collect();
        for (c, id) in clients.iter_mut().zip(ids) {
            let report = c.wait_report(id);
            assert_eq!(report.job_id, id);
        }
        server.shutdown();
    }

    #[test]
    fn tiny_writes_and_batched_frames_both_decode() {
        let server = reactor(ReactorConfig::default());
        let g = generators::kings_graph(4, 4);
        let mut c = RawClient::connect(server.local_addr());

        // One submit frame dribbled a byte at a time across many writes.
        let payload = encode_request(&Request::Submit {
            tenant: "t".into(),
            graph: g.clone(),
            job: small_job(2, 5),
            deadline_ms: 0,
        });
        let mut framed = Vec::new();
        write_frame(&mut framed, &payload).unwrap();
        for byte in framed {
            c.stream.write_all(&[byte]).expect("write byte");
            c.stream.flush().expect("flush byte");
        }
        let id = match c.recv() {
            Response::Submitted { job_id } => job_id,
            other => panic!("expected Submitted, got {other:?}"),
        };
        let report = c.wait_report(id);
        assert_eq!(report.job_id, id);

        // Two requests batched into one write: both answered.
        let mut batch = Vec::new();
        write_frame(&mut batch, &encode_request(&Request::Stats)).unwrap();
        write_frame(
            &mut batch,
            &encode_request(&Request::Status {
                tenant: "t".into(),
                job_id: id,
            }),
        )
        .unwrap();
        c.stream.write_all(&batch).expect("write batch");
        c.stream.flush().expect("flush batch");
        let mut saw_stats = false;
        let mut saw_status = false;
        while !(saw_stats && saw_status) {
            match c.recv() {
                Response::StatsReply(_) => saw_stats = true,
                Response::StatusReply { job_id, state } => {
                    assert_eq!(job_id, id);
                    assert_eq!(state, JobState::Done);
                    saw_status = true;
                }
                Response::Report(_) => {}
                other => panic!("unexpected frame {other:?}"),
            }
        }
        server.shutdown();
    }

    #[test]
    fn malformed_frames_get_typed_errors_and_desync_closes() {
        let server = reactor(ReactorConfig::default());
        let mut c = RawClient::connect(server.local_addr());
        // Well-framed unknown verb: typed error, connection survives.
        write_frame(&mut c.stream, &[0x55, 1, 2, 3]).unwrap();
        c.stream.flush().unwrap();
        match c.recv() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnsupportedVerb),
            other => panic!("expected UnsupportedVerb, got {other:?}"),
        }
        c.send(&Request::Stats);
        match c.recv() {
            Response::StatsReply(_) => {}
            other => panic!("expected StatsReply, got {other:?}"),
        }
        // An oversized length prefix desyncs the stream: one Malformed
        // error frame, then the server closes the connection.
        c.stream
            .write_all(&(proto::MAX_FRAME_LEN + 1).to_le_bytes())
            .unwrap();
        c.stream.flush().unwrap();
        match c.recv() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
            other => panic!("expected Malformed, got {other:?}"),
        }
        let eof = read_frame(&mut c.reader);
        assert!(eof.is_err(), "desynced connection must be closed");
        server.shutdown();
    }

    #[test]
    fn draining_rejects_submits_but_streams_inflight_reports() {
        let server = reactor(ReactorConfig {
            wire: WireConfig {
                server: ServerConfig {
                    workers: 1,
                    queue_capacity: 8,
                    cache_capacity: 4,
                    ..ServerConfig::default()
                },
                ..WireConfig::default()
            },
            ..ReactorConfig::default()
        });
        // Long enough (~seconds on one worker) that the drain window is
        // wide open for the late submit below.
        let g = generators::kings_graph(10, 10);
        let mut c = RawClient::connect(server.local_addr());
        let job_id = c.submit("t", &g, small_job(32, 3));
        let drainer = std::thread::spawn(move || server.shutdown());
        std::thread::sleep(Duration::from_millis(100));
        c.send(&Request::Submit {
            tenant: "t".into(),
            graph: g.clone(),
            job: small_job(2, 99),
            deadline_ms: 0,
        });
        match c.recv() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::Draining),
            other => panic!("expected Draining rejection, got {other:?}"),
        }
        let report = c.wait_report(job_id);
        assert_eq!(report.job_id, job_id);
        drainer.join().expect("drain completes");
    }

    #[test]
    fn cancelled_jobs_never_stream_and_free_quota() {
        let server = reactor(ReactorConfig {
            wire: WireConfig {
                server: ServerConfig {
                    workers: 1,
                    queue_capacity: 8,
                    cache_capacity: 4,
                    ..ServerConfig::default()
                },
                max_inflight_jobs: 2,
                max_queued_lanes: 64,
                max_connections: 8,
            },
            ..ReactorConfig::default()
        });
        let g = generators::kings_graph(6, 6);
        let mut c = RawClient::connect(server.local_addr());
        let a = c.submit("t", &g, small_job(16, 1));
        let b = c.submit("t", &g, small_job(4, 2));
        // A third submit exceeds max_inflight_jobs = 2.
        c.send(&Request::Submit {
            tenant: "t".into(),
            graph: g.clone(),
            job: small_job(2, 3),
            deadline_ms: 0,
        });
        match c.recv() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::QuotaInFlight),
            other => panic!("expected quota rejection, got {other:?}"),
        }
        c.send(&Request::Cancel {
            tenant: "t".into(),
            job_id: b,
        });
        match c.recv_reply() {
            Response::CancelReply { job_id, .. } => assert_eq!(job_id, b),
            other => panic!("expected CancelReply, got {other:?}"),
        }
        let report = c.wait_report(a);
        assert_eq!(report.job_id, a);
        // B settles cancelled and its quota slot frees.
        let mut state = JobState::Queued;
        for _ in 0..200 {
            c.send(&Request::Status {
                tenant: "t".into(),
                job_id: b,
            });
            match c.recv() {
                Response::StatusReply { state: s, .. } => state = s,
                Response::Report(r) => panic!("cancelled job streamed a report: {r:?}"),
                other => panic!("unexpected frame {other:?}"),
            }
            if state == JobState::Cancelled {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(state, JobState::Cancelled);
        let c2 = c.submit("t", &g, small_job(2, 4));
        let report = c.wait_report(c2);
        assert_eq!(report.job_id, c2);
        server.shutdown();
    }
}
