//! The MSROPM wire protocol: length-prefixed frames, hand-rolled codec.
//!
//! No network/serde crates exist in `vendor/`, so the protocol is a
//! small fixed binary format with an explicit, non-panicking decoder.
//!
//! # Frame layout
//!
//! Every message travels as one frame:
//!
//! ```text
//! +----------------+---------------------------+
//! | u32 LE length  |  payload (length bytes)   |
//! +----------------+---------------------------+
//!                    payload[0] = frame type
//!                    payload[1..] = body
//! ```
//!
//! The length covers the payload only (type byte included) and is
//! capped at [`MAX_FRAME_LEN`]; a peer announcing more is desynced or
//! hostile and the connection must be dropped. All integers are
//! little-endian; `f64`s travel as their IEEE-754 bit patterns, so
//! reports are **bit-exact** across the wire.
//!
//! # Frame types (verbs)
//!
//! | byte  | direction | frame |
//! |-------|-----------|-------|
//! | `0x01`| C → S     | `submit` — tenant, graph, job (config + lanes + seed) |
//! | `0x02`| C → S     | `status` — tenant, job id |
//! | `0x03`| C → S     | `cancel` — tenant, job id |
//! | `0x04`| C → S     | `stats` |
//! | `0x05`| C → S     | `submit problem` — tenant, [`msropm_problems::ProblemSpec`], base config, replicas, seed, deadline |
//! | `0x81`| S → C     | `submitted` — job id |
//! | `0x82`| S → C     | `status reply` — job id, [`JobState`] |
//! | `0x83`| S → C     | `cancel reply` — job id, state after the cancel request |
//! | `0x84`| S → C     | `stats reply` — server counters |
//! | `0x90`| S → C     | `report` — streamed when a job completes (never for cancelled jobs) |
//! | `0x92`| S → C     | `problem report` — streamed when a `submit problem` job completes: typed, decoded domain solutions (see [`WireProblemReport`]) |
//! | `0x91`| S → C     | `job error` — job id + typed [`ErrorCode`] + message, streamed when a job dies without a report (panicking solve, expired deadline, dead worker) |
//! | `0xE0`| S → C     | `error` — typed [`ErrorCode`] + message (scoped to the *current request*, unlike `0x91`) |
//!
//! Strings are `u16 LE length + UTF-8 bytes`. A graph is
//! `u32 n, u32 m, m × (u32 u, u32 v)` — the canonical edge list, hashed
//! server-side with [`msropm_graph::io::graph_hash`] and echoed back in
//! the report for end-to-end integrity checking. A submit body ends
//! with `u64 seed, u64 deadline_ms` — a deadline of `0` means none;
//! otherwise the job must produce its report within that many
//! milliseconds of admission or it is shed/abandoned with a `0x91`
//! frame carrying [`ErrorCode::DeadlineExceeded`].
//!
//! # Decoder contract
//!
//! [`decode_request`]/[`decode_response`] **never panic** on arbitrary
//! bytes: truncated, oversized, trailing-garbage and out-of-range
//! inputs all come back as a typed [`ProtoError`] (property-tested
//! below with arbitrary byte prefixes). Numeric fields are validated on
//! decode (finite, non-negative, `num_colors` a power of two ≥ 2, …) so
//! a malformed frame is rejected at the boundary and can never panic a
//! worker thread deeper in the stack.

use crate::{JobOutcome, JobState};
use msropm_core::{BatchJob, KernelBackend, LaneConfig, MsropmConfig, ReinitMode};
use msropm_graph::Graph;
use msropm_problems::{
    Cnf, DecodedLane, DecodedSolution, Ising, Lit, ProblemClass, ProblemReport, ProblemSpec, Qubo,
};
use std::fmt;
use std::io::{self, Read, Write};

/// Hard cap on one frame's payload length (type byte + body).
///
/// Generous enough for a ~1M-edge submit or a multi-lane report on a
/// large board, small enough that a garbage length prefix cannot drive
/// an allocation spree.
pub const MAX_FRAME_LEN: u32 = 32 << 20;

/// Longest accepted tenant id, in bytes.
pub const MAX_TENANT_LEN: usize = 256;

/// Most lanes one submitted job may carry. Far above any real sweep
/// (the per-tenant queued-lane quota is orders of magnitude lower) and
/// low enough that a hostile lane count cannot drive a multi-GB
/// pre-allocation in the decoder.
pub const MAX_JOB_LANES: usize = 65_536;

// Frame type bytes.
const T_SUBMIT: u8 = 0x01;
const T_STATUS: u8 = 0x02;
const T_CANCEL: u8 = 0x03;
const T_STATS: u8 = 0x04;
const T_SUBMIT_PROBLEM: u8 = 0x05;
const T_SUBMITTED: u8 = 0x81;
const T_STATUS_REPLY: u8 = 0x82;
const T_CANCEL_REPLY: u8 = 0x83;
const T_STATS_REPLY: u8 = 0x84;
const T_REPORT: u8 = 0x90;
const T_JOB_ERROR: u8 = 0x91;
const T_PROBLEM_REPORT: u8 = 0x92;
const T_ERROR: u8 = 0xE0;

/// Typed error carried by an error frame (`0xE0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// The request frame could not be decoded or failed validation.
    Malformed = 1,
    /// The frame type byte names no known verb.
    UnsupportedVerb = 2,
    /// The tenant is at its in-flight job quota.
    QuotaInFlight = 3,
    /// Admitting the job would exceed the tenant's queued-lane quota.
    QuotaLanes = 4,
    /// The server is draining; no new jobs are admitted.
    ShuttingDown = 5,
    /// No job with the given id exists.
    UnknownJob = 6,
    /// The job belongs to a different tenant.
    Forbidden = 7,
    /// The server is at its connection cap.
    Busy = 8,
    /// A graceful drain has begun; new submits are rejected while
    /// in-flight jobs run to completion (distinct from
    /// [`ErrorCode::ShuttingDown`], which means the worker pool itself
    /// is gone).
    Draining = 9,
    /// The job's deadline expired before it produced a report — shed in
    /// the queue or abandoned at a stage boundary. Not retryable as-is
    /// (the same submit would expire again under the same load).
    DeadlineExceeded = 10,
    /// The server failed internally executing the job (a panicking
    /// solve or a dead worker); the job is lost but the server lives.
    Internal = 11,
    /// A `submit problem` carried a spec the server cannot compile
    /// (invalid palette, instance over caps, …). Request-scoped: the
    /// connection stays usable.
    UnsupportedProblem = 12,
}

impl ErrorCode {
    /// Inverse of `self as u16`.
    pub fn from_u16(v: u16) -> Option<ErrorCode> {
        match v {
            1 => Some(ErrorCode::Malformed),
            2 => Some(ErrorCode::UnsupportedVerb),
            3 => Some(ErrorCode::QuotaInFlight),
            4 => Some(ErrorCode::QuotaLanes),
            5 => Some(ErrorCode::ShuttingDown),
            6 => Some(ErrorCode::UnknownJob),
            7 => Some(ErrorCode::Forbidden),
            8 => Some(ErrorCode::Busy),
            9 => Some(ErrorCode::Draining),
            10 => Some(ErrorCode::DeadlineExceeded),
            11 => Some(ErrorCode::Internal),
            12 => Some(ErrorCode::UnsupportedProblem),
            _ => None,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorCode::Malformed => "malformed request",
            ErrorCode::UnsupportedVerb => "unsupported verb",
            ErrorCode::QuotaInFlight => "tenant in-flight job quota exceeded",
            ErrorCode::QuotaLanes => "tenant queued-lane quota exceeded",
            ErrorCode::ShuttingDown => "server shutting down",
            ErrorCode::UnknownJob => "unknown job id",
            ErrorCode::Forbidden => "job belongs to a different tenant",
            ErrorCode::Busy => "server connection cap reached",
            ErrorCode::Draining => "server is draining; no new submits",
            ErrorCode::DeadlineExceeded => "job deadline exceeded",
            ErrorCode::Internal => "internal server error executing the job",
            ErrorCode::UnsupportedProblem => "unsupported problem spec",
        };
        f.write_str(s)
    }
}

/// Decode/stream failures. Everything except [`ProtoError::Io`] means
/// the *bytes* were bad, not the transport.
#[derive(Debug)]
pub enum ProtoError {
    /// Underlying transport failure (including EOF mid-frame).
    Io(io::Error),
    /// The payload ended before the field being read.
    Truncated,
    /// A frame header announced more than [`MAX_FRAME_LEN`] bytes.
    Oversized(u32),
    /// Bytes remained after the last field of the message.
    Trailing(usize),
    /// Unknown frame type byte.
    BadTag(u8),
    /// A field held an out-of-range or inconsistent value.
    BadValue(&'static str),
    /// The embedded graph was rejected (self-loop, bad endpoint, …).
    Graph(String),
    /// The embedded problem spec was rejected by
    /// [`msropm_problems::ProblemSpec::validate`] (over caps, bad
    /// palette, inconsistent instance, …).
    Problem(String),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "i/o error: {e}"),
            ProtoError::Truncated => write!(f, "frame truncated"),
            ProtoError::Oversized(n) => {
                write!(f, "frame length {n} exceeds cap {MAX_FRAME_LEN}")
            }
            ProtoError::Trailing(n) => write!(f, "{n} trailing bytes after message"),
            ProtoError::BadTag(t) => write!(f, "unknown frame type 0x{t:02X}"),
            ProtoError::BadValue(what) => write!(f, "invalid field: {what}"),
            ProtoError::Graph(e) => write!(f, "invalid graph: {e}"),
            ProtoError::Problem(e) => write!(f, "invalid problem spec: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// A client-to-server message.
// Submit dwarfs the other variants, but a Request is a transient: one
// per decoded frame, dispatched and dropped — never stored in bulk.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Request {
    /// Submit one batch job against a graph.
    Submit {
        /// Quota-accounting identity of the submitter.
        tenant: String,
        /// The problem instance.
        graph: Graph,
        /// Operating point + lanes + seed.
        job: BatchJob,
        /// Milliseconds the job may take from admission to report; `0`
        /// means no deadline. Enforced server-side at worker pickup and
        /// at every stage boundary — an expired job answers with a
        /// `0x91` frame carrying [`ErrorCode::DeadlineExceeded`].
        deadline_ms: u64,
    },
    /// Submit one typed problem instance: the server compiles the spec
    /// onto the machine (`msropm_problems::ProblemSpec::compile`), runs
    /// `replicas` uniform lanes, and streams back a decoded
    /// [`Response::ProblemReport`] instead of a raw coloring report.
    SubmitProblem {
        /// Quota-accounting identity of the submitter.
        tenant: String,
        /// The typed problem instance.
        spec: ProblemSpec,
        /// Base operating point (`num_colors` is overridden per class
        /// at compile time).
        config: MsropmConfig,
        /// Number of uniform replica lanes to run.
        replicas: u32,
        /// Job seed (per-lane seeds derive from it).
        seed: u64,
        /// Milliseconds from admission to report; `0` means none.
        deadline_ms: u64,
    },
    /// Query one job's [`JobState`].
    Status {
        /// Identity of the querying tenant (must own the job).
        tenant: String,
        /// Server-assigned job id.
        job_id: u64,
    },
    /// Request cooperative cancellation of one job.
    Cancel {
        /// Identity of the cancelling tenant (must own the job).
        tenant: String,
        /// Server-assigned job id.
        job_id: u64,
    },
    /// Fetch server-wide counters.
    Stats,
}

/// Which serving architecture answered a stats request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum FrontendKind {
    /// Thread-per-connection front end ([`crate::wire::WireServer`]).
    #[default]
    Threads = 0,
    /// Nonblocking event-loop front end
    /// ([`crate::reactor::ReactorServer`]).
    Reactor = 1,
    /// HTTP/1.1 + JSON gateway front end
    /// ([`crate::http::HttpServer`]).
    Http = 2,
}

impl FrontendKind {
    /// Inverse of `self as u8` (for wire decoding).
    pub fn from_u8(b: u8) -> Option<FrontendKind> {
        match b {
            0 => Some(FrontendKind::Threads),
            1 => Some(FrontendKind::Reactor),
            2 => Some(FrontendKind::Http),
            _ => None,
        }
    }

    /// Inverse of [`fmt::Display`] (flag parsing).
    pub fn from_name(name: &str) -> Option<FrontendKind> {
        match name {
            "threads" => Some(FrontendKind::Threads),
            "reactor" => Some(FrontendKind::Reactor),
            "http" => Some(FrontendKind::Http),
            _ => None,
        }
    }
}

impl fmt::Display for FrontendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FrontendKind::Threads => "threads",
            FrontendKind::Reactor => "reactor",
            FrontendKind::Http => "http",
        })
    }
}

/// Server-wide counters carried by a stats reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireStats {
    /// Jobs that completed with a report, since boot.
    pub jobs_completed: u64,
    /// Jobs observed as cancelled (no report), since boot.
    pub jobs_cancelled: u64,
    /// Jobs that died without a report (panicking solves, expired
    /// deadlines, dead workers), since boot.
    pub jobs_failed: u64,
    /// Dead workers the supervisor has respawned, since boot.
    pub worker_restarts: u64,
    /// Jobs waiting in the queue right now.
    pub backlog: u64,
    /// Problem-cache hits since boot.
    pub cache_hits: u64,
    /// Problem-cache misses since boot.
    pub cache_misses: u64,
    /// Connections currently served.
    pub connections: u64,
    /// Jobs that ran with more than one shard (intra-job parallel
    /// solves), since boot.
    pub jobs_sharded: u64,
    /// The widest shard count any job has run with, since boot.
    pub shard_width_max: u64,
    /// Which front end is serving (threads vs reactor).
    pub frontend: FrontendKind,
}

/// One ranked lane inside a [`WireReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct WireLane {
    /// Index of the lane in the submitted job.
    pub lane: u32,
    /// The derived per-lane seed.
    pub seed: u64,
    /// Conflicting edges (the ranking key).
    pub conflicts: u64,
    /// Fraction of properly colored edges (IEEE bits preserved).
    pub accuracy: f64,
    /// The lane's coloring, one color index per node.
    pub coloring: Vec<u16>,
}

/// The over-the-wire projection of a completed job: the ranked report
/// (minus bulky per-stage internals) plus server-side timing.
///
/// Deliberately *not* the full [`msropm_core::JobReport`]: per-stage
/// partitions and final oscillator phases stay server-side. What is
/// carried — ranking, conflicts, accuracy bits, colorings — is the
/// deterministic contract, so two servers (or worker counts) producing
/// the same job emit byte-identical report frames.
#[derive(Debug, Clone, PartialEq)]
pub struct WireReport {
    /// Server-assigned job id the report answers.
    pub job_id: u64,
    /// Canonical hash of the graph the job ran against.
    pub graph_hash: u64,
    /// The job seed, echoed back.
    pub seed: u64,
    /// Time the job waited in the queue, microseconds.
    pub queued_us: u64,
    /// Service time (compile + solve + rank), microseconds.
    pub service_us: u64,
    /// Every lane, best first.
    pub ranked: Vec<WireLane>,
}

impl WireReport {
    /// Projects a completed [`JobOutcome`] onto the wire format.
    pub fn from_outcome(job_id: u64, outcome: &JobOutcome) -> Self {
        WireReport {
            job_id,
            graph_hash: outcome.report.graph_hash,
            seed: outcome.report.seed,
            queued_us: outcome.timing.queued.as_micros() as u64,
            service_us: outcome.timing.service.as_micros() as u64,
            ranked: outcome
                .report
                .ranked
                .iter()
                .map(|r| WireLane {
                    lane: r.lane as u32,
                    seed: r.seed,
                    conflicts: r.conflicts as u64,
                    accuracy: r.accuracy,
                    coloring: r.solution.coloring.as_slice().iter().map(|c| c.0).collect(),
                })
                .collect(),
        }
    }

    /// The best lane (rank 0), if the job had any lanes.
    pub fn best(&self) -> Option<&WireLane> {
        self.ranked.first()
    }
}

/// The over-the-wire result of a `submit problem` job: the decoded
/// [`msropm_problems::ProblemReport`] (typed domain solutions, ranked by
/// domain objective) plus the job id and server-side timing. Like
/// [`WireReport`], everything carried is deterministic — objectives
/// travel as IEEE-754 bits — so any worker count, shard width or front
/// end emits byte-identical frames for the same submission.
#[derive(Debug, Clone, PartialEq)]
pub struct WireProblemReport {
    /// Server-assigned job id the report answers.
    pub job_id: u64,
    /// Time the job waited in the queue, microseconds.
    pub queued_us: u64,
    /// Service time (compile + solve + rank + decode), microseconds.
    pub service_us: u64,
    /// The decoded domain-level report.
    pub report: ProblemReport,
}

impl WireProblemReport {
    /// The best decoded lane (rank 0), if any.
    pub fn best(&self) -> Option<&DecodedLane> {
        self.report.best()
    }
}

/// A server-to-client message.
#[derive(Debug, Clone)]
pub enum Response {
    /// The submit was admitted; the report will stream later.
    Submitted {
        /// Server-assigned job id.
        job_id: u64,
    },
    /// Reply to a status request.
    StatusReply {
        /// The queried job.
        job_id: u64,
        /// Its current state.
        state: JobState,
    },
    /// Reply to a cancel request (the cancel is *requested*; the state
    /// reflects what the job was at reply time — cooperative
    /// cancellation lands at the worker's next check).
    CancelReply {
        /// The cancelled job.
        job_id: u64,
        /// State at reply time.
        state: JobState,
    },
    /// Reply to a stats request.
    StatsReply(WireStats),
    /// A completed job's report, streamed when ready.
    Report(WireReport),
    /// A completed `submit problem` job's decoded report, streamed when
    /// ready (in a [`Response::Report`]'s place).
    ProblemReport(WireProblemReport),
    /// A job died without a report (panicking solve, expired deadline,
    /// dead worker) — streamed in a report's place, so every admitted
    /// job reaches the client as exactly one terminal frame (report or
    /// this; cancelled jobs excepted, which stream nothing).
    JobFailed {
        /// The job that died.
        job_id: u64,
        /// Why ([`ErrorCode::DeadlineExceeded`] or
        /// [`ErrorCode::Internal`]).
        code: ErrorCode,
        /// Human-readable detail (e.g. the panic message).
        message: String,
    },
    /// Typed failure of the *current request* (unlike
    /// [`Response::JobFailed`], which is job-scoped and streamed).
    Error {
        /// What went wrong.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

// ---------------------------------------------------------------------
// Byte-level reader/writer
// ---------------------------------------------------------------------

struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.remaining() < n {
            return Err(ProtoError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> Result<bool, ProtoError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(ProtoError::BadValue("bool byte not 0/1")),
        }
    }

    fn str16(&mut self) -> Result<String, ProtoError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::BadValue("non-UTF-8 string"))
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(ProtoError::Trailing(self.remaining()))
        }
    }
}

struct ByteWriter(Vec<u8>);

impl ByteWriter {
    fn new(tag: u8) -> Self {
        ByteWriter(vec![tag])
    }

    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    fn str16(&mut self, s: &str) {
        let bytes = s.as_bytes();
        let len = bytes.len().min(u16::MAX as usize);
        self.u16(len as u16);
        self.0.extend_from_slice(&bytes[..len]);
    }
}

// ---------------------------------------------------------------------
// Domain-type codecs
// ---------------------------------------------------------------------

fn finite_nonneg(v: f64, what: &'static str) -> Result<f64, ProtoError> {
    if v.is_finite() && v >= 0.0 {
        Ok(v)
    } else {
        Err(ProtoError::BadValue(what))
    }
}

fn put_graph(w: &mut ByteWriter, g: &Graph) {
    w.u32(g.num_nodes() as u32);
    w.u32(g.num_edges() as u32);
    for (_, u, v) in g.edges() {
        w.u32(u.index() as u32);
        w.u32(v.index() as u32);
    }
}

fn get_graph(r: &mut ByteReader) -> Result<Graph, ProtoError> {
    let n = r.u32()? as usize;
    let m = r.u32()? as usize;
    // Guard the allocation: each edge is 8 bytes, so a garbage count
    // larger than the remaining payload is rejected before reserving.
    if r.remaining() < m.saturating_mul(8) {
        return Err(ProtoError::Truncated);
    }
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let u = r.u32()? as usize;
        let v = r.u32()? as usize;
        edges.push((u, v));
    }
    Graph::from_edges(n, edges).map_err(|e| ProtoError::Graph(e.to_string()))
}

fn put_reinit(w: &mut ByteWriter, reinit: ReinitMode) {
    match reinit {
        ReinitMode::UniformRandom => w.u8(0),
        ReinitMode::JitterDrift { sigma } => {
            w.u8(1);
            w.f64(sigma);
        }
    }
}

fn get_reinit(r: &mut ByteReader) -> Result<ReinitMode, ProtoError> {
    match r.u8()? {
        0 => Ok(ReinitMode::UniformRandom),
        1 => {
            let sigma = finite_nonneg(r.f64()?, "reinit sigma")?;
            Ok(ReinitMode::JitterDrift { sigma })
        }
        _ => Err(ProtoError::BadValue("reinit mode tag")),
    }
}

fn put_backend(w: &mut ByteWriter, backend: KernelBackend) {
    w.u8(match backend {
        KernelBackend::F64 => 0,
        KernelBackend::Fixed => 1,
    });
}

fn get_backend(r: &mut ByteReader) -> Result<KernelBackend, ProtoError> {
    match r.u8()? {
        0 => Ok(KernelBackend::F64),
        1 => Ok(KernelBackend::Fixed),
        _ => Err(ProtoError::BadValue("kernel backend tag")),
    }
}

fn put_config(w: &mut ByteWriter, c: &MsropmConfig) {
    w.u32(c.num_colors as u32);
    w.f64(c.coupling_strength);
    w.f64(c.shil_strength);
    w.f64(c.noise);
    w.f64(c.frequency_spread);
    w.f64(c.t_init);
    w.f64(c.t_anneal);
    w.f64(c.t_lock);
    w.f64(c.dt);
    put_reinit(w, c.reinit);
    w.bool(c.shil_ramp);
    put_backend(w, c.backend);
}

/// Decodes a config, enforcing the invariants `MsropmConfig::validate`
/// would otherwise *panic* on — a malformed frame must never take down
/// a worker.
fn get_config(r: &mut ByteReader) -> Result<MsropmConfig, ProtoError> {
    let num_colors = r.u32()? as usize;
    if num_colors < 2 || !num_colors.is_power_of_two() || num_colors > u16::MAX as usize + 1 {
        return Err(ProtoError::BadValue("num_colors not a power of two >= 2"));
    }
    let coupling_strength = finite_nonneg(r.f64()?, "coupling_strength")?;
    let shil_strength = finite_nonneg(r.f64()?, "shil_strength")?;
    let noise = finite_nonneg(r.f64()?, "noise")?;
    let frequency_spread = finite_nonneg(r.f64()?, "frequency_spread")?;
    let t_init = finite_nonneg(r.f64()?, "t_init")?;
    let t_anneal = finite_nonneg(r.f64()?, "t_anneal")?;
    let t_lock = finite_nonneg(r.f64()?, "t_lock")?;
    let dt = r.f64()?;
    if !dt.is_finite() || dt <= 0.0 {
        return Err(ProtoError::BadValue("dt not positive"));
    }
    let reinit = get_reinit(r)?;
    let shil_ramp = r.bool()?;
    let backend = get_backend(r)?;
    Ok(MsropmConfig {
        num_colors,
        coupling_strength,
        shil_strength,
        noise,
        frequency_spread,
        t_init,
        t_anneal,
        t_lock,
        dt,
        reinit,
        shil_ramp,
        backend,
    })
}

const LANE_COUPLING: u8 = 1 << 0;
const LANE_SHIL: u8 = 1 << 1;
const LANE_NOISE: u8 = 1 << 2;
const LANE_RAMP: u8 = 1 << 3;
const LANE_REINIT: u8 = 1 << 4;
const LANE_BACKEND: u8 = 1 << 5;

fn put_lane(w: &mut ByteWriter, lane: &LaneConfig) {
    let mut flags = 0u8;
    if lane.coupling_strength.is_some() {
        flags |= LANE_COUPLING;
    }
    if lane.shil_strength.is_some() {
        flags |= LANE_SHIL;
    }
    if lane.noise.is_some() {
        flags |= LANE_NOISE;
    }
    if lane.shil_ramp.is_some() {
        flags |= LANE_RAMP;
    }
    if lane.reinit.is_some() {
        flags |= LANE_REINIT;
    }
    if lane.backend.is_some() {
        flags |= LANE_BACKEND;
    }
    w.u8(flags);
    if let Some(v) = lane.coupling_strength {
        w.f64(v);
    }
    if let Some(v) = lane.shil_strength {
        w.f64(v);
    }
    if let Some(v) = lane.noise {
        w.f64(v);
    }
    if let Some(v) = lane.shil_ramp {
        w.bool(v);
    }
    if let Some(v) = lane.reinit {
        put_reinit(w, v);
    }
    if let Some(v) = lane.backend {
        put_backend(w, v);
    }
}

fn get_lane(r: &mut ByteReader) -> Result<LaneConfig, ProtoError> {
    let flags = r.u8()?;
    if flags & !(LANE_COUPLING | LANE_SHIL | LANE_NOISE | LANE_RAMP | LANE_REINIT | LANE_BACKEND)
        != 0
    {
        return Err(ProtoError::BadValue("unknown lane override flag"));
    }
    let mut lane = LaneConfig::default();
    if flags & LANE_COUPLING != 0 {
        lane.coupling_strength = Some(finite_nonneg(r.f64()?, "lane coupling_strength")?);
    }
    if flags & LANE_SHIL != 0 {
        lane.shil_strength = Some(finite_nonneg(r.f64()?, "lane shil_strength")?);
    }
    if flags & LANE_NOISE != 0 {
        lane.noise = Some(finite_nonneg(r.f64()?, "lane noise")?);
    }
    if flags & LANE_RAMP != 0 {
        lane.shil_ramp = Some(r.bool()?);
    }
    if flags & LANE_REINIT != 0 {
        lane.reinit = Some(get_reinit(r)?);
    }
    if flags & LANE_BACKEND != 0 {
        lane.backend = Some(get_backend(r)?);
    }
    Ok(lane)
}

fn put_quadratic(w: &mut ByteWriter, n: usize, linear: &[f64], quad: &[(u32, u32, f64)]) {
    w.u32(n as u32);
    w.u32(linear.len() as u32);
    for &x in linear {
        w.f64(x);
    }
    w.u32(quad.len() as u32);
    for &(i, j, v) in quad {
        w.u32(i);
        w.u32(j);
        w.f64(v);
    }
}

type Quadratic = (usize, Vec<f64>, Vec<(u32, u32, f64)>);

fn get_quadratic(r: &mut ByteReader) -> Result<Quadratic, ProtoError> {
    let n = r.u32()? as usize;
    let num_linear = r.u32()? as usize;
    // Guard every count against the remaining payload before reserving
    // (same discipline as `get_graph`).
    if r.remaining() < num_linear.saturating_mul(8) {
        return Err(ProtoError::Truncated);
    }
    let mut linear = Vec::with_capacity(num_linear);
    for _ in 0..num_linear {
        linear.push(r.f64()?);
    }
    let num_quad = r.u32()? as usize;
    if num_quad > msropm_problems::MAX_COUPLINGS {
        return Err(ProtoError::BadValue("coupling count over cap"));
    }
    if r.remaining() < num_quad.saturating_mul(16) {
        return Err(ProtoError::Truncated);
    }
    let mut quad = Vec::with_capacity(num_quad);
    for _ in 0..num_quad {
        let i = r.u32()?;
        let j = r.u32()?;
        let v = r.f64()?;
        quad.push((i, j, v));
    }
    Ok((n, linear, quad))
}

fn put_spec(w: &mut ByteWriter, spec: &ProblemSpec) {
    w.u8(spec.class().tag());
    match spec {
        ProblemSpec::Coloring { graph, colors } => {
            put_graph(w, graph);
            w.u16(*colors);
        }
        ProblemSpec::MaxKCut { graph, k } => {
            put_graph(w, graph);
            w.u16(*k);
        }
        ProblemSpec::MaxCut { graph }
        | ProblemSpec::Mis { graph }
        | ProblemSpec::VertexCover { graph } => put_graph(w, graph),
        ProblemSpec::NumberPartition { weights } => {
            w.u32(weights.len() as u32);
            for &weight in weights {
                w.u64(weight);
            }
        }
        ProblemSpec::CnfSat { cnf } => {
            w.u32(cnf.num_vars() as u32);
            w.u32(cnf.clauses().len() as u32);
            for clause in cnf.clauses() {
                w.u32(clause.len() as u32);
                for lit in clause {
                    w.u32(lit.code() as u32);
                }
            }
        }
        ProblemSpec::Qubo(q) => put_quadratic(w, q.n, &q.linear, &q.quadratic),
        ProblemSpec::Ising(ising) => put_quadratic(w, ising.n, &ising.h, &ising.j),
    }
}

/// Decodes a problem spec. Only *structural* caps are enforced here
/// (allocation guards); domain validation is the server's compile step,
/// which answers [`ErrorCode::UnsupportedProblem`] without dropping the
/// connection.
fn get_spec(r: &mut ByteReader) -> Result<ProblemSpec, ProtoError> {
    let class = ProblemClass::from_tag(r.u8()?).ok_or(ProtoError::BadValue("problem class tag"))?;
    Ok(match class {
        ProblemClass::Coloring => {
            let graph = get_graph(r)?;
            let colors = r.u16()?;
            ProblemSpec::Coloring { graph, colors }
        }
        ProblemClass::MaxKCut => {
            let graph = get_graph(r)?;
            let k = r.u16()?;
            ProblemSpec::MaxKCut { graph, k }
        }
        ProblemClass::MaxCut => ProblemSpec::MaxCut {
            graph: get_graph(r)?,
        },
        ProblemClass::Mis => ProblemSpec::Mis {
            graph: get_graph(r)?,
        },
        ProblemClass::VertexCover => ProblemSpec::VertexCover {
            graph: get_graph(r)?,
        },
        ProblemClass::NumberPartition => {
            let n = r.u32()? as usize;
            if r.remaining() < n.saturating_mul(8) {
                return Err(ProtoError::Truncated);
            }
            let mut weights = Vec::with_capacity(n);
            for _ in 0..n {
                weights.push(r.u64()?);
            }
            ProblemSpec::NumberPartition { weights }
        }
        ProblemClass::CnfSat => {
            let num_vars = r.u32()? as usize;
            if num_vars > msropm_problems::MAX_VARIABLES {
                return Err(ProtoError::BadValue("CNF variable count over cap"));
            }
            let num_clauses = r.u32()? as usize;
            if num_clauses > msropm_problems::MAX_CNF_CLAUSES {
                return Err(ProtoError::BadValue("CNF clause count over cap"));
            }
            // Each clause is at least its 4-byte length field.
            if r.remaining() < num_clauses.saturating_mul(4) {
                return Err(ProtoError::Truncated);
            }
            let mut cnf = Cnf::new(num_vars);
            let mut total_lits = 0usize;
            for _ in 0..num_clauses {
                let len = r.u32()? as usize;
                total_lits = total_lits.saturating_add(len);
                if total_lits > msropm_problems::MAX_CNF_LITERALS {
                    return Err(ProtoError::BadValue("CNF literal count over cap"));
                }
                if r.remaining() < len.saturating_mul(4) {
                    return Err(ProtoError::Truncated);
                }
                let mut clause = Vec::with_capacity(len);
                for _ in 0..len {
                    let code = r.u32()? as usize;
                    // `add_clause` grows `num_vars` to fit any literal;
                    // reject out-of-range codes instead of letting a
                    // hostile literal inflate the variable space.
                    if code / 2 >= num_vars.max(1) {
                        return Err(ProtoError::BadValue("CNF literal out of range"));
                    }
                    clause.push(Lit::from_code(code));
                }
                cnf.add_clause(clause);
            }
            ProblemSpec::CnfSat { cnf }
        }
        ProblemClass::Qubo => {
            let (n, linear, quadratic) = get_quadratic(r)?;
            ProblemSpec::Qubo(Qubo {
                n,
                linear,
                quadratic,
            })
        }
        ProblemClass::Ising => {
            let (n, h, j) = get_quadratic(r)?;
            ProblemSpec::Ising(Ising { n, h, j })
        }
    })
}

// Decoded-solution payload tags (one per `DecodedSolution` variant).
const SOL_COLORING: u8 = 1;
const SOL_CUT_SIDES: u8 = 2;
const SOL_SUBSET: u8 = 3;
const SOL_PARTITION: u8 = 4;
const SOL_ASSIGNMENT: u8 = 5;
const SOL_SPINS: u8 = 6;

fn put_bools(w: &mut ByteWriter, bits: &[bool]) {
    w.u32(bits.len() as u32);
    for &b in bits {
        w.bool(b);
    }
}

fn get_bools(r: &mut ByteReader) -> Result<Vec<bool>, ProtoError> {
    let n = r.u32()? as usize;
    if r.remaining() < n {
        return Err(ProtoError::Truncated);
    }
    let mut bits = Vec::with_capacity(n);
    for _ in 0..n {
        bits.push(r.bool()?);
    }
    Ok(bits)
}

fn put_solution(w: &mut ByteWriter, s: &DecodedSolution) {
    match s {
        DecodedSolution::Coloring(colors) => {
            w.u8(SOL_COLORING);
            w.u32(colors.len() as u32);
            for &c in colors {
                w.u16(c);
            }
        }
        DecodedSolution::CutSides(sides) => {
            w.u8(SOL_CUT_SIDES);
            put_bools(w, sides);
        }
        DecodedSolution::Subset(members) => {
            w.u8(SOL_SUBSET);
            w.u32(members.len() as u32);
            for &v in members {
                w.u32(v);
            }
        }
        DecodedSolution::Partition(sides) => {
            w.u8(SOL_PARTITION);
            put_bools(w, sides);
        }
        DecodedSolution::Assignment(values) => {
            w.u8(SOL_ASSIGNMENT);
            put_bools(w, values);
        }
        DecodedSolution::Spins(spins) => {
            w.u8(SOL_SPINS);
            put_bools(w, spins);
        }
    }
}

fn get_solution(r: &mut ByteReader) -> Result<DecodedSolution, ProtoError> {
    match r.u8()? {
        SOL_COLORING => {
            let n = r.u32()? as usize;
            if r.remaining() < n.saturating_mul(2) {
                return Err(ProtoError::Truncated);
            }
            let mut colors = Vec::with_capacity(n);
            for _ in 0..n {
                colors.push(r.u16()?);
            }
            Ok(DecodedSolution::Coloring(colors))
        }
        SOL_CUT_SIDES => Ok(DecodedSolution::CutSides(get_bools(r)?)),
        SOL_SUBSET => {
            let n = r.u32()? as usize;
            if r.remaining() < n.saturating_mul(4) {
                return Err(ProtoError::Truncated);
            }
            let mut members = Vec::with_capacity(n);
            for _ in 0..n {
                members.push(r.u32()?);
            }
            Ok(DecodedSolution::Subset(members))
        }
        SOL_PARTITION => Ok(DecodedSolution::Partition(get_bools(r)?)),
        SOL_ASSIGNMENT => Ok(DecodedSolution::Assignment(get_bools(r)?)),
        SOL_SPINS => Ok(DecodedSolution::Spins(get_bools(r)?)),
        _ => Err(ProtoError::BadValue("decoded solution tag")),
    }
}

fn put_state(w: &mut ByteWriter, s: JobState) {
    w.u8(s as u8);
}

fn get_state(r: &mut ByteReader) -> Result<JobState, ProtoError> {
    JobState::from_u8(r.u8()?).ok_or(ProtoError::BadValue("job state byte"))
}

// ---------------------------------------------------------------------
// Message codecs
// ---------------------------------------------------------------------

/// Encodes a request into one frame payload (type byte + body).
pub fn encode_request(req: &Request) -> Vec<u8> {
    match req {
        Request::Submit {
            tenant,
            graph,
            job,
            deadline_ms,
        } => {
            let mut w = ByteWriter::new(T_SUBMIT);
            w.str16(tenant);
            put_graph(&mut w, graph);
            put_config(&mut w, &job.config);
            w.u32(job.lanes.len() as u32);
            for lane in &job.lanes {
                put_lane(&mut w, lane);
            }
            w.u64(job.seed);
            w.u64(*deadline_ms);
            w.0
        }
        Request::SubmitProblem {
            tenant,
            spec,
            config,
            replicas,
            seed,
            deadline_ms,
        } => {
            let mut w = ByteWriter::new(T_SUBMIT_PROBLEM);
            w.str16(tenant);
            put_spec(&mut w, spec);
            put_config(&mut w, config);
            w.u32(*replicas);
            w.u64(*seed);
            w.u64(*deadline_ms);
            w.0
        }
        Request::Status { tenant, job_id } => {
            let mut w = ByteWriter::new(T_STATUS);
            w.str16(tenant);
            w.u64(*job_id);
            w.0
        }
        Request::Cancel { tenant, job_id } => {
            let mut w = ByteWriter::new(T_CANCEL);
            w.str16(tenant);
            w.u64(*job_id);
            w.0
        }
        Request::Stats => ByteWriter::new(T_STATS).0,
    }
}

fn get_tenant(r: &mut ByteReader) -> Result<String, ProtoError> {
    let tenant = r.str16()?;
    if tenant.is_empty() || tenant.len() > MAX_TENANT_LEN {
        return Err(ProtoError::BadValue("tenant id empty or too long"));
    }
    Ok(tenant)
}

/// Decodes one request payload. Never panics; see the module docs.
///
/// # Errors
///
/// Any [`ProtoError`] variant except `Io`/`Oversized` (those belong to
/// the framing layer).
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtoError> {
    let mut r = ByteReader::new(payload);
    let tag = r.u8()?;
    let req = match tag {
        T_SUBMIT => {
            let tenant = get_tenant(&mut r)?;
            let graph = get_graph(&mut r)?;
            let config = get_config(&mut r)?;
            let num_lanes = r.u32()? as usize;
            if num_lanes == 0 {
                return Err(ProtoError::BadValue("job with zero lanes"));
            }
            // Cap the count *before* reserving: a LaneConfig is ~72
            // in-memory bytes but can encode as a single flag byte, so
            // the remaining-bytes check alone would still let a hostile
            // count reserve gigabytes.
            if num_lanes > MAX_JOB_LANES {
                return Err(ProtoError::BadValue("job lane count over cap"));
            }
            if r.remaining() < num_lanes {
                return Err(ProtoError::Truncated);
            }
            let mut lanes = Vec::with_capacity(num_lanes);
            for _ in 0..num_lanes {
                lanes.push(get_lane(&mut r)?);
            }
            let seed = r.u64()?;
            let deadline_ms = r.u64()?;
            Request::Submit {
                tenant,
                graph,
                job: BatchJob {
                    config,
                    lanes,
                    seed,
                },
                deadline_ms,
            }
        }
        T_SUBMIT_PROBLEM => {
            let tenant = get_tenant(&mut r)?;
            let spec = get_spec(&mut r)?;
            let config = get_config(&mut r)?;
            let replicas = r.u32()?;
            if replicas == 0 {
                return Err(ProtoError::BadValue("problem with zero replicas"));
            }
            if replicas as usize > MAX_JOB_LANES {
                return Err(ProtoError::BadValue("problem replica count over cap"));
            }
            let seed = r.u64()?;
            let deadline_ms = r.u64()?;
            Request::SubmitProblem {
                tenant,
                spec,
                config,
                replicas,
                seed,
                deadline_ms,
            }
        }
        T_STATUS => Request::Status {
            tenant: get_tenant(&mut r)?,
            job_id: r.u64()?,
        },
        T_CANCEL => Request::Cancel {
            tenant: get_tenant(&mut r)?,
            job_id: r.u64()?,
        },
        T_STATS => Request::Stats,
        other => return Err(ProtoError::BadTag(other)),
    };
    r.finish()?;
    Ok(req)
}

/// Encodes a response into one frame payload (type byte + body).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    match resp {
        Response::Submitted { job_id } => {
            let mut w = ByteWriter::new(T_SUBMITTED);
            w.u64(*job_id);
            w.0
        }
        Response::StatusReply { job_id, state } => {
            let mut w = ByteWriter::new(T_STATUS_REPLY);
            w.u64(*job_id);
            put_state(&mut w, *state);
            w.0
        }
        Response::CancelReply { job_id, state } => {
            let mut w = ByteWriter::new(T_CANCEL_REPLY);
            w.u64(*job_id);
            put_state(&mut w, *state);
            w.0
        }
        Response::StatsReply(s) => {
            let mut w = ByteWriter::new(T_STATS_REPLY);
            w.u64(s.jobs_completed);
            w.u64(s.jobs_cancelled);
            w.u64(s.jobs_failed);
            w.u64(s.worker_restarts);
            w.u64(s.backlog);
            w.u64(s.cache_hits);
            w.u64(s.cache_misses);
            w.u64(s.connections);
            w.u64(s.jobs_sharded);
            w.u64(s.shard_width_max);
            w.u8(s.frontend as u8);
            w.0
        }
        Response::Report(rep) => {
            let mut w = ByteWriter::new(T_REPORT);
            w.u64(rep.job_id);
            w.u64(rep.graph_hash);
            w.u64(rep.seed);
            w.u64(rep.queued_us);
            w.u64(rep.service_us);
            w.u32(rep.ranked.len() as u32);
            for lane in &rep.ranked {
                w.u32(lane.lane);
                w.u64(lane.seed);
                w.u64(lane.conflicts);
                w.f64(lane.accuracy);
                w.u32(lane.coloring.len() as u32);
                for &c in &lane.coloring {
                    w.u16(c);
                }
            }
            w.0
        }
        Response::ProblemReport(rep) => {
            let mut w = ByteWriter::new(T_PROBLEM_REPORT);
            w.u64(rep.job_id);
            w.u64(rep.queued_us);
            w.u64(rep.service_us);
            w.u8(rep.report.class.tag());
            w.u64(rep.report.problem_fingerprint);
            w.u64(rep.report.graph_hash);
            w.u64(rep.report.seed);
            w.u32(rep.report.ranked.len() as u32);
            for lane in &rep.report.ranked {
                w.u32(lane.lane);
                w.u64(lane.seed);
                w.f64(lane.objective);
                w.bool(lane.feasible);
                put_solution(&mut w, &lane.solution);
            }
            w.0
        }
        Response::JobFailed {
            job_id,
            code,
            message,
        } => {
            let mut w = ByteWriter::new(T_JOB_ERROR);
            w.u64(*job_id);
            w.u16(*code as u16);
            w.str16(message);
            w.0
        }
        Response::Error { code, message } => {
            let mut w = ByteWriter::new(T_ERROR);
            w.u16(*code as u16);
            w.str16(message);
            w.0
        }
    }
}

/// Decodes one response payload. Never panics; see the module docs.
///
/// # Errors
///
/// Any [`ProtoError`] variant except `Io`/`Oversized` (those belong to
/// the framing layer).
pub fn decode_response(payload: &[u8]) -> Result<Response, ProtoError> {
    let mut r = ByteReader::new(payload);
    let tag = r.u8()?;
    let resp = match tag {
        T_SUBMITTED => Response::Submitted { job_id: r.u64()? },
        T_STATUS_REPLY => Response::StatusReply {
            job_id: r.u64()?,
            state: get_state(&mut r)?,
        },
        T_CANCEL_REPLY => Response::CancelReply {
            job_id: r.u64()?,
            state: get_state(&mut r)?,
        },
        T_STATS_REPLY => Response::StatsReply(WireStats {
            jobs_completed: r.u64()?,
            jobs_cancelled: r.u64()?,
            jobs_failed: r.u64()?,
            worker_restarts: r.u64()?,
            backlog: r.u64()?,
            cache_hits: r.u64()?,
            cache_misses: r.u64()?,
            connections: r.u64()?,
            jobs_sharded: r.u64()?,
            shard_width_max: r.u64()?,
            frontend: FrontendKind::from_u8(r.u8()?)
                .ok_or(ProtoError::BadValue("frontend kind byte"))?,
        }),
        T_REPORT => {
            let job_id = r.u64()?;
            let graph_hash = r.u64()?;
            let seed = r.u64()?;
            let queued_us = r.u64()?;
            let service_us = r.u64()?;
            let num_lanes = r.u32()? as usize;
            if num_lanes > MAX_JOB_LANES {
                return Err(ProtoError::BadValue("report lane count over cap"));
            }
            // Each lane is at least 32 bytes of fixed fields.
            if r.remaining() < num_lanes.saturating_mul(32) {
                return Err(ProtoError::Truncated);
            }
            let mut ranked = Vec::with_capacity(num_lanes);
            for _ in 0..num_lanes {
                let lane = r.u32()?;
                let lane_seed = r.u64()?;
                let conflicts = r.u64()?;
                let accuracy = r.f64()?;
                let n = r.u32()? as usize;
                if r.remaining() < n.saturating_mul(2) {
                    return Err(ProtoError::Truncated);
                }
                let mut coloring = Vec::with_capacity(n);
                for _ in 0..n {
                    coloring.push(r.u16()?);
                }
                ranked.push(WireLane {
                    lane,
                    seed: lane_seed,
                    conflicts,
                    accuracy,
                    coloring,
                });
            }
            Response::Report(WireReport {
                job_id,
                graph_hash,
                seed,
                queued_us,
                service_us,
                ranked,
            })
        }
        T_PROBLEM_REPORT => {
            let job_id = r.u64()?;
            let queued_us = r.u64()?;
            let service_us = r.u64()?;
            let class =
                ProblemClass::from_tag(r.u8()?).ok_or(ProtoError::BadValue("problem class tag"))?;
            let problem_fingerprint = r.u64()?;
            let graph_hash = r.u64()?;
            let seed = r.u64()?;
            let num_lanes = r.u32()? as usize;
            if num_lanes > MAX_JOB_LANES {
                return Err(ProtoError::BadValue("report lane count over cap"));
            }
            // Each decoded lane is at least 26 bytes of fixed fields.
            if r.remaining() < num_lanes.saturating_mul(26) {
                return Err(ProtoError::Truncated);
            }
            let mut ranked = Vec::with_capacity(num_lanes);
            for _ in 0..num_lanes {
                let lane = r.u32()?;
                let lane_seed = r.u64()?;
                let objective = r.f64()?;
                let feasible = r.bool()?;
                let solution = get_solution(&mut r)?;
                ranked.push(DecodedLane {
                    lane,
                    seed: lane_seed,
                    objective,
                    feasible,
                    solution,
                });
            }
            Response::ProblemReport(WireProblemReport {
                job_id,
                queued_us,
                service_us,
                report: ProblemReport {
                    class,
                    problem_fingerprint,
                    graph_hash,
                    seed,
                    ranked,
                },
            })
        }
        T_JOB_ERROR => {
            let job_id = r.u64()?;
            let code = ErrorCode::from_u16(r.u16()?).ok_or(ProtoError::BadValue("error code"))?;
            let message = r.str16()?;
            Response::JobFailed {
                job_id,
                code,
                message,
            }
        }
        T_ERROR => {
            let code = ErrorCode::from_u16(r.u16()?).ok_or(ProtoError::BadValue("error code"))?;
            let message = r.str16()?;
            Response::Error { code, message }
        }
        other => return Err(ProtoError::BadTag(other)),
    };
    r.finish()?;
    Ok(resp)
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Writes one frame (length prefix + payload). Does **not** flush.
///
/// # Errors
///
/// Propagates transport errors; rejects payloads over [`MAX_FRAME_LEN`].
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), ProtoError> {
    if payload.len() > MAX_FRAME_LEN as usize {
        return Err(ProtoError::Oversized(payload.len() as u32));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Reads one frame's payload.
///
/// # Errors
///
/// [`ProtoError::Io`] on transport failure (including EOF — map
/// `ErrorKind::UnexpectedEof` at offset 0 to a clean close if needed),
/// [`ProtoError::Oversized`] when the header announces more than
/// [`MAX_FRAME_LEN`] bytes (the stream is desynced; drop it).
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, ProtoError> {
    let mut header = [0u8; 4];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header);
    if len > MAX_FRAME_LEN {
        return Err(ProtoError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Incremental frame decoder for nonblocking transports.
///
/// Where [`read_frame`] owns a blocking `Read` stream, a `Decoder` is
/// *fed*: the reactor pushes whatever bytes `read(2)` returned — a
/// partial header, half a payload, three frames back to back — and
/// pulls zero or more complete frame payloads out. Byte boundaries are
/// invisible: a frame delivered one byte at a time and a batch of
/// frames arriving in one read both decode to the same payload
/// sequence (property-tested below).
///
/// The decoder enforces the same [`MAX_FRAME_LEN`] cap as the blocking
/// reader; an oversized header poisons the stream (the connection is
/// desynced and must be dropped) and every later
/// [`Decoder::next_frame`] repeats the error.
#[derive(Debug, Default)]
pub struct Decoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by returned frames (compacted
    /// lazily so tiny reads never trigger per-byte memmoves).
    pos: usize,
    poisoned: Option<u32>,
}

impl Decoder {
    /// A fresh decoder with no buffered bytes.
    pub fn new() -> Decoder {
        Decoder::default()
    }

    /// Appends raw transport bytes (any split — header fragments,
    /// partial payloads, several frames at once).
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact before growing: once the consumed prefix dominates,
        // shift the live tail down instead of reallocating past it.
        if self.pos > 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered and not yet returned as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Extracts the next complete frame payload, `Ok(None)` when more
    /// bytes are needed.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Oversized`] when a header announces more than
    /// [`MAX_FRAME_LEN`] bytes; the stream is desynced and the error is
    /// sticky.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, ProtoError> {
        if let Some(len) = self.poisoned {
            return Err(ProtoError::Oversized(len));
        }
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().expect("4 bytes"));
        if len > MAX_FRAME_LEN {
            self.poisoned = Some(len);
            return Err(ProtoError::Oversized(len));
        }
        let total = 4 + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let payload = avail[4..total].to_vec();
        self.pos += total;
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        }
        Ok(Some(payload))
    }
}

/// `true` when a [`read_frame`] error is a clean peer close (EOF on the
/// frame boundary or a reset/unblocked read), as opposed to a protocol
/// violation.
pub fn is_clean_close(err: &ProtoError) -> bool {
    matches!(
        err,
        ProtoError::Io(e) if matches!(
            e.kind(),
            io::ErrorKind::UnexpectedEof
                | io::ErrorKind::ConnectionReset
                | io::ErrorKind::ConnectionAborted
                | io::ErrorKind::BrokenPipe
        )
    )
}

/// `true` when an encoded response payload is a report frame (as
/// opposed to a [`Response::JobFailed`] or verb reply) — the front
/// ends use this to keep the reports-streamed counter honest now that
/// failed jobs also stream a terminal frame.
pub fn is_report_frame(payload: &[u8]) -> bool {
    matches!(payload.first(), Some(&T_REPORT | &T_PROBLEM_REPORT))
}

/// Rebuilds a [`msropm_graph::Coloring`] from a wire lane (for clients
/// that want to re-verify conflicts locally).
pub fn lane_coloring(lane: &WireLane) -> msropm_graph::Coloring {
    lane.coloring
        .iter()
        .map(|&c| msropm_graph::Color(c))
        .collect()
}

/// Convenience: number of conflicting edges of a wire lane's coloring
/// on `g`, for client-side integrity checks. Returns `None` when the
/// coloring does not cover `g`.
pub fn verify_lane(g: &Graph, lane: &WireLane) -> Option<u64> {
    if lane.coloring.len() != g.num_nodes() {
        return None;
    }
    let conflicts = g
        .edges()
        .filter(|&(_, u, v)| lane.coloring[u.index()] == lane.coloring[v.index()])
        .count() as u64;
    Some(conflicts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msropm_core::{SweepParam, SweepSpec};
    use msropm_graph::generators;
    use proptest::prelude::*;

    fn sample_job() -> BatchJob {
        let sweep = SweepSpec::new()
            .grid(SweepParam::CouplingStrength, vec![0.8, 1.2])
            .grid(SweepParam::Noise, vec![0.1, 0.25]);
        let mut job = BatchJob::from_sweep(MsropmConfig::paper_default(), &sweep, 42);
        job.lanes[1] = job.lanes[1]
            .with_shil_ramp(true)
            .with_reinit(ReinitMode::UniformRandom);
        job
    }

    fn assert_graph_eq(a: &Graph, b: &Graph) {
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_edges(), b.num_edges());
        for (_, u, v) in a.edges() {
            assert!(b.contains_edge(u, v));
        }
    }

    #[test]
    fn submit_roundtrip_preserves_every_field() {
        let graph = generators::kings_graph(4, 4);
        let job = sample_job();
        let payload = encode_request(&Request::Submit {
            tenant: "acme".into(),
            graph: graph.clone(),
            job: job.clone(),
            deadline_ms: 2_500,
        });
        match decode_request(&payload).unwrap() {
            Request::Submit {
                tenant,
                graph: g2,
                job: j2,
                deadline_ms,
            } => {
                assert_eq!(tenant, "acme");
                assert_graph_eq(&graph, &g2);
                assert_eq!(j2.config, job.config);
                assert_eq!(j2.lanes, job.lanes);
                assert_eq!(j2.seed, job.seed);
                assert_eq!(deadline_ms, 2_500);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn control_verbs_roundtrip() {
        for req in [
            Request::Status {
                tenant: "t".into(),
                job_id: 7,
            },
            Request::Cancel {
                tenant: "t".into(),
                job_id: u64::MAX,
            },
            Request::Stats,
        ] {
            let payload = encode_request(&req);
            let back = decode_request(&payload).unwrap();
            match (&req, &back) {
                (Request::Status { job_id: a, .. }, Request::Status { job_id: b, .. }) => {
                    assert_eq!(a, b)
                }
                (Request::Cancel { job_id: a, .. }, Request::Cancel { job_id: b, .. }) => {
                    assert_eq!(a, b)
                }
                (Request::Stats, Request::Stats) => {}
                other => panic!("variant mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn responses_roundtrip() {
        let report = WireReport {
            job_id: 3,
            graph_hash: 0xdead_beef,
            seed: 9,
            queued_us: 120,
            service_us: 4096,
            ranked: vec![
                WireLane {
                    lane: 1,
                    seed: 77,
                    conflicts: 0,
                    accuracy: 1.0,
                    coloring: vec![0, 1, 2, 3],
                },
                WireLane {
                    lane: 0,
                    seed: 76,
                    conflicts: 2,
                    accuracy: 0.75,
                    coloring: vec![3, 2, 1, 0],
                },
            ],
        };
        let cases = [
            Response::Submitted { job_id: 1 },
            Response::StatusReply {
                job_id: 2,
                state: JobState::Running,
            },
            Response::CancelReply {
                job_id: 2,
                state: JobState::Cancelled,
            },
            Response::StatsReply(WireStats {
                jobs_completed: 10,
                jobs_cancelled: 2,
                jobs_failed: 4,
                worker_restarts: 1,
                backlog: 1,
                cache_hits: 20,
                cache_misses: 5,
                connections: 3,
                jobs_sharded: 6,
                shard_width_max: 4,
                frontend: FrontendKind::Reactor,
            }),
            Response::Report(report.clone()),
            Response::Error {
                code: ErrorCode::QuotaInFlight,
                message: "over".into(),
            },
            Response::JobFailed {
                job_id: 41,
                code: ErrorCode::DeadlineExceeded,
                message: "job deadline exceeded".into(),
            },
            Response::JobFailed {
                job_id: 42,
                code: ErrorCode::Internal,
                message: "worker died".into(),
            },
        ];
        for resp in cases {
            let payload = encode_response(&resp);
            let back = decode_response(&payload).unwrap();
            match (&resp, &back) {
                (Response::Submitted { job_id: a }, Response::Submitted { job_id: b }) => {
                    assert_eq!(a, b)
                }
                (
                    Response::StatusReply {
                        job_id: a,
                        state: sa,
                    },
                    Response::StatusReply {
                        job_id: b,
                        state: sb,
                    },
                ) => {
                    assert_eq!(a, b);
                    assert_eq!(sa, sb);
                }
                (
                    Response::CancelReply {
                        job_id: a,
                        state: sa,
                    },
                    Response::CancelReply {
                        job_id: b,
                        state: sb,
                    },
                ) => {
                    assert_eq!(a, b);
                    assert_eq!(sa, sb);
                }
                (Response::StatsReply(a), Response::StatsReply(b)) => assert_eq!(a, b),
                (Response::Report(a), Response::Report(b)) => assert_eq!(a, b),
                (
                    Response::Error {
                        code: ca,
                        message: ma,
                    },
                    Response::Error {
                        code: cb,
                        message: mb,
                    },
                ) => {
                    assert_eq!(ca, cb);
                    assert_eq!(ma, mb);
                }
                (
                    Response::JobFailed {
                        job_id: ja,
                        code: ca,
                        message: ma,
                    },
                    Response::JobFailed {
                        job_id: jb,
                        code: cb,
                        message: mb,
                    },
                ) => {
                    assert_eq!(ja, jb);
                    assert_eq!(ca, cb);
                    assert_eq!(ma, mb);
                }
                other => panic!("variant mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn framing_roundtrip_and_oversize_rejection() {
        let payload = encode_request(&Request::Stats);
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        assert_eq!(read_frame(&mut buf.as_slice()).unwrap(), payload);

        // A header announcing more than the cap is rejected before any
        // allocation.
        let huge = (MAX_FRAME_LEN + 1).to_le_bytes();
        assert!(matches!(
            read_frame(&mut huge.as_slice()),
            Err(ProtoError::Oversized(_))
        ));

        // EOF mid-frame is an Io error the caller can classify.
        let mut truncated = Vec::new();
        write_frame(&mut truncated, &payload).unwrap();
        truncated.pop();
        let err = read_frame(&mut truncated.as_slice()).unwrap_err();
        assert!(is_clean_close(&err));
    }

    #[test]
    fn every_strict_prefix_of_a_valid_payload_is_a_typed_error() {
        let graph = generators::kings_graph(3, 3);
        let payloads = [
            encode_request(&Request::Submit {
                tenant: "acme".into(),
                graph,
                job: sample_job(),
                deadline_ms: 0,
            }),
            encode_response(&Response::Report(WireReport {
                job_id: 1,
                graph_hash: 2,
                seed: 3,
                queued_us: 4,
                service_us: 5,
                ranked: vec![WireLane {
                    lane: 0,
                    seed: 1,
                    conflicts: 0,
                    accuracy: 1.0,
                    coloring: vec![0, 1],
                }],
            })),
        ];
        for payload in &payloads {
            for cut in 0..payload.len() {
                // Both decoders must fail gracefully (typed error, no
                // panic) on every strict prefix.
                assert!(decode_request(&payload[..cut]).is_err());
                assert!(decode_response(&payload[..cut]).is_err());
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut payload = encode_request(&Request::Stats);
        payload.push(0);
        assert!(matches!(
            decode_request(&payload),
            Err(ProtoError::Trailing(1))
        ));
    }

    #[test]
    fn unknown_tags_and_bad_values_are_typed() {
        assert!(matches!(
            decode_request(&[0x7F]),
            Err(ProtoError::BadTag(0x7F))
        ));
        assert!(matches!(
            decode_response(&[0x00]),
            Err(ProtoError::BadTag(0x00))
        ));
        // num_colors = 3 violates the power-of-two invariant: must come
        // back as BadValue, not a panic from MsropmConfig::validate.
        let graph = generators::path_graph(2);
        let mut job = BatchJob::uniform(MsropmConfig::paper_default(), 1, 1);
        job.config.num_colors = 3;
        let payload = encode_request(&Request::Submit {
            tenant: "t".into(),
            graph,
            job,
            deadline_ms: 0,
        });
        assert!(matches!(
            decode_request(&payload),
            Err(ProtoError::BadValue(_))
        ));
    }

    #[test]
    fn hostile_lane_counts_are_rejected_before_allocating() {
        // A hand-built submit payload claiming ~16M lanes backed by one
        // byte each: must be rejected by the cap, not by an OOM abort
        // inside Vec::with_capacity.
        let graph = generators::path_graph(2);
        let job = BatchJob::uniform(MsropmConfig::paper_default(), 1, 1);
        let valid = encode_request(&Request::Submit {
            tenant: "t".into(),
            graph,
            job,
            deadline_ms: 0,
        });
        // The lane count field sits 21 bytes from the end of a 1-lane
        // payload (u32 count + 1 flag byte + u64 seed + u64 deadline).
        let count_at = valid.len() - 21;
        assert_eq!(
            u32::from_le_bytes(valid[count_at..count_at + 4].try_into().unwrap()),
            1,
            "lane-count offset moved; update this test"
        );
        let mut hostile = valid.clone();
        hostile[count_at..count_at + 4].copy_from_slice(&(16_000_000u32).to_le_bytes());
        hostile.extend(std::iter::repeat_n(0u8, 64)); // a few fake flag bytes
        match decode_request(&hostile) {
            Err(ProtoError::BadValue(what)) => assert!(what.contains("lane count")),
            // Counts small enough to pass the cap still hit Truncated.
            other => panic!("expected lane-cap rejection, got {other:?}"),
        }
    }

    #[test]
    fn zero_lane_jobs_are_rejected() {
        let graph = generators::path_graph(2);
        let mut job = BatchJob::uniform(MsropmConfig::paper_default(), 1, 1);
        job.lanes.clear();
        let payload = encode_request(&Request::Submit {
            tenant: "t".into(),
            graph,
            job,
            deadline_ms: 0,
        });
        assert!(decode_request(&payload).is_err());
    }

    #[test]
    fn lane_coloring_verification_helpers() {
        let g = generators::path_graph(3);
        let good = WireLane {
            lane: 0,
            seed: 0,
            conflicts: 0,
            accuracy: 1.0,
            coloring: vec![0, 1, 0],
        };
        assert_eq!(verify_lane(&g, &good), Some(0));
        let bad = WireLane {
            coloring: vec![1, 1, 1],
            ..good.clone()
        };
        assert_eq!(verify_lane(&g, &bad), Some(2));
        let short = WireLane {
            coloring: vec![1],
            ..good
        };
        assert_eq!(verify_lane(&g, &short), None);
        assert_eq!(lane_coloring(&bad).len(), 3);
    }

    /// The frame payloads a decoder feed must reproduce, byte for byte:
    /// a submit, a stats request, and a report — small and large,
    /// request and response directions mixed.
    fn decoder_sample_payloads() -> Vec<Vec<u8>> {
        let graph = generators::kings_graph(3, 3);
        vec![
            encode_request(&Request::Submit {
                tenant: "acme".into(),
                graph,
                job: sample_job(),
                deadline_ms: 30_000,
            }),
            encode_request(&Request::Stats),
            encode_response(&Response::Report(WireReport {
                job_id: 9,
                graph_hash: 0xabcd,
                seed: 3,
                queued_us: 1,
                service_us: 2,
                ranked: vec![WireLane {
                    lane: 0,
                    seed: 4,
                    conflicts: 1,
                    accuracy: 0.5,
                    coloring: vec![0, 1, 2, 3],
                }],
            })),
        ]
    }

    fn frame_stream(payloads: &[Vec<u8>]) -> Vec<u8> {
        let mut stream = Vec::new();
        for p in payloads {
            write_frame(&mut stream, p).unwrap();
        }
        stream
    }

    fn drain_decoder(d: &mut Decoder) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        while let Some(p) = d.next_frame().expect("valid stream") {
            out.push(p);
        }
        out
    }

    #[test]
    fn decoder_reassembles_frames_fed_one_byte_at_a_time() {
        let payloads = decoder_sample_payloads();
        let stream = frame_stream(&payloads);
        let mut decoder = Decoder::new();
        let mut got = Vec::new();
        for &byte in &stream {
            decoder.push(&[byte]);
            got.extend(drain_decoder(&mut decoder));
        }
        assert_eq!(
            got, payloads,
            "1-byte feed must round-trip byte-identically"
        );
        assert_eq!(decoder.buffered(), 0);
    }

    #[test]
    fn decoder_splits_multiple_frames_from_one_read() {
        let payloads = decoder_sample_payloads();
        let stream = frame_stream(&payloads);
        let mut decoder = Decoder::new();
        decoder.push(&stream);
        assert_eq!(
            drain_decoder(&mut decoder),
            payloads,
            "one batched read must yield every frame byte-identically"
        );
        assert_eq!(decoder.buffered(), 0);
        assert!(decoder.next_frame().unwrap().is_none());
    }

    #[test]
    fn decoder_handles_a_partial_trailing_frame() {
        let payloads = decoder_sample_payloads();
        let stream = frame_stream(&payloads);
        let mut decoder = Decoder::new();
        // Everything except the final byte: the last frame stays pending.
        decoder.push(&stream[..stream.len() - 1]);
        let mut got = drain_decoder(&mut decoder);
        assert_eq!(got.len(), payloads.len() - 1);
        assert!(decoder.buffered() > 0);
        decoder.push(&stream[stream.len() - 1..]);
        got.extend(drain_decoder(&mut decoder));
        assert_eq!(got, payloads);
    }

    #[test]
    fn decoder_oversized_header_is_a_sticky_error() {
        let mut decoder = Decoder::new();
        decoder.push(&(MAX_FRAME_LEN + 1).to_le_bytes());
        assert!(matches!(
            decoder.next_frame(),
            Err(ProtoError::Oversized(_))
        ));
        // The stream is desynced: feeding valid frames afterwards must
        // not resurrect it.
        decoder.push(&frame_stream(&[encode_request(&Request::Stats)]));
        assert!(matches!(
            decoder.next_frame(),
            Err(ProtoError::Oversized(_))
        ));
    }

    #[test]
    fn decoder_compacts_consumed_bytes() {
        // Many frames through one decoder: the internal buffer must not
        // grow with the total bytes ever fed.
        let payload = encode_request(&Request::Stats);
        let mut framed = Vec::new();
        write_frame(&mut framed, &payload).unwrap();
        let mut decoder = Decoder::new();
        for _ in 0..10_000 {
            decoder.push(&framed);
            assert_eq!(decoder.next_frame().unwrap().unwrap(), payload);
        }
        assert_eq!(decoder.buffered(), 0);
    }

    proptest! {
        /// Any segmentation of a valid frame stream decodes to the same
        /// payload sequence, byte for byte.
        #[test]
        fn decoder_is_segmentation_invariant(
            cuts in proptest::collection::vec(1usize..64, 0..48),
        ) {
            let payloads = decoder_sample_payloads();
            let stream = frame_stream(&payloads);
            let mut decoder = Decoder::new();
            let mut got = Vec::new();
            let mut at = 0usize;
            for cut in cuts {
                if at >= stream.len() {
                    break;
                }
                let end = (at + cut).min(stream.len());
                decoder.push(&stream[at..end]);
                at = end;
                while let Some(p) = decoder.next_frame().expect("valid stream") {
                    got.push(p);
                }
            }
            decoder.push(&stream[at..]);
            while let Some(p) = decoder.next_frame().expect("valid stream") {
                got.push(p);
            }
            prop_assert_eq!(got, payloads);
        }

        /// Arbitrary bytes never panic either decoder — they produce a
        /// typed error (or, rarely, parse as a valid tiny message).
        #[test]
        fn arbitrary_bytes_never_panic_decoders(
            bytes in proptest::collection::vec(any::<u8>(), 0..512)
        ) {
            let _ = decode_request(&bytes);
            let _ = decode_response(&bytes);
        }

        /// Frames re-read from a byte stream survive arbitrary
        /// truncation without panicking: either a clean payload or an
        /// error, never a crash or an over-read.
        #[test]
        fn truncated_streams_never_panic_read_frame(
            payload in proptest::collection::vec(any::<u8>(), 0..128),
            cut in 0usize..132,
        ) {
            let mut framed = Vec::new();
            write_frame(&mut framed, &payload).unwrap();
            let cut = cut.min(framed.len());
            match read_frame(&mut framed[..cut].as_ref()) {
                Ok(p) => prop_assert_eq!(p, payload),
                Err(e) => prop_assert!(is_clean_close(&e) || matches!(e, ProtoError::Oversized(_))),
            }
        }

        /// Request roundtrip with arbitrary numeric content in the
        /// control verbs.
        #[test]
        fn control_verb_roundtrip_prop(job_id in any::<u64>()) {
            let payload = encode_request(&Request::Cancel { tenant: "x".into(), job_id });
            match decode_request(&payload).unwrap() {
                Request::Cancel { job_id: back, .. } => prop_assert_eq!(back, job_id),
                other => prop_assert!(false, "wrong variant: {:?}", other),
            }
        }

        /// Submit deadlines survive the wire for any u64 (0 = none).
        #[test]
        fn submit_deadline_roundtrip_prop(deadline_ms in any::<u64>()) {
            let payload = encode_request(&Request::Submit {
                tenant: "t".into(),
                graph: generators::path_graph(2),
                job: BatchJob::uniform(MsropmConfig::paper_default(), 1, 1),
                deadline_ms,
            });
            match decode_request(&payload).unwrap() {
                Request::Submit { deadline_ms: back, .. } => prop_assert_eq!(back, deadline_ms),
                other => prop_assert!(false, "wrong variant: {:?}", other),
            }
        }

        /// Per-job failure frames roundtrip for every defined error
        /// code (including the new `DeadlineExceeded` and `Internal`)
        /// and arbitrary message content.
        #[test]
        fn job_failed_roundtrip_prop(
            job_id in any::<u64>(),
            raw_code in 1u16..12,
            msg_bytes in proptest::collection::vec(32u8..127, 0..64),
        ) {
            let message = String::from_utf8(msg_bytes).expect("printable ascii");
            let code = ErrorCode::from_u16(raw_code).expect("1..=11 are all defined");
            prop_assert_eq!(code as u16, raw_code);
            let payload = encode_response(&Response::JobFailed {
                job_id,
                code,
                message: message.clone(),
            });
            match decode_response(&payload).unwrap() {
                Response::JobFailed { job_id: j, code: c, message: m } => {
                    prop_assert_eq!(j, job_id);
                    prop_assert_eq!(c, code);
                    prop_assert_eq!(m, message);
                }
                other => prop_assert!(false, "wrong variant: {:?}", other),
            }
        }

        /// Undefined error codes are a typed decode error, not a panic
        /// or a silent mis-map.
        #[test]
        fn unknown_error_codes_are_rejected(raw_code in 12u16..u16::MAX) {
            prop_assert!(ErrorCode::from_u16(raw_code).is_none());
            let mut payload = encode_response(&Response::JobFailed {
                job_id: 1,
                code: ErrorCode::Internal,
                message: String::new(),
            });
            // The code sits right after the tag byte and u64 job id.
            payload[9..11].copy_from_slice(&raw_code.to_le_bytes());
            prop_assert!(matches!(
                decode_response(&payload),
                Err(ProtoError::BadValue(_))
            ));
        }
    }
}
