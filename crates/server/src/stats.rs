//! Unified stats registry: one named-counter schema behind every stats
//! surface.
//!
//! [`crate::proto::WireStats`] grew a field at a time — every new
//! counter meant touching the struct, the binary codec, the
//! `solve_remote stats` printer, and now the HTTP gateway's `/v1/stats`
//! and `/metrics` renderings. This module inverts that: [`SCHEMA`] is
//! the single ordered list of `(name, help, kind)` counter definitions,
//! and a [`Registry`] is one snapshot of their values. Every consumer
//! renders *from the registry*:
//!
//! - the binary `stats reply` frame encodes the registry's values in
//!   [`SCHEMA`] order (bit-compatible with the pre-registry wire
//!   format — the field order **is** the schema order);
//! - `solve_remote stats` prints `name: value` lines off
//!   [`Registry::from_wire`];
//! - the HTTP gateway renders `/v1/stats` (JSON) and `/metrics`
//!   (Prometheus text) off [`Registry::iter`].
//!
//! Adding a counter is now one [`SCHEMA`] row plus one value in
//! [`crate::session::SessionCore`]'s snapshot — the renderers pick it
//! up for free. (The binary frame still needs its codec line, which the
//! `schema_matches_wire_frame` test pins against the schema.)

use crate::proto::{FrontendKind, WireStats};

/// Whether a counter only grows (Prometheus `counter`) or can move both
/// ways (`gauge`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterKind {
    /// Monotone since boot.
    Counter,
    /// Instantaneous level (backlog, connections) or high-water mark.
    Gauge,
}

/// One named counter's static definition.
#[derive(Debug, Clone, Copy)]
pub struct CounterDef {
    /// Stable snake_case name (doubles as the Prometheus metric name
    /// under the `msropm_` prefix and the JSON stats key).
    pub name: &'static str,
    /// One-line human description (the Prometheus `# HELP` text).
    pub help: &'static str,
    /// Counter vs gauge semantics.
    pub kind: CounterKind,
}

/// The ordered counter schema. **Order is the binary wire format**: the
/// `stats reply` frame encodes exactly these values in exactly this
/// order, so reordering or inserting mid-list is a wire break — append
/// only.
pub const SCHEMA: [CounterDef; 10] = [
    CounterDef {
        name: "jobs_completed",
        help: "Jobs that completed with a report, since boot.",
        kind: CounterKind::Counter,
    },
    CounterDef {
        name: "jobs_cancelled",
        help: "Jobs observed as cancelled (no report), since boot.",
        kind: CounterKind::Counter,
    },
    CounterDef {
        name: "jobs_failed",
        help: "Jobs that died without a report, since boot.",
        kind: CounterKind::Counter,
    },
    CounterDef {
        name: "worker_restarts",
        help: "Dead workers the supervisor has respawned, since boot.",
        kind: CounterKind::Counter,
    },
    CounterDef {
        name: "backlog",
        help: "Jobs waiting in the queue right now.",
        kind: CounterKind::Gauge,
    },
    CounterDef {
        name: "cache_hits",
        help: "Problem-cache hits since boot.",
        kind: CounterKind::Counter,
    },
    CounterDef {
        name: "cache_misses",
        help: "Problem-cache misses since boot.",
        kind: CounterKind::Counter,
    },
    CounterDef {
        name: "connections",
        help: "Connections currently served.",
        kind: CounterKind::Gauge,
    },
    CounterDef {
        name: "jobs_sharded",
        help: "Jobs that ran with more than one shard, since boot.",
        kind: CounterKind::Counter,
    },
    CounterDef {
        name: "shard_width_max",
        help: "Widest shard count any job has run with, since boot.",
        kind: CounterKind::Gauge,
    },
];

/// One snapshot of every [`SCHEMA`] counter plus the serving front end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Registry {
    values: [u64; SCHEMA.len()],
    frontend: FrontendKind,
}

impl Registry {
    /// Wraps a snapshot taken in [`SCHEMA`] order.
    pub fn new(values: [u64; SCHEMA.len()], frontend: FrontendKind) -> Registry {
        Registry { values, frontend }
    }

    /// Rebinds a decoded binary stats frame to the schema's names (the
    /// client-side entry point: `solve_remote stats` prints from this).
    pub fn from_wire(stats: &WireStats) -> Registry {
        Registry {
            values: [
                stats.jobs_completed,
                stats.jobs_cancelled,
                stats.jobs_failed,
                stats.worker_restarts,
                stats.backlog,
                stats.cache_hits,
                stats.cache_misses,
                stats.connections,
                stats.jobs_sharded,
                stats.shard_width_max,
            ],
            frontend: stats.frontend,
        }
    }

    /// Projects the registry onto the legacy struct the binary codec
    /// encodes — the schema order and the field order are the same
    /// frame, so this is the bit-compatibility seam.
    pub fn to_wire(&self) -> WireStats {
        WireStats {
            jobs_completed: self.values[0],
            jobs_cancelled: self.values[1],
            jobs_failed: self.values[2],
            worker_restarts: self.values[3],
            backlog: self.values[4],
            cache_hits: self.values[5],
            cache_misses: self.values[6],
            connections: self.values[7],
            jobs_sharded: self.values[8],
            shard_width_max: self.values[9],
            frontend: self.frontend,
        }
    }

    /// Which front end produced the snapshot.
    pub fn frontend(&self) -> FrontendKind {
        self.frontend
    }

    /// Looks up one counter by schema name.
    pub fn get(&self, name: &str) -> Option<u64> {
        SCHEMA
            .iter()
            .position(|def| def.name == name)
            .map(|i| self.values[i])
    }

    /// Every counter with its definition, in schema (= wire) order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static CounterDef, u64)> + '_ {
        SCHEMA.iter().zip(self.values.iter().copied())
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (the HTTP gateway's `/metrics` body): per counter a `# HELP`
    /// line, a `# TYPE` line, and `msropm_<name> <value>`; the serving
    /// front end travels as a labelled info-style gauge.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (def, value) in self.iter() {
            let kind = match def.kind {
                CounterKind::Counter => "counter",
                CounterKind::Gauge => "gauge",
            };
            out.push_str(&format!(
                "# HELP msropm_{name} {help}\n# TYPE msropm_{name} {kind}\nmsropm_{name} {value}\n",
                name = def.name,
                help = def.help,
            ));
        }
        out.push_str(&format!(
            "# HELP msropm_frontend Which serving front end answered (1 = active).\n\
             # TYPE msropm_frontend gauge\n\
             msropm_frontend{{kind=\"{}\"}} 1\n",
            self.frontend
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{decode_response, encode_response, Response};

    fn sample() -> Registry {
        Registry::new([9, 8, 7, 6, 5, 4, 3, 2, 1, 11], FrontendKind::Http)
    }

    /// The registry round-trips through the binary stats frame without
    /// loss — the schema order *is* the wire field order.
    #[test]
    fn schema_matches_wire_frame() {
        let reg = sample();
        let frame = encode_response(&Response::StatsReply(reg.to_wire()));
        let Response::StatsReply(back) = decode_response(&frame).unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!(Registry::from_wire(&back), reg);
    }

    #[test]
    fn named_lookup_and_order() {
        let reg = sample();
        assert_eq!(reg.get("jobs_completed"), Some(9));
        assert_eq!(reg.get("shard_width_max"), Some(11));
        assert_eq!(reg.get("no_such_counter"), None);
        let names: Vec<&str> = reg.iter().map(|(def, _)| def.name).collect();
        assert_eq!(names[0], "jobs_completed");
        assert_eq!(names[9], "shard_width_max");
    }

    #[test]
    fn prometheus_rendering_covers_every_counter() {
        let text = sample().render_prometheus();
        for def in SCHEMA {
            assert!(text.contains(&format!("msropm_{} ", def.name)), "{text}");
            assert!(text.contains(&format!("# TYPE msropm_{}", def.name)));
        }
        assert!(text.contains("msropm_frontend{kind=\"http\"} 1"));
    }
}
