//! Transport-agnostic session logic shared by both serving front ends.
//!
//! PR 4's `server::wire` mixed two concerns: the TCP mechanics of a
//! thread-per-connection server, and the *session* semantics of the job
//! protocol — per-tenant quota accounting, the job registry
//! (id → status cell + cancel token), admission, terminal-state
//! bookkeeping, and graceful drain. This module owns the second half,
//! so [`crate::wire::WireServer`] (threads) and
//! [`crate::reactor::ReactorServer`] (epoll event loop) are thin
//! transports over one [`SessionCore`] and **cannot** drift apart on
//! quota or lifecycle behaviour: the byte-identical-reports property
//! test across front ends leans on this sharing.
//!
//! # Completion flow
//!
//! Submission is hook-based ([`crate::CompletionHook`]): the worker
//! thread that finishes a job runs the session's completion hook, which
//! **first** releases the tenant's quota slot (so a client resubmitting
//! the instant its report arrives always fits), then encodes the report
//! frame once, and hands it to the front-end-specific `deliver`
//! callback — a writer-channel send for the threaded front end, an
//! inbox push + [`polling::Poller::notify`] for the reactor. No per-job
//! waiter thread exists anywhere anymore.
//!
//! # Drain
//!
//! [`SessionCore::begin_drain`] flips the draining flag: new submits
//! are rejected with the typed [`ErrorCode::Draining`] **before**
//! admission, on whatever connections are still attached (this closes
//! the PR 4 race where late submits on live connections could still be
//! admitted after the acceptor stopped). [`SessionCore::await_drained`]
//! then blocks until every admitted job has reached a terminal state —
//! at which point every completion hook has run and every report frame
//! has been handed to its transport.

use crate::proto::{
    self, ErrorCode, FrontendKind, Request, Response, WireProblemReport, WireReport, WireStats,
};
use crate::stats::Registry as StatsRegistry;
use crate::{
    lock_unpoisoned, CompletionHook, JobCompletion, JobServer, JobState, JobStatusCell, PendingJob,
    ServerConfig, TrySubmitError,
};
use msropm_core::{BatchJob, CancelToken, MsropmConfig};
use msropm_graph::Graph;
use msropm_problems::{Decoder, ProblemSpec};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError, Weak};
use std::time::{Duration, Instant};

/// Sizing and policy knobs shared by both front ends.
#[derive(Debug, Clone, Copy)]
pub struct WireConfig {
    /// The backing job-server pool (workers, queue, cache).
    pub server: ServerConfig,
    /// Per-tenant cap on jobs submitted and not yet terminal.
    pub max_inflight_jobs: usize,
    /// Per-tenant cap on the summed lane count of non-terminal jobs.
    pub max_queued_lanes: usize,
    /// Cap on concurrently served connections; excess connects receive
    /// a `busy` error frame and are closed.
    pub max_connections: usize,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig {
            server: ServerConfig::default(),
            max_inflight_jobs: 16,
            max_queued_lanes: 1024,
            max_connections: 64,
        }
    }
}

/// Per-tenant admission counters (covering non-terminal jobs only).
#[derive(Debug, Default, Clone, Copy)]
struct TenantUsage {
    inflight: usize,
    queued_lanes: usize,
}

/// Registry entry for one submitted job; lives past the terminal state
/// so late `status` queries still resolve.
struct JobEntry {
    tenant: String,
    lanes: usize,
    status: Arc<JobStatusCell>,
    cancel: CancelToken,
}

/// Terminal jobs retained for late `status` queries before the oldest
/// are evicted (a bounded memory footprint for a long-lived daemon; an
/// evicted id answers `UnknownJob`).
const TERMINAL_JOBS_RETAINED: usize = 4096;

#[derive(Default)]
struct Registry {
    next_job_id: u64,
    jobs: HashMap<u64, JobEntry>,
    tenants: HashMap<String, TenantUsage>,
    /// Terminal job ids in completion order, oldest first (the eviction
    /// queue bounding `jobs`).
    terminal_order: std::collections::VecDeque<u64>,
    /// Jobs not yet terminal (drain waits for this to hit zero).
    active_jobs: usize,
}

/// Delivers one finished job to its connection: `frame` is the encoded
/// terminal frame — a report for completed jobs, a
/// [`Response::JobFailed`] for failed/deadline-exceeded ones, `None`
/// for cancelled jobs (nothing is streamed). Runs on the worker
/// thread, after the quota slot has been released.
pub type DeliverFn = Box<dyn FnOnce(&SessionCore, u64, Option<Vec<u8>>) + Send>;

/// What a nonblocking submit decided; see
/// [`SessionCore::submit_nonblocking`].
pub enum SubmitDisposition {
    /// Send this reply; the submit is fully handled.
    Reply(Response),
    /// The job was admitted (send the reply now) but the worker queue
    /// was full: enqueue later via [`SessionCore::retry_parked`].
    Parked(ParkedSubmit, Response),
}

/// An admitted job waiting for worker-queue space (its `Submitted`
/// reply is already on the wire; `status` answers `queued`).
pub struct ParkedSubmit {
    pending: PendingJob,
    /// The job id assigned at admission.
    pub job_id: u64,
}

/// A decoded `submit problem` request, ready for
/// [`SessionCore::submit_problem_blocking`] /
/// [`SessionCore::submit_problem_nonblocking`] (the fields of
/// [`Request::SubmitProblem`], minus the transport's deliver callback).
pub struct ProblemSubmission {
    /// Quota-accounting identity of the submitter.
    pub tenant: String,
    /// The typed problem instance.
    pub spec: ProblemSpec,
    /// Base operating point (`num_colors` overridden per class).
    pub config: MsropmConfig,
    /// Number of uniform replica lanes.
    pub replicas: u32,
    /// Job seed.
    pub seed: u64,
    /// Milliseconds from admission to report; `0` means none.
    pub deadline_ms: u64,
}

/// One admission-ready job: the encoding graph, the batch job, and —
/// for compiled problems — the fingerprint scoping its cache slot plus
/// the decoder that turns its report into a typed
/// [`Response::ProblemReport`].
struct Admission {
    tenant: String,
    graph: Graph,
    job: BatchJob,
    problem_fingerprint: u64,
    decoder: Option<Decoder>,
    deadline_ms: u64,
}

impl Admission {
    fn plain(tenant: String, graph: Graph, job: BatchJob, deadline_ms: u64) -> Admission {
        Admission {
            tenant,
            graph,
            job,
            problem_fingerprint: 0,
            decoder: None,
            deadline_ms,
        }
    }

    /// Compiles a problem submission onto the machine. A spec the
    /// compiler rejects answers with [`ErrorCode::UnsupportedProblem`]
    /// (request-scoped: the connection stays usable).
    fn problem(sub: ProblemSubmission) -> Result<Admission, Response> {
        let compiled = sub
            .spec
            .compile(&sub.config, sub.replicas as usize)
            .map_err(|e| Response::Error {
                code: ErrorCode::UnsupportedProblem,
                message: e.to_string(),
            })?;
        Ok(Admission {
            tenant: sub.tenant,
            graph: compiled.graph,
            job: BatchJob {
                config: compiled.config,
                lanes: compiled.lanes,
                seed: sub.seed,
            },
            problem_fingerprint: compiled.fingerprint,
            decoder: Some(compiled.decoder),
            deadline_ms: sub.deadline_ms,
        })
    }
}

/// The shared session state; see the module docs.
pub struct SessionCore {
    jobs: JobServer,
    config: WireConfig,
    frontend: FrontendKind,
    registry: Mutex<Registry>,
    /// Signalled whenever a job reaches a terminal state.
    drained: Condvar,
    draining: AtomicBool,
    live_connections: AtomicUsize,
    reports_streamed: AtomicU64,
}

impl SessionCore {
    /// Boots the backing worker pool and an empty registry.
    pub fn new(config: WireConfig, frontend: FrontendKind) -> Arc<SessionCore> {
        Arc::new(SessionCore {
            jobs: JobServer::start(config.server),
            config,
            frontend,
            registry: Mutex::new(Registry::default()),
            drained: Condvar::new(),
            draining: AtomicBool::new(false),
            live_connections: AtomicUsize::new(0),
            reports_streamed: AtomicU64::new(0),
        })
    }

    /// Records a newly served connection.
    pub fn connection_opened(&self) {
        self.live_connections.fetch_add(1, Ordering::AcqRel);
    }

    /// Records a closed connection.
    pub fn connection_closed(&self) {
        self.live_connections.fetch_sub(1, Ordering::AcqRel);
    }

    /// Connections currently served.
    pub fn live_connections(&self) -> usize {
        self.live_connections.load(Ordering::Acquire)
    }

    /// `true` when another connection would exceed the configured cap.
    pub fn at_connection_cap(&self) -> bool {
        self.live_connections() >= self.config.max_connections
    }

    /// Counts a report frame actually handed to a connection writer.
    pub fn note_report_streamed(&self) {
        self.reports_streamed.fetch_add(1, Ordering::Relaxed);
    }

    /// Report frames actually handed to a connection writer.
    pub fn reports_streamed(&self) -> u64 {
        self.reports_streamed.load(Ordering::Relaxed)
    }

    /// `true` once [`SessionCore::begin_drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Starts rejecting new submits with [`ErrorCode::Draining`];
    /// in-flight jobs keep running.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::Release);
    }

    /// Blocks until every admitted job has reached a terminal state
    /// (all completion hooks have run).
    pub fn await_drained(&self) {
        let mut reg = lock_unpoisoned(&self.registry);
        while reg.active_jobs > 0 {
            reg = self
                .drained
                .wait(reg)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// The one place the stats counters are snapshotted (in
    /// [`crate::stats::SCHEMA`] order). Every stats surface — the
    /// binary `stats` verb, the HTTP gateway's `/v1/stats` and
    /// `/metrics` — renders from this registry.
    pub fn stats_registry(&self) -> StatsRegistry {
        let cache = self.jobs.cache_stats();
        StatsRegistry::new(
            [
                self.jobs.jobs_completed(),
                self.jobs.jobs_cancelled(),
                self.jobs.jobs_failed(),
                self.jobs.worker_restarts(),
                self.jobs.backlog() as u64,
                cache.hits,
                cache.misses,
                self.live_connections() as u64,
                self.jobs.jobs_sharded(),
                self.jobs.shard_width_max(),
            ],
            self.frontend,
        )
    }

    /// [`SessionCore::stats_registry`] projected onto the binary frame's
    /// struct (the `stats` verb and the front ends' `stats()` methods).
    pub fn wire_stats(&self) -> WireStats {
        self.stats_registry().to_wire()
    }

    /// Answers the control verbs (`status`/`cancel`/`stats`) — `None`
    /// for `submit`, which must go through
    /// [`SessionCore::submit_blocking`] /
    /// [`SessionCore::submit_nonblocking`].
    pub fn handle_control(&self, req: &Request) -> Option<Response> {
        match req {
            Request::Submit { .. } | Request::SubmitProblem { .. } => None,
            Request::Status { tenant, job_id } => {
                Some(
                    self.job_entry_reply(tenant, *job_id, |entry, job_id| Response::StatusReply {
                        job_id,
                        state: entry.status.get(),
                    }),
                )
            }
            Request::Cancel { tenant, job_id } => {
                Some(self.job_entry_reply(tenant, *job_id, |entry, job_id| {
                    // Cooperative: flips the token; the worker observes
                    // it at pickup or the next stage boundary. Already
                    // terminal jobs are unaffected (cancel is a no-op).
                    entry.cancel.cancel();
                    Response::CancelReply {
                        job_id,
                        state: entry.status.get(),
                    }
                }))
            }
            Request::Stats => Some(Response::StatsReply(self.wire_stats())),
        }
    }

    /// Shared ownership/existence checks of the per-job verbs.
    fn job_entry_reply(
        &self,
        tenant: &str,
        job_id: u64,
        reply: impl FnOnce(&JobEntry, u64) -> Response,
    ) -> Response {
        let reg = lock_unpoisoned(&self.registry);
        match reg.jobs.get(&job_id) {
            None => Response::Error {
                code: ErrorCode::UnknownJob,
                message: format!("no job {job_id}"),
            },
            Some(entry) if entry.tenant != tenant => Response::Error {
                code: ErrorCode::Forbidden,
                message: format!("job {job_id} belongs to another tenant"),
            },
            Some(entry) => reply(entry, job_id),
        }
    }

    /// Submits on behalf of a blocking transport: a full worker queue
    /// blocks this call (per-connection backpressure). Returns the
    /// reply to send.
    pub fn submit_blocking(
        self: &Arc<Self>,
        tenant: String,
        graph: Graph,
        job: BatchJob,
        deadline_ms: u64,
        deliver: DeliverFn,
    ) -> Response {
        self.enqueue_blocking(Admission::plain(tenant, graph, job, deadline_ms), deliver)
    }

    /// [`SessionCore::submit_blocking`] for typed problem submissions:
    /// compiles the spec (an unsupported one answers
    /// [`ErrorCode::UnsupportedProblem`] without touching quotas), then
    /// admits the encoded job; its terminal frame is a decoded
    /// [`Response::ProblemReport`].
    pub fn submit_problem_blocking(
        self: &Arc<Self>,
        sub: ProblemSubmission,
        deliver: DeliverFn,
    ) -> Response {
        match Admission::problem(sub) {
            Ok(admission) => self.enqueue_blocking(admission, deliver),
            Err(reject) => reject,
        }
    }

    fn enqueue_blocking(self: &Arc<Self>, admission: Admission, deliver: DeliverFn) -> Response {
        let (job_id, pending) = match self.admit(admission, deliver) {
            Ok(admitted) => admitted,
            Err(reject) => return reject,
        };
        match self.jobs.submit_job(pending) {
            Ok(()) => Response::Submitted { job_id },
            Err(pending) => {
                // Queue closed under us: dropping the job fires its
                // hook (worker-died), which marks it failed and
                // releases the quota slot.
                drop(pending);
                Response::Error {
                    code: ErrorCode::ShuttingDown,
                    message: "job queue closed".into(),
                }
            }
        }
    }

    /// Submits on behalf of a nonblocking transport: never blocks the
    /// caller. A full worker queue parks the (already admitted) job —
    /// the reply is still `Submitted`, and `status` answers `queued`
    /// until a worker picks it up.
    pub fn submit_nonblocking(
        self: &Arc<Self>,
        tenant: String,
        graph: Graph,
        job: BatchJob,
        deadline_ms: u64,
        deliver: DeliverFn,
    ) -> SubmitDisposition {
        self.enqueue_nonblocking(Admission::plain(tenant, graph, job, deadline_ms), deliver)
    }

    /// [`SessionCore::submit_nonblocking`] for typed problem
    /// submissions; see [`SessionCore::submit_problem_blocking`].
    pub fn submit_problem_nonblocking(
        self: &Arc<Self>,
        sub: ProblemSubmission,
        deliver: DeliverFn,
    ) -> SubmitDisposition {
        match Admission::problem(sub) {
            Ok(admission) => self.enqueue_nonblocking(admission, deliver),
            Err(reject) => SubmitDisposition::Reply(reject),
        }
    }

    fn enqueue_nonblocking(
        self: &Arc<Self>,
        admission: Admission,
        deliver: DeliverFn,
    ) -> SubmitDisposition {
        let (job_id, pending) = match self.admit(admission, deliver) {
            Ok(admitted) => admitted,
            Err(reject) => return SubmitDisposition::Reply(reject),
        };
        match self.jobs.try_submit_job(pending) {
            Ok(()) => SubmitDisposition::Reply(Response::Submitted { job_id }),
            Err(TrySubmitError::Full(pending)) => SubmitDisposition::Parked(
                ParkedSubmit { pending, job_id },
                Response::Submitted { job_id },
            ),
            Err(TrySubmitError::Closed(pending)) => {
                drop(pending);
                SubmitDisposition::Reply(Response::Error {
                    code: ErrorCode::ShuttingDown,
                    message: "job queue closed".into(),
                })
            }
        }
    }

    /// Retries a parked submit; gives it back while the queue is still
    /// full. A closed queue consumes the job (its hook marks it failed).
    pub fn retry_parked(&self, parked: ParkedSubmit) -> Option<ParkedSubmit> {
        let job_id = parked.job_id;
        match self.jobs.try_submit_job(parked.pending) {
            Ok(()) => None,
            Err(TrySubmitError::Full(pending)) => Some(ParkedSubmit { pending, job_id }),
            Err(TrySubmitError::Closed(pending)) => {
                drop(pending);
                None
            }
        }
    }

    /// Admission control: drain check, quota check, registration — all
    /// under the registry lock, *before* enqueueing, so a cancel/status
    /// for the returned id can never miss. On success the job is
    /// bundled with its session completion hook. A nonzero
    /// `deadline_ms` becomes an absolute deadline clocked from
    /// admission — queue wait counts against it.
    fn admit(
        self: &Arc<Self>,
        admission: Admission,
        deliver: DeliverFn,
    ) -> Result<(u64, PendingJob), Response> {
        let Admission {
            tenant,
            graph,
            job,
            problem_fingerprint,
            decoder,
            deadline_ms,
        } = admission;
        if self.is_draining() {
            return Err(Response::Error {
                code: ErrorCode::Draining,
                message: "server is draining; resubmit elsewhere".into(),
            });
        }
        let lanes = job.lanes.len();
        let cancel = CancelToken::new();
        let status = Arc::new(JobStatusCell::new());
        let deadline =
            (deadline_ms > 0).then(|| Instant::now() + Duration::from_millis(deadline_ms));
        let job_id = {
            let mut reg = lock_unpoisoned(&self.registry);
            // Read-only quota check first: a rejected submit must not
            // leave a tenant entry behind (a peer cycling random tenant
            // ids would otherwise grow the map forever).
            let usage = reg.tenants.get(&tenant).copied().unwrap_or_default();
            if usage.inflight + 1 > self.config.max_inflight_jobs {
                return Err(Response::Error {
                    code: ErrorCode::QuotaInFlight,
                    message: format!(
                        "tenant {tenant:?} at in-flight cap ({})",
                        self.config.max_inflight_jobs
                    ),
                });
            }
            if usage.queued_lanes + lanes > self.config.max_queued_lanes {
                return Err(Response::Error {
                    code: ErrorCode::QuotaLanes,
                    message: format!(
                        "tenant {tenant:?} would exceed queued-lane cap ({})",
                        self.config.max_queued_lanes
                    ),
                });
            }
            let usage = reg.tenants.entry(tenant.clone()).or_default();
            usage.inflight += 1;
            usage.queued_lanes += lanes;
            reg.active_jobs += 1;
            reg.next_job_id += 1;
            let job_id = reg.next_job_id;
            reg.jobs.insert(
                job_id,
                JobEntry {
                    tenant,
                    lanes,
                    status: Arc::clone(&status),
                    cancel: cancel.clone(),
                },
            );
            job_id
        };
        let hook = self.completion_hook(job_id, decoder, deliver);
        Ok((
            job_id,
            PendingJob::new(Arc::new(graph), job, cancel, status, deadline, hook)
                .with_problem_fingerprint(problem_fingerprint),
        ))
    }

    /// Builds the hook a worker fires when `job_id` reaches a terminal
    /// state: release the quota slot **before** streaming (a tenant
    /// that resubmits the moment its report arrives must fit), encode
    /// the terminal frame once — a report for `Done`, a typed
    /// [`Response::JobFailed`] for failures — then hand it to the
    /// transport's deliver callback. Every admitted job thus reaches
    /// the client as exactly one terminal frame, except cancelled jobs
    /// (the `CancelReply` already told the client) and jobs whose
    /// submit reply itself carried the error. Holds only a weak
    /// self-reference — hooks sit inside queued envelopes, and a strong
    /// one would cycle `SessionCore → JobServer → queue → hook →
    /// SessionCore`.
    fn completion_hook(
        self: &Arc<Self>,
        job_id: u64,
        decoder: Option<Decoder>,
        deliver: DeliverFn,
    ) -> CompletionHook {
        let weak: Weak<SessionCore> = Arc::downgrade(self);
        CompletionHook::new(move |completion| {
            let Some(core) = weak.upgrade() else {
                return;
            };
            let job_failed_frame = |code, message: &str| {
                Some(proto::encode_response(&Response::JobFailed {
                    job_id,
                    code,
                    message: message.into(),
                }))
            };
            match completion {
                JobCompletion::Done(outcome) => {
                    core.finalize(job_id);
                    // A problem submission decodes the ranked phase
                    // readout back into its typed domain solution; a
                    // plain graph submission streams the raw report.
                    let frame = match &decoder {
                        Some(decoder) => {
                            proto::encode_response(&Response::ProblemReport(WireProblemReport {
                                job_id,
                                queued_us: outcome.timing.queued.as_micros() as u64,
                                service_us: outcome.timing.service.as_micros() as u64,
                                report: decoder.decode_report(&outcome.report),
                            }))
                        }
                        None => {
                            let report = WireReport::from_outcome(job_id, &outcome);
                            proto::encode_response(&Response::Report(report))
                        }
                    };
                    deliver(&core, job_id, Some(frame));
                }
                JobCompletion::Cancelled => {
                    // No report exists for a cancelled job, and none is
                    // ever streamed.
                    core.finalize(job_id);
                    deliver(&core, job_id, None);
                }
                JobCompletion::Failed { message } => {
                    // A panicking solve, caught by the worker: the
                    // client gets the panic message under a typed code.
                    core.fail(job_id);
                    core.finalize(job_id);
                    deliver(
                        &core,
                        job_id,
                        job_failed_frame(ErrorCode::Internal, &message),
                    );
                }
                JobCompletion::DeadlineExceeded => {
                    core.fail(job_id);
                    core.finalize(job_id);
                    deliver(
                        &core,
                        job_id,
                        job_failed_frame(ErrorCode::DeadlineExceeded, "job deadline exceeded"),
                    );
                }
                JobCompletion::WorkerDied => {
                    // Fired from the hook's Drop. Two distinct paths
                    // land here: a worker thread dying mid-job (stream
                    // a typed failure, count it), and an envelope
                    // dropped before pickup — queue closed at submit —
                    // whose submit reply already carried the error
                    // (stream nothing).
                    let was_running = core.fail(job_id) == Some(JobState::Running);
                    core.finalize(job_id);
                    if was_running {
                        core.jobs.count_failed_job();
                        deliver(
                            &core,
                            job_id,
                            job_failed_frame(ErrorCode::Internal, "worker died"),
                        );
                    } else {
                        deliver(&core, job_id, None);
                    }
                }
            }
        })
    }

    /// Marks `job_id` failed, returning the state it was in (`None` for
    /// an already-evicted entry).
    fn fail(&self, job_id: u64) -> Option<JobState> {
        let reg = lock_unpoisoned(&self.registry);
        reg.jobs
            .get(&job_id)
            .map(|entry| entry.status.swap(JobState::Failed))
    }

    /// Releases a job's quota reservation once it is terminal and wakes
    /// the drain waiter. The registry entry is retained so late status
    /// queries resolve, but only the newest [`TERMINAL_JOBS_RETAINED`]
    /// terminal jobs — older ones are evicted (status then answers
    /// `UnknownJob`), keeping a long-lived daemon's footprint bounded.
    fn finalize(&self, job_id: u64) {
        let mut reg = lock_unpoisoned(&self.registry);
        let Some(entry) = reg.jobs.get(&job_id) else {
            return;
        };
        let tenant = entry.tenant.clone();
        let lanes = entry.lanes;
        if let Some(usage) = reg.tenants.get_mut(&tenant) {
            usage.inflight = usage.inflight.saturating_sub(1);
            usage.queued_lanes = usage.queued_lanes.saturating_sub(lanes);
            // Idle tenants drop out of the map entirely; quotas are
            // purely about current usage, so an empty entry carries no
            // state.
            if usage.inflight == 0 && usage.queued_lanes == 0 {
                reg.tenants.remove(&tenant);
            }
        }
        reg.active_jobs = reg.active_jobs.saturating_sub(1);
        reg.terminal_order.push_back(job_id);
        while reg.terminal_order.len() > TERMINAL_JOBS_RETAINED {
            if let Some(evict) = reg.terminal_order.pop_front() {
                reg.jobs.remove(&evict);
            }
        }
        drop(reg);
        self.drained.notify_all();
    }
}
