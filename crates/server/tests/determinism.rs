//! Property test of the ISSUE's headline server contract: same job +
//! seed ⇒ bit-identical ranked report regardless of worker count *and*
//! intra-job shard width, for *arbitrary* mixed batches — random
//! graphs, random lane overrides, random seeds, hot and cold cache
//! paths alike (companion to the workspace root's
//! `tests/batch_determinism.rs`, one level up the stack).

use msropm_core::{BatchJob, JobReport, LaneConfig, MsropmConfig, ReinitMode};
use msropm_graph::{generators, Graph};
use msropm_server::{JobServer, ServerConfig, ShardPolicy};
use proptest::prelude::*;
use std::sync::Arc;

fn fast_config() -> MsropmConfig {
    MsropmConfig {
        dt: 0.02,
        ..MsropmConfig::paper_default()
    }
}

/// Strategy: one job = a small graph (from a pool of distinct labelled
/// topologies), 1–4 lanes with arbitrary (K, σ, re-init) overrides, and
/// an arbitrary job seed.
fn arb_job() -> impl Strategy<Value = (usize, Vec<LaneConfig>, u64)> {
    let lane = (0usize..4, 0.5f64..1.5, 0.0f64..0.3).prop_map(|(kind, k, sigma)| match kind {
        0 => LaneConfig::default(),
        1 => LaneConfig::default().with_coupling_strength(k),
        2 => LaneConfig::default().with_noise(sigma),
        _ => LaneConfig::default().with_reinit(ReinitMode::UniformRandom),
    });
    (
        0usize..4,
        proptest::collection::vec(lane, 1..4),
        any::<u64>(),
    )
}

fn graph_pool() -> Vec<Arc<Graph>> {
    vec![
        Arc::new(generators::kings_graph(3, 3)),
        Arc::new(generators::kings_graph(4, 4)),
        Arc::new(generators::cycle_graph(11)),
        Arc::new(generators::grid_graph(3, 4)),
    ]
}

fn run_batch(
    workers: usize,
    shards: ShardPolicy,
    jobs: &[(Arc<Graph>, BatchJob)],
) -> Vec<JobReport> {
    let server = JobServer::start(ServerConfig {
        workers,
        queue_capacity: 4,
        cache_capacity: 3, // below the pool size: include eviction traffic
        shards,
        ..ServerConfig::default()
    });
    let tickets: Vec<_> = jobs
        .iter()
        .map(|(g, j)| server.submit(Arc::clone(g), j.clone()).expect("open"))
        .collect();
    tickets
        .into_iter()
        .map(|t| t.wait().expect("completed").report)
        .collect()
}

fn assert_reports_match(one: &[JobReport], other: &[JobReport]) {
    for (a, b) in one.iter().zip(other) {
        prop_assert_eq!(a.graph_hash, b.graph_hash);
        prop_assert_eq!(a.seed, b.seed);
        prop_assert_eq!(a.ranked.len(), b.ranked.len());
        for (x, y) in a.ranked.iter().zip(&b.ranked) {
            prop_assert_eq!(x.lane, y.lane);
            prop_assert_eq!(x.seed, y.seed);
            prop_assert_eq!(x.conflicts, y.conflicts);
            prop_assert_eq!(&x.solution.coloring, &y.solution.coloring);
            for (p, q) in x.solution.final_phases.iter().zip(&y.solution.final_phases) {
                prop_assert_eq!(p.to_bits(), q.to_bits());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn worker_and_shard_counts_never_change_a_report(
        batch in proptest::collection::vec(arb_job(), 1..7)
    ) {
        let pool = graph_pool();
        let jobs: Vec<(Arc<Graph>, BatchJob)> = batch
            .into_iter()
            .map(|(gi, lanes, seed)| {
                let job = BatchJob { config: fast_config(), lanes, seed };
                (Arc::clone(&pool[gi % pool.len()]), job)
            })
            .collect();
        // The reference: classic serial solves, one worker, no shards.
        let one = run_batch(1, ShardPolicy::Fixed(1), &jobs);
        // Worker axis, shard axis, and both together — including Auto,
        // whose width varies with live queue depth and core count.
        let three = run_batch(3, ShardPolicy::Fixed(1), &jobs);
        assert_reports_match(&one, &three);
        let sharded = run_batch(1, ShardPolicy::Fixed(4), &jobs);
        assert_reports_match(&one, &sharded);
        let both = run_batch(3, ShardPolicy::Fixed(4), &jobs);
        assert_reports_match(&one, &both);
        let auto = run_batch(2, ShardPolicy::Auto, &jobs);
        assert_reports_match(&one, &auto);
    }
}
