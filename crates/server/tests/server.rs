//! Integration tests of the job server: worker-count invariance of the
//! ranked reports, cache-hit transparency, eviction accounting and
//! graceful shutdown.

use msropm_core::{BatchJob, JobReport, LaneConfig, MsropmConfig, SweepParam, SweepSpec};
use msropm_graph::generators;
use msropm_graph::Graph;
use msropm_server::{JobServer, ServerConfig, ServerError};
use std::sync::Arc;
use std::time::Duration;

fn fast_config() -> MsropmConfig {
    MsropmConfig {
        dt: 0.02,
        ..MsropmConfig::paper_default()
    }
}

/// A mixed workload: repeat + cold graphs, homogeneous + swept jobs.
fn mixed_jobs() -> Vec<(Arc<Graph>, BatchJob)> {
    let kings3 = Arc::new(generators::kings_graph(3, 3));
    let kings4 = Arc::new(generators::kings_graph(4, 4));
    let cycle = Arc::new(generators::cycle_graph(12));
    let sweep = SweepSpec::new()
        .grid(SweepParam::CouplingStrength, vec![0.8, 1.2])
        .grid(SweepParam::Noise, vec![0.1, 0.25]);
    let mut jobs = Vec::new();
    for seed in 0..4u64 {
        jobs.push((
            Arc::clone(&kings3),
            BatchJob::uniform(fast_config(), 4, seed),
        ));
        jobs.push((
            Arc::clone(&kings4),
            BatchJob::from_sweep(fast_config(), &sweep, 100 + seed),
        ));
    }
    jobs.push((cycle, BatchJob::uniform(fast_config(), 3, 7)));
    jobs.push((
        Arc::clone(&kings3),
        BatchJob {
            config: fast_config(),
            lanes: vec![
                LaneConfig::default(),
                LaneConfig::default().with_noise(0.05),
                LaneConfig::default().with_coupling_strength(1.3),
            ],
            seed: 55,
        },
    ));
    jobs
}

fn run_all(workers: usize, jobs: &[(Arc<Graph>, BatchJob)]) -> Vec<JobReport> {
    let server = JobServer::start(ServerConfig {
        workers,
        queue_capacity: 4, // deliberately smaller than the job count: exercises backpressure
        cache_capacity: 8,
        ..ServerConfig::default()
    });
    let tickets: Vec<_> = jobs
        .iter()
        .map(|(g, job)| {
            server
                .submit(Arc::clone(g), job.clone())
                .expect("queue open")
        })
        .collect();
    let reports: Vec<JobReport> = tickets
        .into_iter()
        .map(|t| t.wait().expect("job completed").report)
        .collect();
    assert_eq!(server.jobs_completed(), jobs.len() as u64);
    server.shutdown();
    reports
}

fn assert_reports_bit_identical(a: &JobReport, b: &JobReport, ctx: &str) {
    assert_eq!(a.graph_hash, b.graph_hash, "{ctx}: graph hash");
    assert_eq!(a.seed, b.seed, "{ctx}: job seed");
    assert_eq!(a.ranked.len(), b.ranked.len(), "{ctx}: lane count");
    for (x, y) in a.ranked.iter().zip(&b.ranked) {
        assert_eq!(x.lane, y.lane, "{ctx}: rank order");
        assert_eq!(x.seed, y.seed, "{ctx}: lane seed");
        assert_eq!(x.conflicts, y.conflicts, "{ctx}: conflicts");
        assert_eq!(
            x.accuracy.to_bits(),
            y.accuracy.to_bits(),
            "{ctx}: accuracy"
        );
        assert_eq!(x.solution.coloring, y.solution.coloring, "{ctx}: coloring");
        for (p, q) in x.solution.final_phases.iter().zip(&y.solution.final_phases) {
            assert_eq!(p.to_bits(), q.to_bits(), "{ctx}: final phases");
        }
    }
}

/// The ISSUE's headline property: same job + seed ⇒ bit-identical answer
/// regardless of worker count.
#[test]
fn ranked_reports_identical_across_1_vs_4_workers() {
    let jobs = mixed_jobs();
    let one = run_all(1, &jobs);
    let four = run_all(4, &jobs);
    for (i, (a, b)) in one.iter().zip(&four).enumerate() {
        assert_reports_bit_identical(a, b, &format!("job {i}, 1 vs 4 workers"));
    }
}

/// A cache hit must be indistinguishable from a miss: resubmitting the
/// same job to a warm server reproduces the cold report bit for bit.
#[test]
fn cache_hit_is_bit_identical_to_cache_miss() {
    let graph = Arc::new(generators::kings_graph(4, 4));
    let job = BatchJob::uniform(fast_config(), 6, 99);

    let server = JobServer::start(ServerConfig {
        workers: 2,
        queue_capacity: 8,
        cache_capacity: 4,
        ..ServerConfig::default()
    });
    let cold = server
        .submit(Arc::clone(&graph), job.clone())
        .unwrap()
        .wait()
        .unwrap()
        .report;
    let warm = server
        .submit(Arc::clone(&graph), job.clone())
        .unwrap()
        .wait()
        .unwrap()
        .report;
    let stats = server.cache_stats();
    assert!(stats.hits >= 1, "second submission must hit: {stats:?}");
    assert_eq!(stats.misses, 1);
    server.shutdown();
    assert_reports_bit_identical(&cold, &warm, "cold vs warm cache");

    // And a completely fresh (cold-cache, different worker) server
    // agrees too.
    let fresh = run_all(1, &[(graph, job)]);
    assert_reports_bit_identical(&cold, &fresh[0], "warm server vs fresh server");
}

/// Distinct topologies past the cache cap evict LRU-first; an evicted
/// problem recompiles (miss), a resident one does not (hit).
#[test]
fn cache_evicts_beyond_cap_and_recompiles_transparently() {
    let graphs: Vec<Arc<Graph>> = vec![
        Arc::new(generators::kings_graph(3, 3)),
        Arc::new(generators::cycle_graph(10)),
        Arc::new(generators::path_graph(9)),
    ];
    let server = JobServer::start(ServerConfig {
        workers: 1, // sequential: cache traffic is deterministic
        queue_capacity: 8,
        cache_capacity: 2,
        ..ServerConfig::default()
    });
    let submit_wait = |g: &Arc<Graph>, seed: u64| {
        server
            .submit(Arc::clone(g), BatchJob::uniform(fast_config(), 2, seed))
            .unwrap()
            .wait()
            .unwrap()
            .report
    };
    let first = submit_wait(&graphs[0], 1);
    submit_wait(&graphs[1], 2);
    submit_wait(&graphs[0], 3); // touch: graphs[1] becomes LRU
    submit_wait(&graphs[2], 4); // evicts graphs[1]
    let stats = server.cache_stats();
    assert_eq!(stats.evictions, 1, "{stats:?}");
    assert_eq!(stats.misses, 3, "{stats:?}");
    assert_eq!(stats.hits, 1, "{stats:?}");
    // Evicted problem comes back as a miss, with the same answer.
    let again = submit_wait(&graphs[0], 1);
    assert_reports_bit_identical(&first, &again, "pre/post eviction churn");
    server.shutdown();
}

/// Shutdown drains already-accepted jobs before the workers exit.
#[test]
fn shutdown_completes_accepted_jobs() {
    let graph = Arc::new(generators::kings_graph(3, 3));
    let server = JobServer::start(ServerConfig {
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 2,
        ..ServerConfig::default()
    });
    let tickets: Vec<_> = (0..6)
        .map(|seed| {
            server
                .submit(
                    Arc::clone(&graph),
                    BatchJob::uniform(fast_config(), 2, seed),
                )
                .unwrap()
        })
        .collect();
    server.shutdown();
    for (i, t) in tickets.into_iter().enumerate() {
        assert!(t.wait().is_ok(), "queued job {i} must still complete");
    }
}

/// `wait_timeout` hands the ticket back on expiry; waiting again
/// eventually yields the report.
#[test]
fn wait_timeout_returns_ticket_for_retry() {
    let graph = Arc::new(generators::kings_graph(5, 5));
    let server = JobServer::start(ServerConfig {
        workers: 1,
        queue_capacity: 4,
        cache_capacity: 2,
        ..ServerConfig::default()
    });
    let ticket = server
        .submit(Arc::clone(&graph), BatchJob::uniform(fast_config(), 8, 3))
        .unwrap();
    let ticket = match ticket.wait_timeout(Duration::from_nanos(1)) {
        Err(ServerError::Timeout(t)) => t,
        Ok(_) => return, // absurdly fast machine; nothing left to check
        Err(e) => panic!("unexpected error: {e}"),
    };
    assert!(ticket.wait().is_ok());
    server.shutdown();
}
