//! Property tests for the HTTP/1.1 request parser
//! (`msropm_server::http::HttpParser`): the gateway's byte-level
//! contract under hostile and fragmented input.
//!
//! 1. **Panic freedom**: arbitrary bytes, dribbled in arbitrary chunk
//!    sizes, never panic the parser — they produce requests or typed
//!    [`HttpParseError`]s, and a fatal error is sticky (the connection
//!    is declared desynced once, permanently).
//! 2. **Segmentation invariance**: a pipelined request stream produces
//!    the identical request/error sequence whether it arrives in one
//!    `push` or split at arbitrary byte boundaries — the property that
//!    makes the parser safe behind a nonblocking socket, where TCP
//!    framing is adversarially unhelpful.
//! 3. **Caps**: request-line, header-count and header-byte limits
//!    reject with the documented statuses, fatally; an oversized
//!    declared body rejects with 413 *recoverably* (framing resyncs
//!    past the declared length).

use msropm_server::http::{HttpParseError, HttpParser, HttpRequest};
use proptest::prelude::*;

/// One parser event: a parsed request or a typed parse error.
type Event = Result<HttpRequest, HttpParseError>;

/// Drains every currently parseable event. Stops at a fatal error (the
/// parser is poisoned; the connection would close after responding).
fn drain(parser: &mut HttpParser, events: &mut Vec<Event>) -> bool {
    loop {
        match parser.next_request() {
            Ok(Some(request)) => events.push(Ok(request)),
            Ok(None) => return true,
            Err(e) => {
                let fatal = e.fatal;
                events.push(Err(e));
                if fatal {
                    return false;
                }
            }
        }
    }
}

/// Feeds `stream` split at `cuts` (whole stream when empty) and
/// collects the full event sequence.
fn run_segmented(stream: &[u8], cuts: &[usize]) -> Vec<Event> {
    let mut parser = HttpParser::new();
    let mut events = Vec::new();
    let mut at = 0usize;
    for &cut in cuts {
        if at >= stream.len() {
            break;
        }
        let end = (at + cut.max(1)).min(stream.len());
        parser.push(&stream[at..end]);
        at = end;
        if !drain(&mut parser, &mut events) {
            return events;
        }
    }
    parser.push(&stream[at..]);
    drain(&mut parser, &mut events);
    events
}

/// A small grammar of request templates — valid verbs and a couple of
/// malformed shapes, so streams exercise the error paths too.
fn render_request(template: u8, body: &[u8]) -> Vec<u8> {
    match template % 5 {
        0 => b"GET /v1/stats HTTP/1.1\r\n\r\n".to_vec(),
        1 => {
            let mut req = format!(
                "POST /v1/problems?x=1 HTTP/1.1\r\nx-trace: abc\r\ncontent-length: {}\r\n\r\n",
                body.len()
            )
            .into_bytes();
            req.extend_from_slice(body);
            req
        }
        2 => b"DELETE /v1/jobs/7?tenant=t HTTP/1.0\r\nconnection: keep-alive\r\n\r\n".to_vec(),
        3 => {
            let mut req = format!(
                "POST /v1/jobs HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
                body.len()
            )
            .into_bytes();
            req.extend_from_slice(body);
            req
        }
        // Malformed: bad version -> 505, fatal, poisons the stream.
        _ => b"GET / HTTP/3.0\r\n\r\n".to_vec(),
    }
}

proptest! {
    /// Arbitrary bytes in arbitrary chunkings never panic, and once a
    /// fatal error is reported the parser stays poisoned: every later
    /// call answers an error, never a request.
    #[test]
    fn arbitrary_bytes_never_panic(
        bytes in proptest::collection::vec(any::<u8>(), 0..2048),
        cuts in proptest::collection::vec(1usize..97, 0..32),
    ) {
        let mut parser = HttpParser::new();
        let mut events = Vec::new();
        let mut at = 0usize;
        let mut poisoned = false;
        for cut in cuts {
            if at >= bytes.len() {
                break;
            }
            let end = (at + cut).min(bytes.len());
            parser.push(&bytes[at..end]);
            at = end;
            if !drain(&mut parser, &mut events) {
                poisoned = true;
                break;
            }
        }
        if !poisoned {
            parser.push(&bytes[at..]);
            poisoned = !drain(&mut parser, &mut events);
        }
        if poisoned {
            // Sticky: the poisoned parser never yields another request.
            for _ in 0..3 {
                prop_assert!(parser.next_request().is_err());
            }
        }
    }

    /// A pipelined stream of valid-and-malformed requests produces the
    /// identical event sequence under any segmentation — byte-dribbled
    /// input parses exactly like a single contiguous read.
    #[test]
    fn segmentation_invariant_event_sequence(
        templates in proptest::collection::vec(any::<u8>(), 1..8),
        body in proptest::collection::vec(any::<u8>(), 0..256),
        cuts in proptest::collection::vec(1usize..33, 0..64),
    ) {
        let stream: Vec<u8> = templates
            .iter()
            .flat_map(|&t| render_request(t, &body))
            .collect();
        let whole = run_segmented(&stream, &[]);
        let dribbled = run_segmented(&stream, &cuts);
        prop_assert_eq!(whole, dribbled);
    }
}

#[test]
fn request_line_cap_answers_414_fatally() {
    let mut parser = HttpParser::new();
    let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(9 << 10));
    parser.push(long.as_bytes());
    let err = parser.next_request().expect_err("over the line cap");
    assert_eq!(err.status, 414);
    assert!(err.fatal);
}

#[test]
fn header_count_cap_answers_431_fatally() {
    let mut parser = HttpParser::new();
    let mut req = String::from("GET / HTTP/1.1\r\n");
    for i in 0..200 {
        req.push_str(&format!("x-h-{i}: v\r\n"));
    }
    req.push_str("\r\n");
    parser.push(req.as_bytes());
    let err = parser.next_request().expect_err("over the header cap");
    assert_eq!(err.status, 431);
    assert!(err.fatal);
}

#[test]
fn header_bytes_cap_answers_431_fatally() {
    let mut parser = HttpParser::new();
    let req = format!("GET / HTTP/1.1\r\nx-big: {}\r\n\r\n", "v".repeat(33 << 10));
    parser.push(req.as_bytes());
    let err = parser.next_request().expect_err("over the header-byte cap");
    assert_eq!(err.status, 431);
    assert!(err.fatal);
}

#[test]
fn zero_content_length_parses_an_empty_body() {
    let mut parser = HttpParser::new();
    parser
        .push(b"POST /v1/jobs HTTP/1.1\r\ncontent-length: 0\r\n\r\nGET /v1/stats HTTP/1.1\r\n\r\n");
    let first = parser.next_request().unwrap().expect("first request");
    assert_eq!(first.method, "POST");
    assert!(first.body.is_empty());
    let second = parser.next_request().unwrap().expect("second request");
    assert_eq!(second.path, "/v1/stats");
}

#[test]
fn oversized_body_rejects_recoverably_and_resyncs() {
    let mut parser = HttpParser::new();
    let declared = (32 << 20) + 1usize; // one past MAX_BODY_LEN
    parser.push(format!("POST /v1/jobs HTTP/1.1\r\ncontent-length: {declared}\r\n\r\n").as_bytes());
    let err = parser.next_request().expect_err("over the body cap");
    assert_eq!(err.status, 413);
    assert!(!err.fatal);
    // Dribble the rejected body in two installments: discarded, never
    // surfaced as a request.
    parser.push(&vec![7u8; declared - 1]);
    assert!(parser.next_request().unwrap().is_none());
    parser.push(&[7u8]);
    assert!(parser.next_request().unwrap().is_none());
    // The connection resyncs: a pipelined request parses normally.
    parser.push(b"GET /v1/stats HTTP/1.1\r\n\r\n");
    let next = parser.next_request().unwrap().expect("resynced request");
    assert_eq!(next.path, "/v1/stats");
}
