//! Exhaustive model checking of the CDCL solver: on random small formulas
//! the solver's verdict must match brute-force truth-table enumeration,
//! and incremental assumption queries must match solving the augmented
//! formula from scratch.

use msropm_sat::{Cnf, Lit, SolveResult, Solver};
use proptest::prelude::*;

/// Brute-force satisfiability over <= 16 variables.
fn brute_force_sat(cnf: &Cnf) -> bool {
    let n = cnf.num_vars();
    assert!(n <= 16, "brute force capped at 16 vars");
    for mask in 0u32..(1u32 << n) {
        let model: Vec<bool> = (0..n).map(|i| (mask >> i) & 1 == 1).collect();
        if cnf.eval(&model) {
            return true;
        }
    }
    n == 0 && cnf.num_clauses() == 0
}

/// Strategy: a random CNF with `vars` variables and up to `max_clauses`
/// clauses of 1–4 literals.
fn arb_cnf(vars: usize, max_clauses: usize) -> impl Strategy<Value = Cnf> {
    proptest::collection::vec(
        proptest::collection::vec((0..vars, any::<bool>()), 1..=4),
        0..max_clauses,
    )
    .prop_map(move |raw| {
        let mut cnf = Cnf::new(vars);
        for clause in raw {
            let lits: Vec<Lit> = clause
                .into_iter()
                .map(|(v, pos)| Lit::new(msropm_sat::Var::new(v), pos))
                .collect();
            cnf.add_clause(lits);
        }
        cnf
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn cdcl_matches_bruteforce(cnf in arb_cnf(10, 40)) {
        let expected = brute_force_sat(&cnf);
        match cnf.solve() {
            SolveResult::Sat(model) => {
                prop_assert!(expected, "CDCL says SAT, brute force says UNSAT");
                prop_assert!(cnf.eval(&model), "returned model violates the formula");
            }
            SolveResult::Unsat => {
                prop_assert!(!expected, "CDCL says UNSAT, brute force found a model");
            }
        }
    }

    #[test]
    fn assumptions_match_augmented_formula(cnf in arb_cnf(8, 25), pattern in 0u8..255) {
        // Pick up to 3 assumption literals from the pattern bits.
        let assumptions: Vec<Lit> = (0..3)
            .map(|k| {
                let v = ((pattern >> (2 * k)) % 8) as usize;
                Lit::new(msropm_sat::Var::new(v), (pattern >> (6 + k.min(1))) & 1 == 0)
            })
            .collect();

        // Reference: add assumptions as units to a copy and solve fresh.
        let mut augmented = cnf.clone();
        for &a in &assumptions {
            augmented.add_clause(vec![a]);
        }
        let expected = augmented.solve().is_sat();

        // Incremental: one solver, assumptions per query.
        let mut solver = Solver::new();
        solver.new_vars(cnf.num_vars().max(8));
        let mut top_level_unsat = false;
        for clause in cnf.clauses() {
            if !solver.add_clause(clause) {
                top_level_unsat = true;
            }
        }
        let got = if top_level_unsat {
            false
        } else {
            solver.solve_with_assumptions(&assumptions).is_sat()
        };
        prop_assert_eq!(got, expected);

        // The solver must remain correct for the unconstrained query.
        if !top_level_unsat {
            prop_assert_eq!(solver.solve().is_sat(), brute_force_sat(&cnf));
        }
    }
}
