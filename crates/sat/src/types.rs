//! Boolean variables and literals.

use std::fmt;
use std::ops::Not;

/// A Boolean variable, identified by a dense index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Var(u32);

impl Var {
    /// Creates a variable from its dense index.
    pub fn new(index: usize) -> Self {
        Var(index as u32)
    }

    /// Dense index of this variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    pub fn positive(self) -> Lit {
        Lit::new(self, true)
    }

    /// The negative literal of this variable.
    pub fn negative(self) -> Lit {
        Lit::new(self, false)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation, packed as `2·var + negated`.
///
/// # Example
///
/// ```
/// use msropm_sat::{Lit, Var};
///
/// let x = Var::new(3);
/// let pos = x.positive();
/// assert_eq!(!pos, x.negative());
/// assert_eq!(pos.var(), x);
/// assert!(pos.is_positive());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal with the given polarity (`true` = positive).
    pub fn new(var: Var, positive: bool) -> Self {
        Lit(2 * var.0 + u32::from(!positive))
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Returns `true` for a positive (unnegated) literal.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Packed code in `0..2·num_vars`, used to index watch lists.
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Inverse of [`Lit::code`].
    pub fn from_code(code: usize) -> Self {
        Lit(code as u32)
    }

    /// The value this literal takes when its variable is assigned `value`.
    pub fn eval(self, value: bool) -> bool {
        value == self.is_positive()
    }

    /// Creates a literal from a DIMACS-style signed integer (non-zero;
    /// `-3` means ¬x₂ because DIMACS is 1-based).
    ///
    /// # Panics
    ///
    /// Panics if `dimacs == 0`.
    pub fn from_dimacs(dimacs: i64) -> Self {
        assert!(dimacs != 0, "DIMACS literal 0 is the clause terminator");
        let var = Var::new(dimacs.unsigned_abs() as usize - 1);
        Lit::new(var, dimacs > 0)
    }

    /// Converts back to a DIMACS-style signed integer.
    pub fn to_dimacs(self) -> i64 {
        let v = self.var().index() as i64 + 1;
        if self.is_positive() {
            v
        } else {
            -v
        }
    }
}

impl Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "¬{}", self.var())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_packing_roundtrip() {
        for i in 0..10 {
            let v = Var::new(i);
            assert_eq!(v.index(), i);
            let p = v.positive();
            let n = v.negative();
            assert_eq!(p.var(), v);
            assert_eq!(n.var(), v);
            assert!(p.is_positive());
            assert!(!n.is_positive());
            assert_eq!(!p, n);
            assert_eq!(!!p, p);
            assert_eq!(Lit::from_code(p.code()), p);
        }
    }

    #[test]
    fn eval_semantics() {
        let v = Var::new(0);
        assert!(v.positive().eval(true));
        assert!(!v.positive().eval(false));
        assert!(v.negative().eval(false));
        assert!(!v.negative().eval(true));
    }

    #[test]
    fn dimacs_conversion() {
        assert_eq!(Lit::from_dimacs(1), Var::new(0).positive());
        assert_eq!(Lit::from_dimacs(-3), Var::new(2).negative());
        assert_eq!(Lit::from_dimacs(-3).to_dimacs(), -3);
        assert_eq!(Lit::from_dimacs(7).to_dimacs(), 7);
    }

    #[test]
    #[should_panic(expected = "clause terminator")]
    fn dimacs_zero_rejected() {
        Lit::from_dimacs(0);
    }

    #[test]
    fn display() {
        assert_eq!(Var::new(2).positive().to_string(), "x2");
        assert_eq!(Var::new(2).negative().to_string(), "¬x2");
    }
}
