//! Exact-solution baselines for the MSROPM reproduction.
//!
//! §4 of the paper: *"Exact solutions of the problems are computed using a
//! generic SAT solver, which serves as the baseline for evaluating
//! accuracy."* This crate provides that baseline, built from scratch:
//!
//! - [`solver`]: a CDCL SAT solver with two-watched-literal propagation,
//!   VSIDS decisions, first-UIP clause learning, phase saving, Luby restarts
//!   and activity-based learnt-clause deletion.
//! - [`cnf`]: CNF formula container plus DIMACS reader/writer.
//! - [`encode`]: the K-coloring ↔ CNF encoding (one Boolean per
//!   node/color, at-least-one + at-most-one + adjacency constraints) and
//!   model decoding back to a [`msropm_graph::Coloring`].
//! - [`maxcut`]: exact max-cut by branch and bound, the stage-1 quality
//!   reference at small sizes.
//!
//! # Example: 4-coloring the paper's 49-node benchmark exactly
//!
//! ```
//! use msropm_graph::generators::kings_graph;
//! use msropm_sat::encode::solve_k_coloring;
//!
//! let g = kings_graph(7, 7);
//! let coloring = solve_k_coloring(&g, 4).expect("King's graphs are 4-colorable");
//! assert!(coloring.is_proper(&g));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cnf;
pub mod encode;
pub mod maxcut;
pub mod solver;
pub mod types;

pub use cnf::Cnf;
pub use encode::{solve_chromatic_number, solve_k_coloring};
pub use maxcut::branch_and_bound_max_cut;
pub use solver::{SolveResult, Solver};
pub use types::{Lit, Var};
