//! A CDCL (conflict-driven clause learning) SAT solver.
//!
//! Implements the standard modern architecture: two-watched-literal unit
//! propagation, VSIDS variable activities with exponential decay, first-UIP
//! conflict analysis with non-chronological backjumping, learnt-clause
//! minimization (self-subsumption against reason clauses), phase saving,
//! Luby-sequence restarts, and periodic activity-based learnt-clause
//! deletion.
//!
//! The solver is deterministic: identical inputs yield identical runs.

use crate::types::{Lit, Var};

/// Result of a satisfiability query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveResult {
    /// Satisfiable, with a model: `model[v]` is the value of variable `v`.
    Sat(Vec<bool>),
    /// Proven unsatisfiable.
    Unsat,
}

impl SolveResult {
    /// Returns the model if satisfiable.
    pub fn model(&self) -> Option<&[bool]> {
        match self {
            SolveResult::Sat(m) => Some(m),
            SolveResult::Unsat => None,
        }
    }

    /// Returns `true` if satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat(_))
    }
}

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    activity: f64,
}

type ClauseRef = usize;

const UNASSIGNED_LEVEL: u32 = u32::MAX;

/// A CDCL SAT solver over clauses of [`Lit`]s.
///
/// # Example
///
/// ```
/// use msropm_sat::{Solver, SolveResult};
///
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause(&[a.positive(), b.positive()]);
/// s.add_clause(&[a.negative()]);
/// match s.solve() {
///     SolveResult::Sat(model) => assert!(model[b.index()]),
///     SolveResult::Unsat => unreachable!(),
/// }
/// ```
#[derive(Debug, Default)]
pub struct Solver {
    clauses: Vec<Clause>,
    /// Watch lists indexed by `Lit::code()`: clauses watching that literal.
    watches: Vec<Vec<ClauseRef>>,
    /// Current assignment per variable (`None` = unassigned).
    assigns: Vec<Option<bool>>,
    /// Decision level of each assigned variable.
    level: Vec<u32>,
    /// Reason clause of each implied variable.
    reason: Vec<Option<ClauseRef>>,
    /// Assignment trail in chronological order.
    trail: Vec<Lit>,
    /// Trail index delimiting each decision level.
    trail_lim: Vec<usize>,
    /// Next trail position to propagate.
    qhead: usize,
    /// VSIDS activity per variable.
    activity: Vec<f64>,
    var_inc: f64,
    clause_inc: f64,
    /// Saved polarity per variable (phase saving).
    polarity: Vec<bool>,
    /// Top-level contradiction already detected.
    unsat: bool,
    /// Statistics: conflicts, decisions, propagations, restarts.
    stats: SolverStats,
}

/// Counters describing the work a [`Solver`] performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of conflicts analyzed.
    pub conflicts: u64,
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently retained.
    pub learnt_clauses: u64,
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            var_inc: 1.0,
            clause_inc: 1.0,
            ..Default::default()
        }
    }

    /// Number of variables created so far.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of problem (non-learnt) clauses added.
    pub fn num_clauses(&self) -> usize {
        self.clauses.iter().filter(|c| !c.learnt).count()
    }

    /// Work counters for the run so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::new(self.assigns.len());
        self.assigns.push(None);
        self.level.push(UNASSIGNED_LEVEL);
        self.reason.push(None);
        self.activity.push(0.0);
        self.polarity.push(false);
        self.watches.push(Vec::new()); // positive lit
        self.watches.push(Vec::new()); // negative lit
        v
    }

    /// Creates `n` fresh variables and returns them.
    pub fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }

    fn value_lit(&self, l: Lit) -> Option<bool> {
        self.assigns[l.var().index()].map(|v| l.eval(v))
    }

    /// Adds a clause. Returns `false` if the solver is already known
    /// unsatisfiable at top level (the clause may still have been recorded).
    ///
    /// Tautologies are silently dropped; duplicate literals are merged.
    ///
    /// # Panics
    ///
    /// Panics if a literal references a variable that was not created, or if
    /// called after search has begun (decision level > 0).
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        assert!(
            self.trail_lim.is_empty(),
            "clauses must be added at decision level 0"
        );
        if self.unsat {
            return false;
        }
        let mut ls: Vec<Lit> = lits.to_vec();
        for l in &ls {
            assert!(
                l.var().index() < self.num_vars(),
                "literal {l} references unknown variable"
            );
        }
        ls.sort();
        ls.dedup();
        // Tautology or satisfied/falsified simplification at level 0.
        let mut simplified = Vec::with_capacity(ls.len());
        for (i, &l) in ls.iter().enumerate() {
            if i + 1 < ls.len() && ls[i + 1] == !l {
                return true; // tautology: l and !l adjacent after sort
            }
            match self.value_lit(l) {
                Some(true) => return true, // already satisfied at level 0
                Some(false) => {}          // drop falsified literal
                None => simplified.push(l),
            }
        }
        match simplified.len() {
            0 => {
                self.unsat = true;
                false
            }
            1 => {
                if !self.enqueue(simplified[0], None) {
                    self.unsat = true;
                    return false;
                }
                // Propagate eagerly so later clause additions simplify.
                if self.propagate().is_some() {
                    self.unsat = true;
                    return false;
                }
                true
            }
            _ => {
                self.attach_clause(simplified, false);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len();
        self.watches[lits[0].code()].push(cref);
        self.watches[lits[1].code()].push(cref);
        self.clauses.push(Clause {
            lits,
            learnt,
            activity: 0.0,
        });
        cref
    }

    fn current_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Assigns `l` true with optional reason. Returns `false` on conflict
    /// with an existing assignment.
    fn enqueue(&mut self, l: Lit, from: Option<ClauseRef>) -> bool {
        match self.value_lit(l) {
            Some(true) => true,
            Some(false) => false,
            None => {
                let v = l.var().index();
                self.assigns[v] = Some(l.is_positive());
                self.level[v] = self.current_level();
                self.reason[v] = from;
                self.trail.push(l);
                true
            }
        }
    }

    /// Two-watched-literal unit propagation. Returns a conflicting clause
    /// reference, or `None` if a fixed point was reached.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            // Clauses watching `false_lit` must find a new watch.
            let mut ws = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            'clauses: while i < ws.len() {
                let cref = ws[i];
                // Normalize: watched literals are lits[0] and lits[1].
                {
                    let c = &mut self.clauses[cref];
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                }
                let first = self.clauses[cref].lits[0];
                debug_assert_eq!(self.clauses[cref].lits[1], false_lit);
                if self.value_lit(first) == Some(true) {
                    // Clause satisfied; keep watching.
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.clauses[cref].lits.len();
                for k in 2..len {
                    let lk = self.clauses[cref].lits[k];
                    if self.value_lit(lk) != Some(false) {
                        self.clauses[cref].lits.swap(1, k);
                        self.watches[lk.code()].push(cref);
                        ws.swap_remove(i);
                        continue 'clauses;
                    }
                }
                // No new watch: clause is unit or conflicting.
                if !self.enqueue(first, Some(cref)) {
                    // Conflict: restore remaining watches and report.
                    self.watches[false_lit.code()].extend_from_slice(&ws);
                    self.qhead = self.trail.len();
                    return Some(cref);
                }
                i += 1;
            }
            self.watches[false_lit.code()] = ws;
        }
        None
    }

    fn var_bump(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    fn var_decay(&mut self) {
        self.var_inc /= 0.95;
    }

    fn clause_bump(&mut self, cref: ClauseRef) {
        let c = &mut self.clauses[cref];
        c.activity += self.clause_inc;
        if c.activity > 1e20 {
            for cl in &mut self.clauses {
                cl.activity *= 1e-20;
            }
            self.clause_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, confl: ClauseRef) -> (Vec<Lit>, u32) {
        self.stats.conflicts += 1;
        let mut learnt: Vec<Lit> = Vec::new();
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0usize; // literals of current level pending
        let mut p: Option<Lit> = None;
        let mut cref = confl;
        let mut index = self.trail.len();
        let conflict_level = self.current_level();

        loop {
            self.clause_bump(cref);
            let start = usize::from(p.is_some());
            for k in start..self.clauses[cref].lits.len() {
                let q = self.clauses[cref].lits[k];
                let v = q.var().index();
                if !seen[v] && self.level[v] > 0 {
                    seen[v] = true;
                    self.var_bump(v);
                    if self.level[v] == conflict_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find next literal of the current level on the trail.
            loop {
                index -= 1;
                let l = self.trail[index];
                if seen[l.var().index()] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.expect("found trail literal").var().index();
            counter -= 1;
            if counter == 0 {
                break;
            }
            cref = self.reason[pv].expect("non-UIP literal has a reason");
            seen[pv] = false;
        }
        let uip = !p.expect("first UIP exists");

        // Clause minimization: drop literals implied by the rest via their
        // reason clause (recursive-lite, one level of self-subsumption).
        let mut minimized: Vec<Lit> = Vec::with_capacity(learnt.len() + 1);
        minimized.push(uip);
        'lits: for &q in &learnt {
            let v = q.var().index();
            if let Some(r) = self.reason[v] {
                for &x in self.clauses[r].lits.iter().skip(1) {
                    let xv = x.var().index();
                    if !seen[xv] && self.level[xv] > 0 {
                        minimized.push(q);
                        continue 'lits;
                    }
                }
                // All antecedents already in the clause: q is redundant.
            } else {
                minimized.push(q);
            }
        }

        // Backjump level: highest level among non-UIP literals.
        let mut back = 0u32;
        let mut max_idx = 1usize;
        for (i, &q) in minimized.iter().enumerate().skip(1) {
            let lv = self.level[q.var().index()];
            if lv > back {
                back = lv;
                max_idx = i;
            }
        }
        if minimized.len() > 1 {
            minimized.swap(1, max_idx);
        }
        (minimized, back)
    }

    fn cancel_until(&mut self, target_level: u32) {
        while self.current_level() > target_level {
            let lim = self.trail_lim.pop().expect("level to cancel");
            while self.trail.len() > lim {
                let l = self.trail.pop().expect("trail literal");
                let v = l.var().index();
                self.polarity[v] = l.is_positive();
                self.assigns[v] = None;
                self.level[v] = UNASSIGNED_LEVEL;
                self.reason[v] = None;
            }
        }
        self.qhead = self.trail.len();
    }

    /// Picks the unassigned variable with the highest activity
    /// (deterministic tie-break on index), or `None` if all are assigned.
    fn pick_branch(&self) -> Option<Var> {
        let mut best: Option<(f64, usize)> = None;
        for v in 0..self.num_vars() {
            if self.assigns[v].is_none() {
                match best {
                    Some((a, _)) if self.activity[v] <= a => {}
                    _ => best = Some((self.activity[v], v)),
                }
            }
        }
        best.map(|(_, v)| Var::new(v))
    }

    /// Deletes the lower-activity half of learnt clauses (keeping reasons
    /// and binary clauses), rebuilding watch lists.
    fn reduce_db(&mut self) {
        let locked: std::collections::HashSet<ClauseRef> =
            self.reason.iter().filter_map(|r| *r).collect();
        let mut learnt_refs: Vec<ClauseRef> = (0..self.clauses.len())
            .filter(|&i| {
                self.clauses[i].learnt && !locked.contains(&i) && self.clauses[i].lits.len() > 2
            })
            .collect();
        learnt_refs.sort_by(|&a, &b| {
            self.clauses[a]
                .activity
                .partial_cmp(&self.clauses[b].activity)
                .expect("activities are finite")
        });
        let remove: std::collections::HashSet<ClauseRef> = learnt_refs[..learnt_refs.len() / 2]
            .iter()
            .copied()
            .collect();
        if remove.is_empty() {
            return;
        }
        // Rebuild the clause database with stable renumbering.
        let mut new_clauses = Vec::with_capacity(self.clauses.len() - remove.len());
        let mut remap = vec![usize::MAX; self.clauses.len()];
        for (i, c) in self.clauses.drain(..).enumerate() {
            if !remove.contains(&i) {
                remap[i] = new_clauses.len();
                new_clauses.push(c);
            }
        }
        self.clauses = new_clauses;
        for r in &mut self.reason {
            if let Some(old) = *r {
                *r = Some(remap[old]);
                debug_assert!(r.expect("remapped") != usize::MAX);
            }
        }
        for w in &mut self.watches {
            w.clear();
        }
        for (i, c) in self.clauses.iter().enumerate() {
            self.watches[c.lits[0].code()].push(i);
            self.watches[c.lits[1].code()].push(i);
        }
        self.stats.learnt_clauses = self.clauses.iter().filter(|c| c.learnt).count() as u64;
    }

    /// Solves the formula, running to completion.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_limited(u64::MAX)
            .expect("unlimited solve always terminates with an answer")
    }

    /// Solves under temporary *assumptions*: literals forced true for this
    /// call only (MiniSat-style incremental interface). Returns `Unsat` if
    /// the formula is unsatisfiable **under the assumptions** — the formula
    /// itself may still be satisfiable, and the solver remains usable.
    ///
    /// # Panics
    ///
    /// Panics if an assumption references an unknown variable.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        for a in assumptions {
            assert!(
                a.var().index() < self.num_vars(),
                "assumption {a} references unknown variable"
            );
        }
        let result = self.search(u64::MAX, assumptions);
        self.cancel_until(0);
        result.expect("unlimited search terminates")
    }

    /// Solves with a conflict budget; `None` means the budget ran out.
    pub fn solve_limited(&mut self, max_conflicts: u64) -> Option<SolveResult> {
        let result = self.search(max_conflicts, &[]);
        if result.is_none() {
            self.cancel_until(0);
        }
        result
    }

    fn search(&mut self, max_conflicts: u64, assumptions: &[Lit]) -> Option<SolveResult> {
        if self.unsat {
            return Some(SolveResult::Unsat);
        }
        if self.propagate().is_some() {
            self.unsat = true;
            return Some(SolveResult::Unsat);
        }
        let start_conflicts = self.stats.conflicts;
        let restart_unit = 128u64;
        let mut luby_index = 0u64;
        let mut conflicts_until_restart = luby(luby_index) * restart_unit;
        let mut learnt_budget = (self.num_clauses() as u64 / 3).max(2000);

        loop {
            if let Some(confl) = self.propagate() {
                if self.current_level() == 0 {
                    self.unsat = true;
                    return Some(SolveResult::Unsat);
                }
                let (learnt, back) = self.analyze(confl);
                self.cancel_until(back);
                if learnt.len() == 1 {
                    let ok = self.enqueue(learnt[0], None);
                    debug_assert!(ok, "asserting unit must enqueue");
                } else {
                    let cref = self.attach_clause(learnt.clone(), true);
                    self.clause_bump(cref);
                    self.stats.learnt_clauses += 1;
                    let ok = self.enqueue(learnt[0], Some(cref));
                    debug_assert!(ok, "asserting literal must enqueue");
                }
                self.var_decay();
                self.clause_inc /= 0.999;

                let total = self.stats.conflicts - start_conflicts;
                if total >= max_conflicts {
                    self.cancel_until(0);
                    return None;
                }
                conflicts_until_restart = conflicts_until_restart.saturating_sub(1);
                if self.stats.learnt_clauses > learnt_budget {
                    self.reduce_db();
                    learnt_budget += learnt_budget / 2;
                }
            } else {
                if conflicts_until_restart == 0 {
                    self.stats.restarts += 1;
                    luby_index += 1;
                    conflicts_until_restart = luby(luby_index) * restart_unit;
                    self.cancel_until(0);
                }
                // Re-establish any assumptions not yet on the trail, one
                // decision level each (MiniSat-style).
                let level = self.current_level() as usize;
                if level < assumptions.len() {
                    let a = assumptions[level];
                    match self.value_lit(a) {
                        Some(false) => {
                            // The formula (plus learnt clauses) forces the
                            // negation: unsatisfiable under assumptions.
                            self.cancel_until(0);
                            return Some(SolveResult::Unsat);
                        }
                        Some(true) => {
                            // Already implied: open a dummy level so the
                            // level-to-assumption indexing stays aligned.
                            self.trail_lim.push(self.trail.len());
                        }
                        None => {
                            self.trail_lim.push(self.trail.len());
                            let ok = self.enqueue(a, None);
                            debug_assert!(ok, "assumption was unassigned");
                        }
                    }
                    continue;
                }
                match self.pick_branch() {
                    None => {
                        let model: Vec<bool> = self
                            .assigns
                            .iter()
                            .map(|a| a.expect("complete assignment"))
                            .collect();
                        self.cancel_until(0);
                        return Some(SolveResult::Sat(model));
                    }
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let l = Lit::new(v, self.polarity[v.index()]);
                        let ok = self.enqueue(l, None);
                        debug_assert!(ok, "decision variable was unassigned");
                    }
                }
            }
        }
    }
}

/// The Luby restart sequence 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,... (0-indexed).
/// Port of the classic MiniSat implementation.
fn luby(mut x: u64) -> u64 {
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(solver_vars: &[Var], i: i64) -> Lit {
        let v = solver_vars[i.unsigned_abs() as usize - 1];
        Lit::new(v, i > 0)
    }

    #[test]
    fn luby_sequence_prefix() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(luby(i as u64), e, "luby({i})");
        }
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::new();
        let v = s.new_var();
        s.add_clause(&[v.positive()]);
        match s.solve() {
            SolveResult::Sat(m) => assert!(m[0]),
            SolveResult::Unsat => panic!("should be SAT"),
        }
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        let v = s.new_var();
        s.add_clause(&[v.positive()]);
        assert!(!s.add_clause(&[v.negative()]) || s.solve() == SolveResult::Unsat);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        s.new_vars(3);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        s.new_var();
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn tautology_dropped() {
        let mut s = Solver::new();
        let v = s.new_var();
        assert!(s.add_clause(&[v.positive(), v.negative()]));
        assert!(s.solve().is_sat());
    }

    #[test]
    fn unit_propagation_chain() {
        // x1 & (¬x1|x2) & (¬x2|x3) forces all true without decisions.
        let mut s = Solver::new();
        let vs = s.new_vars(3);
        s.add_clause(&[lit(&vs, 1)]);
        s.add_clause(&[lit(&vs, -1), lit(&vs, 2)]);
        s.add_clause(&[lit(&vs, -2), lit(&vs, 3)]);
        match s.solve() {
            SolveResult::Sat(m) => assert_eq!(m, vec![true, true, true]),
            SolveResult::Unsat => panic!("should be SAT"),
        }
        assert_eq!(s.stats().decisions, 0);
    }

    #[test]
    fn xor_chain_sat() {
        // (a|b) & (¬a|¬b): exactly one true — two models, both valid.
        let mut s = Solver::new();
        let vs = s.new_vars(2);
        s.add_clause(&[lit(&vs, 1), lit(&vs, 2)]);
        s.add_clause(&[lit(&vs, -1), lit(&vs, -2)]);
        match s.solve() {
            SolveResult::Sat(m) => assert_ne!(m[0], m[1]),
            SolveResult::Unsat => panic!("should be SAT"),
        }
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // PHP(3,2): 3 pigeons, 2 holes. Var p_{i,h} = pigeon i in hole h.
        let mut s = Solver::new();
        let vs = s.new_vars(6);
        let p = |i: usize, h: usize| vs[i * 2 + h];
        for i in 0..3 {
            s.add_clause(&[p(i, 0).positive(), p(i, 1).positive()]);
        }
        for h in 0..2 {
            for i in 0..3 {
                for j in (i + 1)..3 {
                    s.add_clause(&[p(i, h).negative(), p(j, h).negative()]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn pigeonhole_5_into_4_unsat() {
        let (n, m) = (5usize, 4usize);
        let mut s = Solver::new();
        let vs = s.new_vars(n * m);
        let p = |i: usize, h: usize| vs[i * m + h];
        for i in 0..n {
            let c: Vec<Lit> = (0..m).map(|h| p(i, h).positive()).collect();
            s.add_clause(&c);
        }
        for h in 0..m {
            for i in 0..n {
                for j in (i + 1)..n {
                    s.add_clause(&[p(i, h).negative(), p(j, h).negative()]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn model_satisfies_all_clauses_random_3sat() {
        // Deterministic pseudo-random under-constrained 3-SAT (ratio ~3).
        let n = 60usize;
        let m = 180usize;
        let mut s = Solver::new();
        let vs = s.new_vars(n);
        let mut state = 0x12345678u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut clauses = Vec::new();
        for _ in 0..m {
            let mut c = Vec::new();
            while c.len() < 3 {
                let v = next() % n;
                let pos = next() % 2 == 0;
                let l = Lit::new(vs[v], pos);
                if !c.contains(&l) && !c.contains(&!l) {
                    c.push(l);
                }
            }
            clauses.push(c.clone());
            s.add_clause(&c);
        }
        match s.solve() {
            SolveResult::Sat(model) => {
                for c in &clauses {
                    assert!(
                        c.iter().any(|l| l.eval(model[l.var().index()])),
                        "model violates clause {c:?}"
                    );
                }
            }
            SolveResult::Unsat => panic!("under-constrained 3-SAT should be SAT"),
        }
    }

    #[test]
    fn solve_limited_budget() {
        // PHP(7,6) takes many conflicts; a budget of 1 must give up.
        let (n, m) = (7usize, 6usize);
        let mut s = Solver::new();
        let vs = s.new_vars(n * m);
        let p = |i: usize, h: usize| vs[i * m + h];
        for i in 0..n {
            let c: Vec<Lit> = (0..m).map(|h| p(i, h).positive()).collect();
            s.add_clause(&c);
        }
        for h in 0..m {
            for i in 0..n {
                for j in (i + 1)..n {
                    s.add_clause(&[p(i, h).negative(), p(j, h).negative()]);
                }
            }
        }
        assert_eq!(s.solve_limited(1), None);
        // Finishing afterwards still yields the right answer.
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn incremental_unit_simplification() {
        let mut s = Solver::new();
        let vs = s.new_vars(3);
        s.add_clause(&[lit(&vs, 1)]);
        // This clause is satisfied at level 0 and should be dropped silently.
        assert!(s.add_clause(&[lit(&vs, 1), lit(&vs, 2)]));
        // This one simplifies to the unit x3.
        assert!(s.add_clause(&[lit(&vs, -1), lit(&vs, 3)]));
        match s.solve() {
            SolveResult::Sat(m) => {
                assert!(m[0]);
                assert!(m[2]);
            }
            SolveResult::Unsat => panic!("should be SAT"),
        }
    }

    #[test]
    fn assumptions_restrict_then_release() {
        // (a | b): satisfiable; under {-a, -b} unsatisfiable; solver stays
        // usable and still answers SAT afterwards.
        let mut s = Solver::new();
        let vs = s.new_vars(2);
        s.add_clause(&[lit(&vs, 1), lit(&vs, 2)]);
        let r = s.solve_with_assumptions(&[lit(&vs, -1), lit(&vs, -2)]);
        assert_eq!(r, SolveResult::Unsat);
        let r2 = s.solve_with_assumptions(&[lit(&vs, -1)]);
        match r2 {
            SolveResult::Sat(m) => assert!(m[1], "b must be true under -a"),
            SolveResult::Unsat => panic!("should be SAT under -a"),
        }
        assert!(s.solve().is_sat(), "formula itself stays satisfiable");
    }

    #[test]
    fn assumptions_drive_implications() {
        // (-a | c) & (-b | -c): under {a, b} unsat; under {a} c is forced.
        let mut s = Solver::new();
        let vs = s.new_vars(3);
        s.add_clause(&[lit(&vs, -1), lit(&vs, 3)]);
        s.add_clause(&[lit(&vs, -2), lit(&vs, -3)]);
        assert_eq!(
            s.solve_with_assumptions(&[lit(&vs, 1), lit(&vs, 2)]),
            SolveResult::Unsat
        );
        match s.solve_with_assumptions(&[lit(&vs, 1)]) {
            SolveResult::Sat(m) => {
                assert!(m[0]);
                assert!(m[2]);
                assert!(!m[1]);
            }
            SolveResult::Unsat => panic!("should be SAT under a"),
        }
    }

    #[test]
    fn assumptions_on_unsat_formula() {
        let mut s = Solver::new();
        let v = s.new_var();
        s.add_clause(&[v.positive()]);
        s.add_clause(&[v.negative()]);
        assert_eq!(
            s.solve_with_assumptions(&[v.positive()]),
            SolveResult::Unsat
        );
    }

    #[test]
    fn incremental_reuse_after_many_assumption_queries() {
        // PHP(4,3) with per-hole selectors: infeasible whenever fewer than
        // 4 holes enabled... here simply toggle assumptions repeatedly and
        // check consistency of repeated answers.
        let mut s = Solver::new();
        let vs = s.new_vars(4);
        s.add_clause(&[lit(&vs, 1), lit(&vs, 2)]);
        s.add_clause(&[lit(&vs, 3), lit(&vs, 4)]);
        for _ in 0..10 {
            assert!(s.solve_with_assumptions(&[lit(&vs, -1)]).is_sat());
            assert!(s
                .solve_with_assumptions(&[lit(&vs, -1), lit(&vs, -2)])
                .model()
                .is_none());
        }
    }

    #[test]
    fn stats_accumulate() {
        let mut s = Solver::new();
        let vs = s.new_vars(8);
        for i in 0..4 {
            s.add_clause(&[lit(&vs, i + 1), lit(&vs, i + 5)]);
        }
        let _ = s.solve();
        assert!(s.stats().decisions > 0);
        assert!(s.stats().propagations > 0);
    }
}
