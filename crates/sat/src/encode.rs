//! Graph K-coloring ⇄ CNF encoding and exact-coloring entry points.
//!
//! The direct encoding (paper background, ref \[17\] Lucas-style): one Boolean
//! `x_{v,k}` per (vertex, color) meaning "vertex v has color k", with
//!
//! 1. at-least-one-color clauses `(x_{v,0} ∨ … ∨ x_{v,K−1})`,
//! 2. at-most-one-color pairwise clauses `(¬x_{v,i} ∨ ¬x_{v,j})`,
//! 3. adjacency clauses `(¬x_{u,k} ∨ ¬x_{v,k})` per edge and color.

use crate::solver::{SolveResult, Solver};
use crate::types::{Lit, Var};
use msropm_graph::{Color, Coloring, Graph};

/// The variable layout of a K-coloring encoding.
#[derive(Debug, Clone)]
pub struct ColoringEncoding {
    num_nodes: usize,
    num_colors: usize,
}

impl ColoringEncoding {
    /// Variable for "vertex `v` has color `k`".
    pub fn var(&self, v: usize, k: usize) -> Var {
        debug_assert!(v < self.num_nodes && k < self.num_colors);
        Var::new(v * self.num_colors + k)
    }

    /// Number of Boolean variables (`n·K`).
    pub fn num_vars(&self) -> usize {
        self.num_nodes * self.num_colors
    }

    /// Decodes a model into a [`Coloring`]; uses the lowest true color per
    /// vertex (the at-most-one constraints make it unique for real models).
    ///
    /// # Panics
    ///
    /// Panics if some vertex has no true color variable in `model`.
    pub fn decode(&self, model: &[bool]) -> Coloring {
        let colors = (0..self.num_nodes)
            .map(|v| {
                let k = (0..self.num_colors)
                    .find(|&k| model[self.var(v, k).index()])
                    .expect("at-least-one clause guarantees a color");
                Color(k as u16)
            })
            .collect();
        Coloring::new(colors)
    }
}

/// Builds a solver loaded with the K-coloring constraints of `g`.
///
/// Returns the solver and the encoding (for decoding models).
///
/// # Panics
///
/// Panics if `num_colors == 0`.
pub fn encode_k_coloring(g: &Graph, num_colors: usize) -> (Solver, ColoringEncoding) {
    assert!(num_colors >= 1, "need at least one color");
    let enc = ColoringEncoding {
        num_nodes: g.num_nodes(),
        num_colors,
    };
    let mut solver = Solver::new();
    solver.new_vars(enc.num_vars());
    for v in 0..g.num_nodes() {
        // At least one color.
        let alo: Vec<_> = (0..num_colors).map(|k| enc.var(v, k).positive()).collect();
        solver.add_clause(&alo);
        // At most one color (pairwise).
        for i in 0..num_colors {
            for j in (i + 1)..num_colors {
                solver.add_clause(&[enc.var(v, i).negative(), enc.var(v, j).negative()]);
            }
        }
    }
    // Adjacent vertices differ.
    for (_, u, v) in g.edges() {
        for k in 0..num_colors {
            solver.add_clause(&[
                enc.var(u.index(), k).negative(),
                enc.var(v.index(), k).negative(),
            ]);
        }
    }
    (solver, enc)
}

/// Finds a proper K-coloring of `g` exactly, or `None` if none exists.
///
/// This is the paper's accuracy baseline: *"Exact solutions of the problems
/// are computed using a generic SAT solver"* (§4).
///
/// # Panics
///
/// Panics if `num_colors == 0`.
///
/// # Example
///
/// ```
/// use msropm_graph::generators::cycle_graph;
/// use msropm_sat::encode::solve_k_coloring;
///
/// // Odd cycles are not 2-colorable but are 3-colorable.
/// let c5 = cycle_graph(5);
/// assert!(solve_k_coloring(&c5, 2).is_none());
/// let coloring = solve_k_coloring(&c5, 3).expect("3-colorable");
/// assert!(coloring.is_proper(&c5));
/// ```
pub fn solve_k_coloring(g: &Graph, num_colors: usize) -> Option<Coloring> {
    let (mut solver, enc) = encode_k_coloring(g, num_colors);
    match solver.solve() {
        SolveResult::Sat(model) => Some(enc.decode(&model)),
        SolveResult::Unsat => None,
    }
}

/// Like [`encode_k_coloring`] but encodes the per-vertex at-most-one
/// constraints with the **sequential (Sinz) encoding**: `K−1` auxiliary
/// commander variables per vertex and `3K−4` binary clauses instead of the
/// pairwise `K(K−1)/2` — the standard trade for larger palettes.
///
/// # Panics
///
/// Panics if `num_colors == 0`.
pub fn encode_k_coloring_sequential(g: &Graph, num_colors: usize) -> (Solver, ColoringEncoding) {
    assert!(num_colors >= 1, "need at least one color");
    let enc = ColoringEncoding {
        num_nodes: g.num_nodes(),
        num_colors,
    };
    let mut solver = Solver::new();
    solver.new_vars(enc.num_vars());
    for v in 0..g.num_nodes() {
        let alo: Vec<_> = (0..num_colors).map(|k| enc.var(v, k).positive()).collect();
        solver.add_clause(&alo);
        if num_colors >= 2 {
            // Sequential AMO: s_k = "some color <= k chosen".
            let s: Vec<Var> = solver.new_vars(num_colors - 1);
            solver.add_clause(&[enc.var(v, 0).negative(), s[0].positive()]);
            for k in 1..num_colors - 1 {
                solver.add_clause(&[enc.var(v, k).negative(), s[k].positive()]);
                solver.add_clause(&[s[k - 1].negative(), s[k].positive()]);
                solver.add_clause(&[enc.var(v, k).negative(), s[k - 1].negative()]);
            }
            solver.add_clause(&[
                enc.var(v, num_colors - 1).negative(),
                s[num_colors - 2].negative(),
            ]);
        }
    }
    for (_, u, v) in g.edges() {
        for k in 0..num_colors {
            solver.add_clause(&[
                enc.var(u.index(), k).negative(),
                enc.var(v.index(), k).negative(),
            ]);
        }
    }
    (solver, enc)
}

/// Computes the chromatic number of `g` (smallest K admitting a proper
/// coloring) by iterating K upward from 1, together with a witness.
///
/// Suitable for the small/medium structured instances in this workspace.
/// Returns `(0, empty)` for an empty graph with no nodes.
pub fn solve_chromatic_number(g: &Graph) -> (usize, Coloring) {
    if g.num_nodes() == 0 {
        return (0, Coloring::default());
    }
    if g.num_edges() == 0 {
        return (1, Coloring::from_indices(vec![0; g.num_nodes()]));
    }
    for k in 2..=g.num_nodes() {
        if let Some(c) = solve_k_coloring(g, k) {
            return (k, c);
        }
    }
    unreachable!("n colors always suffice for n nodes")
}

/// Chromatic number via **one** incremental solver: the graph is encoded
/// once with an upper-bound palette (DSATUR's color count) plus per-color
/// *enable* selectors; each candidate K is then a
/// [`Solver::solve_with_assumptions`] call with the first K selectors
/// asserted true and the rest false, reusing all learnt clauses across
/// queries.
///
/// Returns `(0, empty)` for an empty graph with no nodes.
pub fn solve_chromatic_number_incremental(g: &Graph) -> (usize, Coloring) {
    if g.num_nodes() == 0 {
        return (0, Coloring::default());
    }
    if g.num_edges() == 0 {
        return (1, Coloring::from_indices(vec![0; g.num_nodes()]));
    }
    let upper = msropm_graph::coloring::dsatur(g).num_colors_used().max(2);
    let enc = ColoringEncoding {
        num_nodes: g.num_nodes(),
        num_colors: upper,
    };
    let mut solver = Solver::new();
    solver.new_vars(enc.num_vars());
    // Selector y_k: "color k is allowed".
    let selectors: Vec<Var> = solver.new_vars(upper);
    for v in 0..g.num_nodes() {
        let alo: Vec<Lit> = (0..upper).map(|k| enc.var(v, k).positive()).collect();
        solver.add_clause(&alo);
        for i in 0..upper {
            for j in (i + 1)..upper {
                solver.add_clause(&[enc.var(v, i).negative(), enc.var(v, j).negative()]);
            }
        }
        // Using color k requires its selector.
        for (k, y) in selectors.iter().enumerate() {
            solver.add_clause(&[enc.var(v, k).negative(), y.positive()]);
        }
    }
    for (_, u, v) in g.edges() {
        for k in 0..upper {
            solver.add_clause(&[
                enc.var(u.index(), k).negative(),
                enc.var(v.index(), k).negative(),
            ]);
        }
    }
    for k in 2..=upper {
        let assumptions: Vec<Lit> = selectors
            .iter()
            .enumerate()
            .map(|(i, y)| Lit::new(*y, i < k))
            .collect();
        if let SolveResult::Sat(model) = solver.solve_with_assumptions(&assumptions) {
            return (k, enc.decode(&model));
        }
    }
    unreachable!("the DSATUR upper bound is always feasible")
}

#[cfg(test)]
mod tests {
    use super::*;
    use msropm_graph::generators;

    #[test]
    fn kings_graph_exact_four_coloring() {
        let g = generators::kings_graph(7, 7);
        let c = solve_k_coloring(&g, 4).expect("King's graphs are 4-colorable");
        assert!(c.is_proper(&g));
        assert_eq!(c.accuracy(&g), 1.0);
        // 3 colors are not enough: every 2x2 block is a K4.
        assert!(solve_k_coloring(&g, 3).is_none());
    }

    #[test]
    fn complete_graph_chromatic() {
        let g = generators::complete_graph(5);
        assert!(solve_k_coloring(&g, 4).is_none());
        assert!(solve_k_coloring(&g, 5).is_some());
        let (chi, witness) = solve_chromatic_number(&g);
        assert_eq!(chi, 5);
        assert!(witness.is_proper(&g));
    }

    #[test]
    fn bipartite_two_colorable() {
        let g = generators::grid_graph(4, 5);
        let c = solve_k_coloring(&g, 2).expect("grids are bipartite");
        assert!(c.is_proper(&g));
        let (chi, _) = solve_chromatic_number(&g);
        assert_eq!(chi, 2);
    }

    #[test]
    fn triangular_lattice_three_chromatic() {
        let g = generators::triangular_lattice(4, 4);
        assert!(solve_k_coloring(&g, 2).is_none());
        let c = solve_k_coloring(&g, 3).expect("triangular lattices are 3-colorable");
        assert!(c.is_proper(&g));
    }

    #[test]
    fn single_color_only_for_edgeless() {
        let g = generators::complete_graph(1);
        assert!(solve_k_coloring(&g, 1).is_some());
        let p = generators::path_graph(2);
        assert!(solve_k_coloring(&p, 1).is_none());
    }

    #[test]
    fn chromatic_number_edge_cases() {
        let empty = Graph::empty(0);
        assert_eq!(solve_chromatic_number(&empty).0, 0);
        let isolated = Graph::empty(5);
        let (chi, c) = solve_chromatic_number(&isolated);
        assert_eq!(chi, 1);
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn planted_instances_roundtrip() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(31);
        let (g, _) = generators::planted_k_colorable(30, 3, 0.5, &mut rng);
        let c = solve_k_coloring(&g, 3).expect("planted 3-colorable");
        assert!(c.is_proper(&g));
    }

    #[test]
    fn encoding_size() {
        let g = generators::kings_graph(3, 3);
        let (solver, enc) = encode_k_coloring(&g, 4);
        assert_eq!(enc.num_vars(), 9 * 4);
        // 9 ALO + 9*6 AMO + 20 edges * 4 colors.
        assert_eq!(solver.num_clauses(), 9 + 54 + g.num_edges() * 4);
    }

    #[test]
    fn sequential_encoding_agrees_with_pairwise() {
        for (g, k) in [
            (generators::kings_graph(3, 3), 3usize), // UNSAT
            (generators::kings_graph(3, 3), 4),      // SAT
            (generators::cycle_graph(5), 2),         // UNSAT
            (generators::cycle_graph(5), 3),         // SAT
            (generators::complete_graph(5), 5),      // SAT
        ] {
            let (mut pairwise, _) = encode_k_coloring(&g, k);
            let (mut sequential, enc) = encode_k_coloring_sequential(&g, k);
            let a = pairwise.solve();
            let b = sequential.solve();
            assert_eq!(a.is_sat(), b.is_sat(), "{g} with {k} colors");
            if let crate::solver::SolveResult::Sat(model) = b {
                assert!(enc.decode(&model).is_proper(&g));
            }
        }
    }

    #[test]
    fn sequential_encoding_uses_fewer_amo_clauses_for_large_k() {
        let g = generators::path_graph(2);
        let k = 12;
        let (pairwise, _) = encode_k_coloring(&g, k);
        let (sequential, _) = encode_k_coloring_sequential(&g, k);
        // Pairwise: K(K-1)/2 = 66 AMO clauses/vertex; sequential: 3K-4 = 32.
        assert!(sequential.num_clauses() < pairwise.num_clauses());
    }

    #[test]
    fn incremental_chromatic_matches_iterative() {
        for g in [
            generators::kings_graph(4, 4),
            generators::cycle_graph(7),
            generators::complete_graph(5),
            generators::triangular_lattice(3, 4),
            generators::grid_graph(3, 4),
        ] {
            let (chi_a, wa) = solve_chromatic_number(&g);
            let (chi_b, wb) = solve_chromatic_number_incremental(&g);
            assert_eq!(chi_a, chi_b, "chromatic mismatch on {g}");
            assert!(wa.is_proper(&g));
            assert!(wb.is_proper(&g));
            assert!(wb.num_colors_used() <= chi_b);
        }
    }

    #[test]
    fn incremental_chromatic_edge_cases() {
        assert_eq!(solve_chromatic_number_incremental(&Graph::empty(0)).0, 0);
        assert_eq!(solve_chromatic_number_incremental(&Graph::empty(3)).0, 1);
    }

    use msropm_graph::Graph;
}
