//! Exact max-cut by branch and bound.
//!
//! Fig. 5(b) normalizes the machine's stage-1 cut sizes against the optimum.
//! For small instances this module computes that optimum exactly; for larger
//! ones the caller falls back to best-known heuristic values (see
//! `msropm-graph::cut` and the tabu baseline in `msropm-core`).

use msropm_graph::{Cut, Graph, NodeId};

/// Result of a branch-and-bound max-cut search.
#[derive(Debug, Clone)]
pub struct MaxCutResult {
    /// The best cut found.
    pub cut: Cut,
    /// Its value (number of crossing edges).
    pub value: usize,
    /// `true` if the search completed and `value` is provably optimal.
    pub optimal: bool,
    /// Number of search-tree nodes explored.
    pub nodes_explored: u64,
}

/// Exact max-cut via depth-first branch and bound with an edge-count bound.
///
/// Vertices are assigned in descending-degree order; at each node the bound
/// is `current cut + (edges with at least one unassigned endpoint)`. The
/// search stops early (returning the incumbent with `optimal = false`) once
/// `node_budget` tree nodes have been explored.
///
/// The initial incumbent comes from greedy 1-flip local search, which also
/// prunes aggressively on structured graphs.
///
/// # Panics
///
/// Panics if the graph has zero nodes.
pub fn branch_and_bound_max_cut(g: &Graph, node_budget: u64) -> MaxCutResult {
    assert!(g.num_nodes() > 0, "max-cut of the empty graph is undefined");
    let n = g.num_nodes();

    // Incumbent: deterministic greedy from the all-A cut.
    let mut incumbent = Cut::new(vec![false; n]);
    incumbent.local_search(g);
    let mut best_value = incumbent.cut_value(g);

    // Assignment order: descending degree (ties by index).
    let mut order: Vec<NodeId> = g.nodes().collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v.index()));

    // For the bound we track, per assignment depth, how many edges become
    // "decided" (both endpoints assigned). Precompute, for each position in
    // the order, the neighbors that appear earlier.
    let mut pos = vec![usize::MAX; n];
    for (i, &v) in order.iter().enumerate() {
        pos[v.index()] = i;
    }
    let earlier_neighbors: Vec<Vec<usize>> = order
        .iter()
        .map(|&v| {
            let my_pos = pos[v.index()];
            g.neighbors(v)
                .filter(|(w, _)| pos[w.index()] < my_pos)
                .map(|(w, _)| w.index())
                .collect()
        })
        .collect();

    let mut side = vec![false; n];
    let mut nodes_explored = 0u64;
    let mut truncated = false;

    // Iterative DFS with explicit stack of (depth, branch_taken).
    // state: at `depth`, we are about to try side=false then side=true.
    struct Frame {
        depth: usize,
        next_branch: u8, // 0 = try false, 1 = try true, 2 = done
        gained: usize,   // cut edges gained by current assignment at depth
    }
    let mut stack = vec![Frame {
        depth: 0,
        next_branch: 0,
        gained: 0,
    }];
    let mut cut_so_far = 0usize;
    // undecided_edges[d] = edges not yet decided before assigning order[d].
    // decided edges when assigning node at depth d = earlier_neighbors[d].len().
    let total_edges = g.num_edges();
    let mut decided_prefix = vec![0usize; n + 1];
    for d in 0..n {
        decided_prefix[d + 1] = decided_prefix[d] + earlier_neighbors[d].len();
    }

    while let Some(frame) = stack.last_mut() {
        let d = frame.depth;
        if frame.next_branch == 2 {
            // Backtrack: undo this frame's assignment contribution.
            cut_so_far -= frame.gained;
            stack.pop();
            continue;
        }
        let branch = frame.next_branch;
        frame.next_branch += 1;
        // Undo previous branch's gain at this depth (if any).
        cut_so_far -= frame.gained;
        frame.gained = 0;

        // Symmetry break: node at depth 0 is always side A.
        if d == 0 && branch == 1 {
            continue;
        }

        nodes_explored += 1;
        if nodes_explored > node_budget {
            truncated = true;
            break;
        }

        let v = order[d].index();
        side[v] = branch == 1;
        let mut gained = 0;
        for &w in &earlier_neighbors[d] {
            if side[w] != side[v] {
                gained += 1;
            }
        }
        cut_so_far += gained;
        // Record gain in the current frame so backtracking can undo it.
        stack.last_mut().expect("frame exists").gained = gained;

        // Bound: all not-yet-decided edges could still be cut.
        let undecided = total_edges - decided_prefix[d + 1];
        if cut_so_far + undecided <= best_value {
            // Prune: undo immediately (handled on next visit via gained).
            continue;
        }

        if d + 1 == n {
            if cut_so_far > best_value {
                best_value = cut_so_far;
                let mut assignment = vec![false; n];
                for (depth, &node) in order.iter().enumerate().take(n) {
                    let _ = depth;
                    assignment[node.index()] = side[node.index()];
                }
                incumbent = Cut::new(assignment);
            }
            continue;
        }
        stack.push(Frame {
            depth: d + 1,
            next_branch: 0,
            gained: 0,
        });
    }

    MaxCutResult {
        value: incumbent.cut_value(g),
        cut: incumbent,
        optimal: !truncated,
        nodes_explored,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msropm_graph::cut::exact_max_cut_bruteforce;
    use msropm_graph::generators;

    #[test]
    fn matches_bruteforce_on_small_graphs() {
        let graphs = vec![
            generators::cycle_graph(5),
            generators::cycle_graph(6),
            generators::complete_graph(6),
            generators::kings_graph(3, 3),
            generators::path_graph(7),
            generators::star_graph(8),
            generators::triangular_lattice(3, 3),
        ];
        for g in graphs {
            let (_, exact) = exact_max_cut_bruteforce(&g);
            let r = branch_and_bound_max_cut(&g, u64::MAX);
            assert!(r.optimal, "search must complete on {g}");
            assert_eq!(r.value, exact, "wrong optimum for {g}");
            assert_eq!(r.cut.cut_value(&g), r.value);
        }
    }

    #[test]
    fn bipartite_cut_is_all_edges() {
        let g = generators::complete_bipartite(4, 5);
        let r = branch_and_bound_max_cut(&g, u64::MAX);
        assert_eq!(r.value, 20);
        assert!(r.optimal);
    }

    #[test]
    fn kings_4x4_exact() {
        // 16 nodes: brute force would be 32768 assignments; B&B prunes.
        let g = generators::kings_graph(4, 4);
        let (_, exact) = exact_max_cut_bruteforce(&g);
        let r = branch_and_bound_max_cut(&g, u64::MAX);
        assert!(r.optimal);
        assert_eq!(r.value, exact);
    }

    #[test]
    fn stripe_cut_optimal_on_5x5_kings() {
        // Establishes the normalizer used at larger sizes: the row-stripe
        // cut achieves the true optimum on a 5x5 King's graph.
        let g = generators::kings_graph(5, 5);
        let r = branch_and_bound_max_cut(&g, u64::MAX);
        assert!(r.optimal);
        let stripe = msropm_graph::cut::kings_stripe_cut(5, 5).cut_value(&g);
        assert_eq!(r.value, stripe);
    }

    #[test]
    fn budget_truncation_keeps_feasible_incumbent() {
        let g = generators::kings_graph(5, 5);
        let r = branch_and_bound_max_cut(&g, 10);
        assert!(!r.optimal);
        // Still a valid cut with the local-search incumbent quality.
        let mut greedy = Cut::new(vec![false; g.num_nodes()]);
        greedy.local_search(&g);
        assert!(r.value >= greedy.cut_value(&g));
    }

    #[test]
    fn single_node_graph() {
        let g = Graph::empty(1);
        let r = branch_and_bound_max_cut(&g, u64::MAX);
        assert_eq!(r.value, 0);
        assert!(r.optimal);
    }

    use msropm_graph::Graph;
}
