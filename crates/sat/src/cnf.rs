//! CNF formula container and DIMACS CNF I/O.

use crate::solver::{SolveResult, Solver};
use crate::types::Lit;
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

/// A CNF formula: a clause list over variables `0..num_vars`.
///
/// Useful as an inspectable intermediate between encoders and the
/// [`Solver`], and for reading/writing DIMACS files.
///
/// # Example
///
/// ```
/// use msropm_sat::{Cnf, Lit};
///
/// let mut cnf = Cnf::new(2);
/// cnf.add_clause(vec![Lit::from_dimacs(1), Lit::from_dimacs(2)]);
/// cnf.add_clause(vec![Lit::from_dimacs(-1)]);
/// let result = cnf.solve();
/// let model = result.model().expect("satisfiable");
/// assert!(!model[0] && model[1]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cnf {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Creates a formula over `num_vars` variables with no clauses.
    pub fn new(num_vars: usize) -> Self {
        Cnf {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Adds a clause, growing the variable count if needed.
    pub fn add_clause(&mut self, clause: Vec<Lit>) {
        for l in &clause {
            self.num_vars = self.num_vars.max(l.var().index() + 1);
        }
        self.clauses.push(clause);
    }

    /// Iterator over the clauses.
    pub fn clauses(&self) -> impl ExactSizeIterator<Item = &[Lit]> + '_ {
        self.clauses.iter().map(|c| c.as_slice())
    }

    /// Evaluates the formula under a complete assignment.
    ///
    /// # Panics
    ///
    /// Panics if `model.len() < num_vars`.
    pub fn eval(&self, model: &[bool]) -> bool {
        assert!(model.len() >= self.num_vars, "model too short");
        self.clauses
            .iter()
            .all(|c| c.iter().any(|l| l.eval(model[l.var().index()])))
    }

    /// Loads the formula into a fresh [`Solver`] and solves it.
    pub fn solve(&self) -> SolveResult {
        let mut s = Solver::new();
        s.new_vars(self.num_vars);
        for c in &self.clauses {
            if !s.add_clause(c) {
                return SolveResult::Unsat;
            }
        }
        s.solve()
    }
}

/// Errors from parsing DIMACS CNF input.
#[derive(Debug)]
#[non_exhaustive]
pub enum ParseCnfError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based number.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Offending content.
        content: String,
    },
    /// Missing `p cnf` header.
    MissingHeader,
}

impl fmt::Display for ParseCnfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseCnfError::Io(e) => write!(f, "i/o error: {e}"),
            ParseCnfError::Malformed { line, content } => {
                write!(f, "malformed line {line}: {content:?}")
            }
            ParseCnfError::MissingHeader => write!(f, "missing 'p cnf' header"),
        }
    }
}

impl Error for ParseCnfError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseCnfError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ParseCnfError {
    fn from(e: std::io::Error) -> Self {
        ParseCnfError::Io(e)
    }
}

/// Reads a DIMACS CNF file (`c` comments, `p cnf V C` header, clauses as
/// 0-terminated literal lists, possibly spanning lines).
///
/// # Errors
///
/// Returns [`ParseCnfError`] on I/O failure, malformed tokens or a missing
/// header.
pub fn read_dimacs_cnf<R: BufRead>(reader: R) -> Result<Cnf, ParseCnfError> {
    let mut cnf: Option<Cnf> = None;
    let mut current: Vec<Lit> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('c') {
            continue;
        }
        if trimmed.starts_with('p') {
            let mut parts = trimmed.split_whitespace();
            let _p = parts.next();
            let kind = parts.next();
            let vars = parts.next().and_then(|s| s.parse::<usize>().ok());
            match (kind, vars) {
                (Some("cnf"), Some(v)) => cnf = Some(Cnf::new(v)),
                _ => {
                    return Err(ParseCnfError::Malformed {
                        line: lineno + 1,
                        content: trimmed.to_string(),
                    })
                }
            }
            continue;
        }
        let cnf_ref = cnf.as_mut().ok_or(ParseCnfError::MissingHeader)?;
        for tok in trimmed.split_whitespace() {
            let value: i64 = tok.parse().map_err(|_| ParseCnfError::Malformed {
                line: lineno + 1,
                content: trimmed.to_string(),
            })?;
            if value == 0 {
                cnf_ref.add_clause(std::mem::take(&mut current));
            } else {
                current.push(Lit::from_dimacs(value));
            }
        }
    }
    match cnf {
        Some(mut c) => {
            if !current.is_empty() {
                c.add_clause(current);
            }
            Ok(c)
        }
        None => Err(ParseCnfError::MissingHeader),
    }
}

/// Writes the formula in DIMACS CNF format.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_dimacs_cnf<W: Write>(cnf: &Cnf, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "p cnf {} {}", cnf.num_vars(), cnf.num_clauses())?;
    for clause in cnf.clauses() {
        for l in clause {
            write!(writer, "{} ", l.to_dimacs())?;
        }
        writeln!(writer, "0")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_eval() {
        let mut cnf = Cnf::new(0);
        cnf.add_clause(vec![Lit::from_dimacs(1), Lit::from_dimacs(-2)]);
        assert_eq!(cnf.num_vars(), 2);
        assert_eq!(cnf.num_clauses(), 1);
        assert!(cnf.eval(&[true, true]));
        assert!(cnf.eval(&[false, false]));
        assert!(!cnf.eval(&[false, true]));
    }

    #[test]
    fn solve_round_trip() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause(vec![Lit::from_dimacs(1), Lit::from_dimacs(2)]);
        cnf.add_clause(vec![Lit::from_dimacs(-1), Lit::from_dimacs(3)]);
        cnf.add_clause(vec![Lit::from_dimacs(-2)]);
        let r = cnf.solve();
        let model = r.model().expect("satisfiable");
        assert!(cnf.eval(model));
    }

    #[test]
    fn dimacs_roundtrip() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause(vec![Lit::from_dimacs(1), Lit::from_dimacs(-3)]);
        cnf.add_clause(vec![Lit::from_dimacs(2)]);
        let mut buf = Vec::new();
        write_dimacs_cnf(&cnf, &mut buf).unwrap();
        let back = read_dimacs_cnf(buf.as_slice()).unwrap();
        assert_eq!(back, cnf);
    }

    #[test]
    fn dimacs_multiline_clause() {
        let text = "c comment\np cnf 3 1\n1 2\n3 0\n";
        let cnf = read_dimacs_cnf(text.as_bytes()).unwrap();
        assert_eq!(cnf.num_clauses(), 1);
        assert_eq!(cnf.clauses().next().unwrap().len(), 3);
    }

    #[test]
    fn dimacs_missing_header() {
        assert!(matches!(
            read_dimacs_cnf("1 2 0\n".as_bytes()),
            Err(ParseCnfError::MissingHeader)
        ));
    }

    #[test]
    fn dimacs_malformed_token() {
        let err = read_dimacs_cnf("p cnf 2 1\n1 x 0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("malformed line 2"));
    }
}
