//! The ring-oscillator block of Fig. 4(a): an odd chain of inverters with an
//! enable gate.

use crate::inverter::Inverter;
use crate::tech::Technology;
use msropm_ode::fixed::{FixedStepper, Rk4};
use msropm_ode::system::OdeSystem;

/// A free-standing `N`-stage ring oscillator (odd `N`), usable on its own
/// for characterization; arrays use [`crate::netlist::CircuitArray`].
///
/// State vector: the `N` node voltages, `y[k]` = output of stage `k`
/// (stage `k` takes `y[(k+N−1) % N]` as input).
#[derive(Debug, Clone)]
pub struct RingOscillator {
    inverter: Inverter,
    num_stages: usize,
    enabled: bool,
}

impl RingOscillator {
    /// Builds a ring of `num_stages` unit inverters.
    ///
    /// # Panics
    ///
    /// Panics if `num_stages` is even or < 3 (even rings latch instead of
    /// oscillating).
    pub fn new(tech: Technology, num_stages: usize) -> Self {
        assert!(
            num_stages >= 3 && num_stages % 2 == 1,
            "ring oscillator needs an odd stage count >= 3"
        );
        RingOscillator {
            inverter: Inverter::new(tech),
            num_stages,
            enabled: true,
        }
    }

    /// The paper's configuration: 11 stages calibrated to 1.3 GHz.
    pub fn paper_default() -> Self {
        RingOscillator::new(Technology::calibrated(11, 1.3), 11)
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.num_stages
    }

    /// Technology in use.
    pub fn tech(&self) -> &Technology {
        self.inverter.tech()
    }

    /// Enables/disables the ring (the `G_EN`/`L_EN` gate): disabled rings
    /// stop driving and their nodes leak to ground.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Returns `true` if the ring is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// A deterministic "just powered on" state: stage 0 primed to VDD, the
    /// rest near ground with a tiny stage-dependent tilt to break symmetry.
    pub fn startup_state(&self) -> Vec<f64> {
        let vdd = self.tech().vdd;
        (0..self.num_stages)
            .map(|k| if k == 0 { vdd } else { 1e-3 * vdd * (k as f64) })
            .collect()
    }

    /// Measures the free-running period (ns) by integrating the transient
    /// and timing rising crossings of VDD/2 on node 0.
    ///
    /// Returns `None` if fewer than `cycles + 1` crossings occur within
    /// `max_time_ns` (e.g. the ring is disabled).
    ///
    /// # Panics
    ///
    /// Panics if `cycles == 0`.
    pub fn measure_period_ns(&self, max_time_ns: f64, cycles: usize) -> Option<f64> {
        assert!(cycles > 0, "need at least one cycle to measure");
        let mut y = self.startup_state();
        let dt = 1e-3; // 1 ps resolution
        let half = self.tech().vdd / 2.0;
        let mut crossings: Vec<f64> = Vec::new();
        let mut prev = y[0];
        let mut prev_t = 0.0;
        let mut stepper = Rk4::new();
        stepper.integrate_observed(self, &mut y, 0.0, max_time_ns, dt, |t, y| {
            let v = y[0];
            if prev < half && v >= half && t > 0.0 {
                // Linear interpolation of the crossing instant.
                let frac = (half - prev) / (v - prev);
                crossings.push(prev_t + frac * (t - prev_t));
            }
            prev = v;
            prev_t = t;
        });
        if crossings.len() < cycles + 1 {
            return None;
        }
        // Skip the first crossing (startup transient), average the rest.
        let last = crossings.len() - 1;
        let first = last - cycles;
        Some((crossings[last] - crossings[first]) / cycles as f64)
    }

    /// Measured free-running frequency in GHz (see
    /// [`RingOscillator::measure_period_ns`]).
    pub fn measure_frequency_ghz(&self, max_time_ns: f64, cycles: usize) -> Option<f64> {
        self.measure_period_ns(max_time_ns, cycles).map(|t| 1.0 / t)
    }
}

impl OdeSystem for RingOscillator {
    fn dim(&self) -> usize {
        self.num_stages
    }

    /// Node voltages in volts; time in **nanoseconds** (the workspace time
    /// unit), hence the 1e-9 scaling of `I/C`.
    fn eval(&self, _t: f64, y: &[f64], dydt: &mut [f64]) {
        let n = self.num_stages;
        let c = self.tech().c_node;
        let g_leak = self.tech().g_leak;
        for k in 0..n {
            let vin = y[(k + n - 1) % n];
            let i_total = if self.enabled {
                self.inverter.output_current(vin, y[k])
            } else {
                -g_leak * y[k]
            };
            dydt[k] = 1e-9 * i_total / c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ring_oscillates_at_about_1p3_ghz() {
        let ring = RingOscillator::paper_default();
        let f = ring
            .measure_frequency_ghz(20.0, 8)
            .expect("ring must oscillate");
        // The analytic calibration should land within 20% of target; the
        // residual is absorbed by measured-value reporting in EXPERIMENTS.md.
        assert!(
            (f - 1.3).abs() / 1.3 < 0.2,
            "measured frequency {f} GHz too far from 1.3 GHz"
        );
    }

    #[test]
    fn all_stages_swing_rail_to_rail() {
        let ring = RingOscillator::paper_default();
        let mut y = ring.startup_state();
        let mut min = vec![f64::INFINITY; ring.num_stages()];
        let mut max = vec![f64::NEG_INFINITY; ring.num_stages()];
        let mut stepper = Rk4::new();
        stepper.integrate_observed(&ring, &mut y, 0.0, 10.0, 1e-3, |t, y| {
            if t > 3.0 {
                for (k, &v) in y.iter().enumerate() {
                    min[k] = min[k].min(v);
                    max[k] = max[k].max(v);
                }
            }
        });
        for k in 0..ring.num_stages() {
            assert!(max[k] > 0.85, "stage {k} high level {}", max[k]);
            assert!(min[k] < 0.15, "stage {k} low level {}", min[k]);
        }
    }

    #[test]
    fn disabled_ring_decays_to_ground() {
        let mut ring = RingOscillator::paper_default();
        ring.set_enabled(false);
        assert!(!ring.is_enabled());
        let mut y = vec![1.0; ring.num_stages()];
        let mut stepper = Rk4::new();
        // Leak is 1 uS on ~29 fF: tau ~ 29 ns. Integrate 200 ns.
        stepper.integrate(&ring, &mut y, 0.0, 200.0, 1e-2);
        for (k, &v) in y.iter().enumerate() {
            assert!(v < 0.01, "stage {k} still at {v} V");
        }
        assert!(ring.measure_period_ns(5.0, 2).is_none());
    }

    #[test]
    fn frequency_scales_inversely_with_stage_count() {
        let t = Technology::calibrated(11, 1.3);
        let r11 = RingOscillator::new(t, 11);
        let r21 = RingOscillator::new(t, 21);
        let f11 = r11.measure_frequency_ghz(20.0, 5).unwrap();
        let f21 = r21.measure_frequency_ghz(40.0, 5).unwrap();
        let ratio = f11 / f21;
        assert!(
            (ratio - 21.0 / 11.0).abs() < 0.25,
            "f ratio {ratio} should be ~{}",
            21.0 / 11.0
        );
    }

    #[test]
    #[should_panic(expected = "odd stage count")]
    fn even_ring_rejected() {
        RingOscillator::new(Technology::default(), 4);
    }
}
