//! Behavioural circuit-level simulator for the MSROPM reproduction — the
//! substitute for the paper's 65 nm GP CMOS + SPICE environment.
//!
//! # What is modelled
//!
//! The paper's Fig. 4 hardware, at the level that matters for phase-domain
//! computation:
//!
//! - [`tech`]: technology parameters (1 V supply, node capacitances, drive
//!   conductances with the paper's 4:1 PMOS:NMOS skew that enables
//!   2nd-order SHIL susceptibility) and frequency calibration.
//! - [`inverter`]: a smooth conductance-divider CMOS inverter model
//!   (`dV/dt = [g_p(V_in)(VDD−V) − g_n(V_in)V]/C`), the cell from which
//!   rings, couplings and injectors are built.
//! - [`rosc`]: the 11-stage ring oscillator block with its enable gate,
//!   calibrated to the paper's 1.3 GHz.
//! - [`b2b`]: gated back-to-back-inverter coupling branches (negative /
//!   phase-repulsive coupling).
//! - [`injection`]: the PMOS SHIL injector driven by a 2f (or 3f) square
//!   wave with programmable phase shift, plus the SHIL_SEL multiplexer.
//! - [`netlist`]: the full oscillator-array circuit as one ODE system,
//!   with `G_EN`/`L_EN`/`P_EN`/`SHIL_EN`/`SHIL_SEL` controls.
//! - [`readout`]: the DFF + 4-reference phase sampler of Fig. 4(c) and
//!   zero-crossing phase measurement.
//! - [`power`]: an activity-based CV²f power model calibrated against
//!   Table 1, plus a transient supply-current integrator for small arrays.
//!
//! # Why this fidelity level
//!
//! The computation the paper reports lives in the *phases* of coupled
//! oscillators. A smooth stage-level nonlinear ODE reproduces oscillation,
//! injection locking, SHIL phase discretization and coupling-induced
//! anti-phase ordering — the behaviours every claim rests on — while
//! remaining integrable for thousands of nodes with the in-workspace RK4.
//! Absolute delays/powers are calibrated, not predicted, and the workspace
//! records paper-vs-measured values in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod b2b;
pub mod injection;
pub mod inverter;
pub mod netlist;
pub mod power;
pub mod readout;
pub mod rosc;
pub mod tech;

pub use injection::{ShilSignal, ShilWave};
pub use inverter::Inverter;
pub use netlist::{CircuitArray, CircuitArrayBuilder};
pub use power::{PowerBreakdown, PowerModel};
pub use readout::{measure_phase, DffPhaseSampler, ReferenceBank};
pub use rosc::RingOscillator;
pub use tech::Technology;
