//! The full oscillator-array circuit as a single ODE system.
//!
//! One [`crate::rosc::RingOscillator`]-style inverter ring per graph
//! vertex, one gated
//! [`B2bCoupling`] per graph edge (between the stage-0 nodes of the two
//! rings), and one [`ShilSignal`] injector per ring on its stage-0 node.
//! Control signals mirror the paper's §3.3: `G_EN` (global), per-ring
//! `L_EN`, per-coupling `P_EN`, global `SHIL_EN`, per-ring `SHIL_SEL`.

use crate::b2b::B2bCoupling;
use crate::injection::ShilSignal;
use crate::inverter::Inverter;
use crate::tech::Technology;
use msropm_graph::Graph;
use msropm_ode::fixed::{FixedStepper, Rk4};
use msropm_ode::system::OdeSystem;
use rand::Rng;

/// Builder for [`CircuitArray`].
#[derive(Debug, Clone)]
pub struct CircuitArrayBuilder {
    tech: Technology,
    num_stages: usize,
    coupling_strength: f64,
    shil_g_inject: f64,
    f0_ghz: f64,
    edges: Vec<(u32, u32)>,
    num_oscillators: usize,
}

impl CircuitArrayBuilder {
    fn from_graph(g: &Graph) -> Self {
        CircuitArrayBuilder {
            tech: Technology::calibrated(11, 1.3),
            num_stages: 11,
            coupling_strength: 0.15,
            shil_g_inject: 2e-4,
            f0_ghz: 1.3,
            edges: g
                .edges()
                .map(|(_, u, v)| (u.index() as u32, v.index() as u32))
                .collect(),
            num_oscillators: g.num_nodes(),
        }
    }

    /// Overrides the technology (default: 11-stage calibration at 1.3 GHz).
    pub fn technology(mut self, tech: Technology) -> Self {
        self.tech = tech;
        self
    }

    /// Sets the ring stage count (odd, ≥ 3; default 11).
    ///
    /// # Panics
    ///
    /// Panics if `num_stages` is even or < 3.
    pub fn num_stages(mut self, num_stages: usize) -> Self {
        assert!(
            num_stages >= 3 && num_stages % 2 == 1,
            "ring needs an odd stage count >= 3"
        );
        self.num_stages = num_stages;
        self
    }

    /// Sets the B2B coupling strength as a fraction of a unit inverter.
    ///
    /// # Panics
    ///
    /// Panics if `strength <= 0`.
    pub fn coupling_strength(mut self, strength: f64) -> Self {
        assert!(strength > 0.0, "coupling strength must be positive");
        self.coupling_strength = strength;
        self
    }

    /// Sets the SHIL PMOS injection conductance (siemens).
    ///
    /// # Panics
    ///
    /// Panics if `g < 0`.
    pub fn shil_injection(mut self, g: f64) -> Self {
        assert!(g >= 0.0, "injection conductance must be non-negative");
        self.shil_g_inject = g;
        self
    }

    /// Sets the nominal oscillator frequency used to generate SHIL clocks.
    ///
    /// # Panics
    ///
    /// Panics if `f0_ghz <= 0`.
    pub fn f0_ghz(mut self, f0_ghz: f64) -> Self {
        assert!(f0_ghz > 0.0, "frequency must be positive");
        self.f0_ghz = f0_ghz;
        self
    }

    /// Builds the circuit.
    pub fn build(self) -> CircuitArray {
        let coupling = B2bCoupling::new(self.tech, self.coupling_strength);
        let shil = ShilSignal::paper_pair(self.tech, self.f0_ghz, self.shil_g_inject);
        CircuitArray {
            tech: self.tech,
            inverter: Inverter::new(self.tech),
            num_oscillators: self.num_oscillators,
            num_stages: self.num_stages,
            edges: self.edges.clone(),
            coupling,
            edge_enabled: vec![true; self.edges.len()],
            osc_enabled: vec![true; self.num_oscillators],
            global_enable: true,
            shil,
            shil_enable: false,
            shil_select: vec![0; self.num_oscillators],
            f0_ghz: self.f0_ghz,
            mismatch: vec![1.0; self.num_oscillators],
        }
    }
}

/// The complete coupled-ROSC array at circuit level.
#[derive(Debug, Clone)]
pub struct CircuitArray {
    tech: Technology,
    inverter: Inverter,
    num_oscillators: usize,
    num_stages: usize,
    edges: Vec<(u32, u32)>,
    coupling: B2bCoupling,
    edge_enabled: Vec<bool>,
    osc_enabled: Vec<bool>,
    global_enable: bool,
    shil: ShilSignal,
    shil_enable: bool,
    shil_select: Vec<usize>,
    f0_ghz: f64,
    /// Per-ring drive-strength multiplier (process mismatch); 1.0 nominal.
    mismatch: Vec<f64>,
}

impl CircuitArray {
    /// Starts building an array over the coupling topology of `g`.
    pub fn builder(g: &Graph) -> CircuitArrayBuilder {
        CircuitArrayBuilder::from_graph(g)
    }

    /// Number of rings.
    pub fn num_oscillators(&self) -> usize {
        self.num_oscillators
    }

    /// Stages per ring.
    pub fn num_stages(&self) -> usize {
        self.num_stages
    }

    /// Nominal oscillator frequency (GHz).
    pub fn f0_ghz(&self) -> f64 {
        self.f0_ghz
    }

    /// Technology in use.
    pub fn tech(&self) -> &Technology {
        &self.tech
    }

    /// State index of stage `stage` of oscillator `osc`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if indices are out of range.
    pub fn node_index(&self, osc: usize, stage: usize) -> usize {
        debug_assert!(osc < self.num_oscillators && stage < self.num_stages);
        osc * self.num_stages + stage
    }

    /// The output node (stage 0) of oscillator `osc` — where couplings,
    /// SHIL and the readout attach (Fig. 4(a) `Vout<1>`).
    pub fn output_node(&self, osc: usize) -> usize {
        self.node_index(osc, 0)
    }

    /// Global enable for every ring and coupling (`G_EN`).
    pub fn set_global_enable(&mut self, on: bool) {
        self.global_enable = on;
    }

    /// Per-ring enable (`L_EN`).
    ///
    /// # Panics
    ///
    /// Panics if `osc` is out of range.
    pub fn set_oscillator_enabled(&mut self, osc: usize, on: bool) {
        self.osc_enabled[osc] = on;
    }

    /// Per-coupling enable (`P_EN`/`L_EN`).
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    pub fn set_edge_enabled(&mut self, edge: usize, on: bool) {
        self.edge_enabled[edge] = on;
    }

    /// Enables/disables all couplings at once.
    pub fn set_all_edges_enabled(&mut self, on: bool) {
        for e in &mut self.edge_enabled {
            *e = on;
        }
    }

    /// Global SHIL injection gate (`SHIL_EN`).
    pub fn set_shil_enabled(&mut self, on: bool) {
        self.shil_enable = on;
    }

    /// Selects which SHIL clock drives oscillator `osc` (`SHIL_SEL`).
    ///
    /// # Panics
    ///
    /// Panics if `osc` or `select` is out of range.
    pub fn set_shil_select(&mut self, osc: usize, select: usize) {
        assert!(select < self.shil.num_waves(), "SHIL select out of range");
        self.shil_select[osc] = select;
    }

    /// Applies Gaussian process mismatch: each ring's drive strength is
    /// multiplied by `1 + sigma·N(0,1)` (clamped to ≥ 0.5), spreading the
    /// free-running frequencies exactly like die-to-die variation — the
    /// physical origin of the paper's `Δω` randomization.
    ///
    /// # Panics
    ///
    /// Panics if `sigma < 0`.
    pub fn apply_mismatch<R: Rng + ?Sized>(&mut self, sigma: f64, rng: &mut R) {
        assert!(sigma >= 0.0, "mismatch sigma must be non-negative");
        for m in &mut self.mismatch {
            *m = (1.0 + sigma * msropm_ode::sde::standard_normal(rng)).max(0.5);
        }
    }

    /// The drive-strength multiplier of ring `osc`.
    ///
    /// # Panics
    ///
    /// Panics if `osc` is out of range.
    pub fn mismatch_of(&self, osc: usize) -> f64 {
        self.mismatch[osc]
    }

    /// Sets one ring's drive-strength multiplier explicitly (corner-case
    /// characterization; [`CircuitArray::apply_mismatch`] for Monte Carlo).
    ///
    /// # Panics
    ///
    /// Panics if `osc` is out of range or `multiplier <= 0`.
    pub fn set_mismatch(&mut self, osc: usize, multiplier: f64) {
        assert!(multiplier > 0.0, "mismatch multiplier must be positive");
        self.mismatch[osc] = multiplier;
    }

    /// Total state dimension (`rings × stages`).
    pub fn state_dim(&self) -> usize {
        self.num_oscillators * self.num_stages
    }

    /// A random power-on state: every node uniform in `[0, VDD]`.
    pub fn random_state<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        (0..self.state_dim())
            .map(|_| rng.gen::<f64>() * self.tech.vdd)
            .collect()
    }

    /// Integrates the transient from absolute time `t0` for `duration` ns
    /// with RK4 steps of `dt` ns.
    ///
    /// `t0` matters because the SHIL clocks are absolute-time waveforms;
    /// callers stepping a schedule must thread the running time through.
    pub fn run(&self, state: &mut [f64], t0: f64, duration: f64, dt: f64) {
        Rk4::new().integrate(self, state, t0, t0 + duration, dt);
    }

    /// Integrates while invoking `observe(t, state)` after every step.
    pub fn run_observed(
        &self,
        state: &mut [f64],
        t0: f64,
        duration: f64,
        dt: f64,
        observe: impl FnMut(f64, &[f64]),
    ) {
        Rk4::new().integrate_observed(self, state, t0, t0 + duration, dt, observe);
    }

    /// Total instantaneous supply current (amperes) — drive + coupling +
    /// injection paths — for transient power measurement.
    pub fn supply_current(&self, t_ns: f64, state: &[f64]) -> f64 {
        let mut i_total = 0.0;
        for osc in 0..self.num_oscillators {
            if !(self.global_enable && self.osc_enabled[osc]) {
                continue;
            }
            for stage in 0..self.num_stages {
                let vin =
                    state[self.node_index(osc, (stage + self.num_stages - 1) % self.num_stages)];
                let vout = state[self.node_index(osc, stage)];
                i_total += self.inverter.supply_current(vin, vout);
            }
            if self.shil_enable {
                let v = state[self.output_node(osc)];
                i_total += self.shil.current(self.shil_select[osc], t_ns, v).max(0.0);
            }
        }
        if self.global_enable {
            for (e, &(u, v)) in self.edges.iter().enumerate() {
                if self.edge_enabled[e] {
                    let va = state[self.output_node(u as usize)];
                    let vb = state[self.output_node(v as usize)];
                    i_total += self.coupling.supply_current(va, vb);
                }
            }
        }
        i_total
    }
}

impl OdeSystem for CircuitArray {
    fn dim(&self) -> usize {
        self.state_dim()
    }

    /// Voltages in volts, time in nanoseconds (hence the 1e-9 I/C scaling).
    fn eval(&self, t: f64, y: &[f64], dydt: &mut [f64]) {
        let c = self.tech.c_node;
        let scale = 1e-9 / c;
        // Ring drives.
        for osc in 0..self.num_oscillators {
            let base = osc * self.num_stages;
            let on = self.global_enable && self.osc_enabled[osc];
            let strength = self.mismatch[osc];
            for stage in 0..self.num_stages {
                let node = base + stage;
                let i = if on {
                    let vin = y[base + (stage + self.num_stages - 1) % self.num_stages];
                    strength * self.inverter.output_current(vin, y[node])
                } else {
                    -self.tech.g_leak * y[node]
                };
                dydt[node] = scale * i;
            }
        }
        // Couplings between output nodes.
        if self.global_enable {
            for (e, &(u, v)) in self.edges.iter().enumerate() {
                if !self.edge_enabled[e] {
                    continue;
                }
                let (u, v) = (u as usize, v as usize);
                if !(self.osc_enabled[u] && self.osc_enabled[v]) {
                    continue;
                }
                let na = self.output_node(u);
                let nb = self.output_node(v);
                let (ia, ib) = self.coupling.currents(y[na], y[nb]);
                dydt[na] += scale * ia;
                dydt[nb] += scale * ib;
            }
        }
        // SHIL injection on output nodes.
        if self.shil_enable {
            for osc in 0..self.num_oscillators {
                if self.global_enable && self.osc_enabled[osc] {
                    let node = self.output_node(osc);
                    dydt[node] += scale * self.shil.current(self.shil_select[osc], t, y[node]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msropm_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::PI;

    fn phase_diff(a: f64, b: f64) -> f64 {
        let d = (a - b).rem_euclid(std::f64::consts::TAU);
        d.min(std::f64::consts::TAU - d)
    }

    #[test]
    fn two_coupled_rings_lock_antiphase() {
        let g = generators::path_graph(2);
        let array = CircuitArray::builder(&g).coupling_strength(0.2).build();
        let mut rng = StdRng::seed_from_u64(3);
        let mut state = array.random_state(&mut rng);
        // Let them lock.
        array.run(&mut state, 0.0, 40.0, 1e-3);
        // Measure the relative phase over a multi-period window.
        let d = crate::readout::measure_relative_phase(&array, &state, 0, 1, 40.0, 8.0, 1e-3)
            .expect("both rings oscillate");
        let d = d.min(std::f64::consts::TAU - d);
        assert!(
            (d - PI).abs() < 0.3,
            "coupled rings should be near antiphase, got {d} rad"
        );
    }

    #[test]
    fn disabled_edge_leaves_rings_independent() {
        let g = generators::path_graph(2);
        let mut array = CircuitArray::builder(&g).build();
        array.set_edge_enabled(0, false);
        let mut rng = StdRng::seed_from_u64(11);
        let mut state = array.random_state(&mut rng);
        let before: Vec<f64> = state.clone();
        // With no coupling and same initial state, each ring evolves as an
        // isolated ring: verify by comparing against manually isolated runs.
        array.run(&mut state, 0.0, 5.0, 1e-3);
        let mut iso_state = before.clone();
        let g1 = generators::path_graph(2);
        let mut iso = CircuitArray::builder(&g1).build();
        iso.set_all_edges_enabled(false);
        iso.run(&mut iso_state, 0.0, 5.0, 1e-3);
        for (a, b) in state.iter().zip(&iso_state) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn global_disable_freezes_to_leak_decay() {
        let g = generators::path_graph(2);
        let mut array = CircuitArray::builder(&g).build();
        array.set_global_enable(false);
        let mut state = vec![0.8; array.state_dim()];
        array.run(&mut state, 0.0, 50.0, 1e-2);
        for &v in &state {
            assert!(v < 0.8, "leak must discharge nodes");
        }
    }

    #[test]
    fn shil_locks_isolated_rings_half_period_apart() {
        // SHIL binarization, tested as a *grid* property: independent rings
        // started from different random states must lock either in phase or
        // exactly half an oscillation period apart (the two SHIL positions),
        // regardless of the absolute offset between the lock grid and the
        // clock (which depends on injection dynamics).
        let g = generators::path_graph(1);
        let mut array = CircuitArray::builder(&g).shil_injection(6e-4).build();
        array.set_shil_enabled(true);
        let mut phases = Vec::new();
        for seed in 0..6u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut state = array.random_state(&mut rng);
            array.run(&mut state, 0.0, 120.0, 1e-3);
            let p = crate::readout::measure_phase_at(&array, &state, 0, 120.0, 8.0, 1e-3)
                .expect("oscillates");
            phases.push(p);
        }
        for (i, &a) in phases.iter().enumerate() {
            for &b in phases.iter().skip(i + 1) {
                let d = phase_diff(a, b);
                let near_zero = d < 0.5;
                let near_pi = (d - PI).abs() < 0.5;
                assert!(
                    near_zero || near_pi,
                    "phases {a} and {b} are not on a half-period grid (d={d})"
                );
            }
        }
    }

    #[test]
    fn state_indexing() {
        let g = generators::path_graph(3);
        let array = CircuitArray::builder(&g).num_stages(5).build();
        assert_eq!(array.state_dim(), 15);
        assert_eq!(array.node_index(2, 3), 13);
        assert_eq!(array.output_node(1), 5);
        assert_eq!(array.num_oscillators(), 3);
        assert_eq!(array.num_stages(), 5);
    }

    #[test]
    fn supply_current_positive_while_running() {
        let g = generators::path_graph(2);
        let array = CircuitArray::builder(&g).build();
        let mut rng = StdRng::seed_from_u64(1);
        let mut state = array.random_state(&mut rng);
        array.run(&mut state, 0.0, 2.0, 1e-3);
        assert!(array.supply_current(2.0, &state) > 0.0);
    }

    #[test]
    #[should_panic(expected = "SHIL select out of range")]
    fn bad_shil_select() {
        let g = generators::path_graph(1);
        let mut array = CircuitArray::builder(&g).build();
        array.set_shil_select(0, 9);
    }

    /// Measures the average interval between rising VDD/2 crossings of one
    /// ring's output over a window starting at absolute time `t0`.
    fn measure_crossing_interval(array: &CircuitArray, state: &[f64], t0: f64) -> Option<f64> {
        let node = array.output_node(0);
        let half = array.tech().vdd / 2.0;
        let mut y = state.to_vec();
        let mut crossings: Vec<f64> = Vec::new();
        let mut prev_v = y[node];
        let mut prev_t = t0;
        array.run_observed(&mut y, t0, 8.0, 1e-3, |t, y| {
            let v = y[node];
            if prev_v < half && v >= half && t > t0 {
                crossings.push(prev_t + (half - prev_v) / (v - prev_v) * (t - prev_t));
            }
            prev_v = v;
            prev_t = t;
        });
        if crossings.len() < 3 {
            return None;
        }
        Some((crossings[crossings.len() - 1] - crossings[0]) / (crossings.len() - 1) as f64)
    }

    #[test]
    fn mismatch_spreads_free_running_frequencies() {
        // A ring with 10% stronger devices runs ~10% faster: the crossing
        // interval shrinks proportionally.
        let g = generators::path_graph(1);
        let mut array = CircuitArray::builder(&g).build();
        array.set_all_edges_enabled(false);
        let mut rng = StdRng::seed_from_u64(42);
        let mut state = array.random_state(&mut rng);
        array.run(&mut state, 0.0, 10.0, 1e-3);
        let t_nominal = measure_crossing_interval(&array, &state, 10.0).expect("oscillates");

        array.set_mismatch(0, 1.1);
        let mut fast_state = state.clone();
        array.run(&mut fast_state, 10.0, 10.0, 1e-3);
        let t_fast = measure_crossing_interval(&array, &fast_state, 20.0).expect("oscillates");
        let ratio = t_nominal / t_fast;
        assert!(
            (ratio - 1.1).abs() < 0.03,
            "frequency should scale with drive strength: ratio {ratio:.3}"
        );

        // Monte-Carlo API produces per-ring diversity.
        let g2 = generators::path_graph(4);
        let mut mc = CircuitArray::builder(&g2).build();
        mc.apply_mismatch(0.05, &mut rng);
        let values: Vec<f64> = (0..4).map(|i| mc.mismatch_of(i)).collect();
        let distinct = values
            .iter()
            .zip(values.iter().skip(1))
            .filter(|(a, b)| a != b)
            .count();
        assert!(distinct >= 2, "mismatch draws should differ: {values:?}");
    }

    /// Fraction of time the output node spends above VDD/2.
    fn measure_duty(array: &CircuitArray, state: &[f64], t0: f64) -> f64 {
        let node = array.output_node(0);
        let half = array.tech().vdd / 2.0;
        let mut probe = state.to_vec();
        let (mut high, mut total) = (0usize, 0usize);
        array.run_observed(&mut probe, t0, 8.0, 1e-3, |_, y| {
            total += 1;
            if y[node] > half {
                high += 1;
            }
        });
        high as f64 / total as f64
    }

    #[test]
    fn excessive_shil_injection_deforms_waveform_duty() {
        // Paper sec. 2.3: overly strong SHIL "deforms the waveforms
        // preventing phase readability". The PMOS injector holds the node
        // high through its conduction windows, stretching the high half of
        // the cycle: the duty cycle departs from the healthy ~50% and the
        // edge positions the DFF readout relies on shift with it.
        let g = generators::path_graph(1);
        let run_duty = |g_inject: f64| {
            let mut array = CircuitArray::builder(&g).shil_injection(g_inject).build();
            array.set_shil_enabled(true);
            let mut rng = StdRng::seed_from_u64(8);
            let mut state = array.random_state(&mut rng);
            array.run(&mut state, 0.0, 30.0, 1e-3);
            measure_duty(&array, &state, 30.0)
        };
        let healthy = run_duty(6e-4);
        let deformed = run_duty(3e-2);
        assert!(
            (healthy - 0.5).abs() < 0.08,
            "working-strength SHIL keeps a ~50% duty, got {healthy:.3}"
        );
        assert!(
            deformed > 0.62,
            "strong SHIL should stretch the high half, got duty {deformed:.3}"
        );
    }
}
