//! Power estimation: activity-based CV²f model + transient measurement.
//!
//! Table 1 of the paper reports average power of 9.4/60.3/146.1/283.4 mW
//! for the 49/400/1024/2116-node problems, "scaling linearly with
//! increasing problem sizes". Two models are provided:
//!
//! - [`PowerModel::from_technology`]: a physics-based estimate
//!   (`P_ring = N_stages·C·VDD²·f` per ring plus coupling and control
//!   terms) — predicts the scaling *shape* from first principles;
//! - [`PowerModel::calibrated_to_paper`]: the same three-term affine model
//!   with coefficients least-squares fitted to the paper's four Table-1
//!   points — used when regenerating Table 1, with the fit residuals
//!   reported in EXPERIMENTS.md.

use crate::netlist::CircuitArray;
use crate::tech::Technology;

/// Decomposed power estimate, all in milliwatts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerBreakdown {
    /// Ring-oscillator dynamic power.
    pub oscillators_mw: f64,
    /// B2B coupling power.
    pub couplings_mw: f64,
    /// Control, clocking and readout overhead.
    pub control_mw: f64,
}

impl PowerBreakdown {
    /// Total power in milliwatts.
    pub fn total_mw(&self) -> f64 {
        self.oscillators_mw + self.couplings_mw + self.control_mw
    }
}

/// The affine activity model `P(N, E) = fixed + per_node·N + per_edge·E`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Fixed overhead (clock generation, bias, readout), mW.
    pub fixed_mw: f64,
    /// Per-oscillator power, mW.
    pub per_node_mw: f64,
    /// Per-coupling power, mW.
    pub per_edge_mw: f64,
}

/// The paper's Table-1 data points: (nodes, edges, average power mW) for
/// the four King's-graph benchmarks (edges = 2(n−1)(2n−1) for side n).
pub const PAPER_TABLE1_POWER: [(usize, usize, f64); 4] = [
    (49, 156, 9.4),
    (400, 1482, 60.3),
    (1024, 3906, 146.1),
    (2116, 8190, 283.4),
];

impl PowerModel {
    /// Physics-based model from technology parameters: each ring node
    /// switches at `f0`, each active coupling cell burns a fraction of a
    /// ring stage, and control overhead is folded into `fixed_mw = 0`
    /// (reported separately by the calibrated model).
    pub fn from_technology(
        tech: &Technology,
        num_stages: usize,
        f0_ghz: f64,
        coupling_strength: f64,
    ) -> Self {
        let f0 = f0_ghz * 1e9;
        let p_node_w = num_stages as f64 * tech.node_switch_energy() * f0;
        // A coupling cell contains two inverters of `coupling_strength`
        // relative width, switching at f0 with ~50% activity.
        let p_edge_w = 2.0 * coupling_strength * tech.node_switch_energy() * f0 * 0.5;
        PowerModel {
            fixed_mw: 0.0,
            per_node_mw: p_node_w * 1e3,
            per_edge_mw: p_edge_w * 1e3,
        }
    }

    /// Least-squares fit of the affine model to the paper's four Table-1
    /// points (see [`PAPER_TABLE1_POWER`]).
    ///
    /// Only the **total** is calibrated. The individual coefficients are
    /// not separately physical: on square King's graphs the edge count is
    /// an affine function of `N` and `√N`, so the `[1, N, E]` basis is
    /// nearly collinear and the fit may assign a negative per-edge
    /// coefficient. Use [`PowerModel::from_technology`] when a physically
    /// decomposed estimate matters; use this model to reproduce Table 1's
    /// totals (residual < 6% at all four points).
    pub fn calibrated_to_paper() -> Self {
        let pts = PAPER_TABLE1_POWER;
        // Normal equations for [1, N, E] basis.
        let mut ata = [[0.0f64; 3]; 3];
        let mut atb = [0.0f64; 3];
        for &(n, e, p) in &pts {
            let row = [1.0, n as f64, e as f64];
            for i in 0..3 {
                for j in 0..3 {
                    ata[i][j] += row[i] * row[j];
                }
                atb[i] += row[i] * p;
            }
        }
        let x = solve3(ata, atb);
        PowerModel {
            fixed_mw: x[0],
            per_node_mw: x[1],
            per_edge_mw: x[2],
        }
    }

    /// Estimates the power of an `num_nodes`-oscillator array with
    /// `num_edges` active couplings.
    pub fn estimate(&self, num_nodes: usize, num_edges: usize) -> PowerBreakdown {
        PowerBreakdown {
            oscillators_mw: self.per_node_mw * num_nodes as f64,
            couplings_mw: self.per_edge_mw * num_edges as f64,
            control_mw: self.fixed_mw,
        }
    }
}

/// Solves a 3×3 linear system by Gaussian elimination with partial
/// pivoting.
///
/// # Panics
///
/// Panics if the system is singular.
#[allow(clippy::needless_range_loop)] // tiny fixed-size Gaussian elimination
fn solve3(mut a: [[f64; 3]; 3], mut b: [f64; 3]) -> [f64; 3] {
    for col in 0..3 {
        // Pivot.
        let pivot = (col..3)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("finite")
            })
            .expect("rows remain");
        assert!(a[pivot][col].abs() > 1e-12, "singular system");
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in (col + 1)..3 {
            let f = a[row][col] / a[col][col];
            for k in col..3 {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = [0.0f64; 3];
    for row in (0..3).rev() {
        let mut acc = b[row];
        for k in (row + 1)..3 {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    x
}

/// Measures average power (watts) of a transient by integrating
/// `VDD · I_supply(t)` over `window_ns` starting at absolute time `t0`.
/// The input state is advanced in place (callers usually measure over a
/// window they would simulate anyway).
pub fn transient_average_power(
    array: &CircuitArray,
    state: &mut [f64],
    t0: f64,
    window_ns: f64,
    dt: f64,
) -> f64 {
    let vdd = array.tech().vdd;
    let mut energy_j = 0.0; // integral of v*i dt
    let mut prev_t = t0;
    let mut prev_i = array.supply_current(t0, state);
    array.run_observed(state, t0, window_ns, dt, |t, y| {
        let i = array.supply_current(t, y);
        // Trapezoidal rule; time is in ns.
        energy_j += 0.5 * (i + prev_i) * (t - prev_t) * 1e-9 * vdd;
        prev_t = t;
        prev_i = i;
    });
    energy_j / (window_ns * 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msropm_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn calibrated_fit_reproduces_table1() {
        let m = PowerModel::calibrated_to_paper();
        for &(n, e, p) in &PAPER_TABLE1_POWER {
            let est = m.estimate(n, e).total_mw();
            let rel = (est - p).abs() / p;
            assert!(
                rel < 0.06,
                "fit error {rel:.3} at n={n}: {est:.1} vs {p} mW"
            );
        }
    }

    #[test]
    fn calibrated_coefficients_are_physical() {
        let m = PowerModel::calibrated_to_paper();
        assert!(m.per_node_mw > 0.0, "per-node power must be positive");
        assert!(m.fixed_mw.abs() < 10.0, "fixed overhead stays small");
    }

    #[test]
    fn physics_model_positive_and_linear() {
        let tech = Technology::calibrated(11, 1.3);
        let m = PowerModel::from_technology(&tech, 11, 1.3, 0.15);
        let p1 = m.estimate(49, 156).total_mw();
        let p2 = m.estimate(98, 312).total_mw();
        assert!(p1 > 0.0);
        assert!((p2 / p1 - 2.0).abs() < 1e-9, "pure linear scaling");
    }

    #[test]
    fn physics_model_same_order_as_paper() {
        // The behavioural node capacitance is calibrated to frequency, not
        // power, so only the order of magnitude is expected to agree.
        let tech = Technology::calibrated(11, 1.3);
        let m = PowerModel::from_technology(&tech, 11, 1.3, 0.15);
        let est = m.estimate(49, 156).total_mw();
        assert!(est > 0.9 && est < 400.0, "49-node estimate {est} mW");
    }

    #[test]
    fn solve3_known_system() {
        // x + y + z = 6; 2y + 5z = -4; 2x + 5y - z = 27 -> (5, 3, -2).
        let a = [[1.0, 1.0, 1.0], [0.0, 2.0, 5.0], [2.0, 5.0, -1.0]];
        let b = [6.0, -4.0, 27.0];
        let x = solve3(a, b);
        assert!((x[0] - 5.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
        assert!((x[2] + 2.0).abs() < 1e-9);
    }

    #[test]
    fn transient_power_positive_and_scales() {
        let g1 = generators::path_graph(1);
        let a1 = CircuitArray::builder(&g1).build();
        let mut rng = StdRng::seed_from_u64(2);
        let mut s1 = a1.random_state(&mut rng);
        a1.run(&mut s1, 0.0, 5.0, 1e-3);
        let p1 = transient_average_power(&a1, &mut s1, 5.0, 4.0, 1e-3);
        assert!(p1 > 0.0);

        let g3 = generators::path_graph(3);
        let mut a3 = CircuitArray::builder(&g3).build();
        a3.set_all_edges_enabled(false);
        let mut s3 = a3.random_state(&mut rng);
        a3.run(&mut s3, 0.0, 5.0, 1e-3);
        let p3 = transient_average_power(&a3, &mut s3, 5.0, 4.0, 1e-3);
        // Three independent rings draw ~3x one ring.
        assert!((p3 / p1 - 3.0).abs() < 0.25, "ratio {}", p3 / p1);
    }

    #[test]
    fn breakdown_totals() {
        let b = PowerBreakdown {
            oscillators_mw: 1.0,
            couplings_mw: 0.5,
            control_mw: 0.25,
        };
        assert!((b.total_mw() - 1.75).abs() < 1e-12);
    }
}
