//! Phase measurement and the DFF/reference-bank sampler of Fig. 4(c).
//!
//! Under SHIL, locked phases are absolute w.r.t. the reference clock
//! (paper §3.3), so a bank of DFFs clocked by the oscillator output and fed
//! by `N` pulse-shaped reference signals produces a one-hot phase code:
//! at the oscillator's rising edge exactly one reference is high.

use crate::netlist::CircuitArray;
use std::f64::consts::TAU;

/// Measures the phase of oscillator `osc` by simulating a copy of `state`
/// forward from absolute time `t0` for `window_ns` and timing the rising
/// VDD/2 crossings of its output node.
///
/// The returned phase `θ ∈ [0, 2π)` follows the `square(2πf₀t + θ)`
/// convention: a rising crossing at `t_c` means `θ ≡ −2πf₀t_c (mod 2π)`.
/// Returns `None` if the node does not cross twice within the window (ring
/// disabled or halted).
///
/// The input `state` is not modified.
pub fn measure_phase(
    array: &CircuitArray,
    state: &[f64],
    osc: usize,
    window_ns: f64,
    dt: f64,
) -> Option<f64> {
    measure_phase_at(array, state, osc, 0.0, window_ns, dt)
}

/// Like [`measure_phase`] but resuming from absolute time `t0` (needed when
/// SHIL clocks are active, since they are absolute-time waveforms).
pub fn measure_phase_at(
    array: &CircuitArray,
    state: &[f64],
    osc: usize,
    t0: f64,
    window_ns: f64,
    dt: f64,
) -> Option<f64> {
    let node = array.output_node(osc);
    let half = array.tech().vdd / 2.0;
    let mut y = state.to_vec();
    let mut crossings: Vec<f64> = Vec::new();
    let mut prev_v = y[node];
    let mut prev_t = t0;
    array.run_observed(&mut y, t0, window_ns, dt, |t, y| {
        let v = y[node];
        if prev_v < half && v >= half && t > t0 {
            let frac = (half - prev_v) / (v - prev_v);
            crossings.push(prev_t + frac * (t - prev_t));
        }
        prev_v = v;
        prev_t = t;
    });
    if crossings.len() < 2 {
        return None;
    }
    let t_c = crossings[0];
    Some((-TAU * array.f0_ghz() * t_c).rem_euclid(TAU))
}

/// Measures the *relative* phase `θ_a − θ_b ∈ [0, 2π)` of two oscillators
/// using the measured oscillation period rather than the nominal frequency,
/// so the result is immune to free-running frequency offsets.
///
/// Returns `None` if either oscillator fails to produce two rising
/// crossings within the window.
pub fn measure_relative_phase(
    array: &CircuitArray,
    state: &[f64],
    osc_a: usize,
    osc_b: usize,
    t0: f64,
    window_ns: f64,
    dt: f64,
) -> Option<f64> {
    let node_a = array.output_node(osc_a);
    let node_b = array.output_node(osc_b);
    let half = array.tech().vdd / 2.0;
    let mut y = state.to_vec();
    let mut cross_a: Vec<f64> = Vec::new();
    let mut cross_b: Vec<f64> = Vec::new();
    let mut prev_a = y[node_a];
    let mut prev_b = y[node_b];
    let mut prev_t = t0;
    array.run_observed(&mut y, t0, window_ns, dt, |t, y| {
        if t > t0 {
            let va = y[node_a];
            if prev_a < half && va >= half {
                cross_a.push(prev_t + (half - prev_a) / (va - prev_a) * (t - prev_t));
            }
            let vb = y[node_b];
            if prev_b < half && vb >= half {
                cross_b.push(prev_t + (half - prev_b) / (vb - prev_b) * (t - prev_t));
            }
        }
        prev_a = y[node_a];
        prev_b = y[node_b];
        prev_t = t;
    });
    if cross_a.len() < 2 || cross_b.len() < 2 {
        return None;
    }
    let period = (cross_a[cross_a.len() - 1] - cross_a[0]) / (cross_a.len() - 1) as f64;
    // B lagging A in edge time = A leading in phase.
    let dt_edges = cross_b[0] - cross_a[0];
    Some((TAU * dt_edges / period).rem_euclid(TAU))
}

/// A bank of `N` reference pulse signals whose high windows tile the
/// oscillation cycle, one per Potts phase target (paper Fig. 4(c) uses
/// `N = 4` for 4-coloring).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReferenceBank {
    f0_ghz: f64,
    num_phases: usize,
    /// Global calibration offset (radians): rotates all windows to align
    /// with the physical SHIL lock positions.
    offset: f64,
}

impl ReferenceBank {
    /// Creates a bank of `num_phases` references for oscillators at
    /// `f0_ghz`, with phase windows centred at `2πk/N + offset`.
    ///
    /// # Panics
    ///
    /// Panics if `num_phases == 0` or `f0_ghz <= 0`.
    pub fn new(f0_ghz: f64, num_phases: usize, offset: f64) -> Self {
        assert!(num_phases >= 1, "need at least one reference");
        assert!(f0_ghz > 0.0, "frequency must be positive");
        ReferenceBank {
            f0_ghz,
            num_phases,
            offset,
        }
    }

    /// Number of reference signals (= number of representable colors).
    pub fn num_phases(&self) -> usize {
        self.num_phases
    }

    /// Returns `true` if reference `k` is high at time `t_ns`: its window
    /// covers oscillator phases within `±π/N` of the target `2πk/N+offset`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= num_phases`.
    pub fn is_high(&self, k: usize, t_ns: f64) -> bool {
        assert!(k < self.num_phases, "reference index out of range");
        // An oscillator of phase θ has rising edges where f0·t ≡ −θ/2π.
        // Window k covers the edge times of phases near θ_k.
        let theta_k = TAU * k as f64 / self.num_phases as f64 + self.offset;
        let center = (-theta_k / TAU).rem_euclid(1.0);
        let pos = (self.f0_ghz * t_ns).rem_euclid(1.0);
        let d = (pos - center).rem_euclid(1.0);
        let d = d.min(1.0 - d);
        d < 0.5 / self.num_phases as f64
    }

    /// The one-hot sample of all references at time `t_ns`: index of the
    /// unique high reference (tiling windows guarantee uniqueness except on
    /// boundaries, resolved toward the lower index).
    pub fn sample(&self, t_ns: f64) -> usize {
        for k in 0..self.num_phases {
            if self.is_high(k, t_ns) {
                return k;
            }
        }
        // Boundary case: the half-open windows can exclude an exact edge;
        // fall back to nearest center.
        let pos = (self.f0_ghz * t_ns).rem_euclid(1.0);
        (0..self.num_phases)
            .min_by(|&a, &b| {
                let da = self.center_distance(a, pos);
                let db = self.center_distance(b, pos);
                da.partial_cmp(&db).expect("distances are finite")
            })
            .expect("at least one reference")
    }

    fn center_distance(&self, k: usize, pos: f64) -> f64 {
        let theta_k = TAU * k as f64 / self.num_phases as f64 + self.offset;
        let center = (-theta_k / TAU).rem_euclid(1.0);
        let d = (pos - center).rem_euclid(1.0);
        d.min(1.0 - d)
    }
}

/// The full phase-readout path: measure the oscillator's rising edge, then
/// sample the reference bank at that instant — one DFF per reference, data
/// = reference, clock = oscillator output (Fig. 4(c)).
#[derive(Debug, Clone)]
pub struct DffPhaseSampler {
    bank: ReferenceBank,
    window_ns: f64,
    dt: f64,
}

impl DffPhaseSampler {
    /// Creates a sampler using `bank`, observing each oscillator for
    /// `window_ns` with step `dt`.
    pub fn new(bank: ReferenceBank, window_ns: f64, dt: f64) -> Self {
        DffPhaseSampler {
            bank,
            window_ns,
            dt,
        }
    }

    /// Reference bank in use.
    pub fn bank(&self) -> &ReferenceBank {
        &self.bank
    }

    /// Reads the color code of oscillator `osc` at absolute time `t0`:
    /// `Some(k)` where `k` is the one-hot reference index at the
    /// oscillator's rising edge, or `None` if the oscillator is not
    /// toggling.
    pub fn read_color(
        &self,
        array: &CircuitArray,
        state: &[f64],
        osc: usize,
        t0: f64,
    ) -> Option<usize> {
        let node = array.output_node(osc);
        let half = array.tech().vdd / 2.0;
        let mut y = state.to_vec();
        let mut edge_time: Option<f64> = None;
        let mut prev_v = y[node];
        let mut prev_t = t0;
        array.run_observed(&mut y, t0, self.window_ns, self.dt, |t, y| {
            let v = y[node];
            if edge_time.is_none() && prev_v < half && v >= half && t > t0 {
                let frac = (half - prev_v) / (v - prev_v);
                edge_time = Some(prev_t + frac * (t - prev_t));
            }
            prev_v = v;
            prev_t = t;
        });
        edge_time.map(|t_c| self.bank.sample(t_c))
    }

    /// Reads all oscillators (see [`DffPhaseSampler::read_color`]).
    pub fn read_all(&self, array: &CircuitArray, state: &[f64], t0: f64) -> Vec<Option<usize>> {
        (0..array.num_oscillators())
            .map(|osc| self.read_color(array, state, osc, t0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msropm_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reference_windows_tile_the_cycle() {
        let bank = ReferenceBank::new(1.3, 4, 0.0);
        let period = 1.0 / 1.3;
        let samples = 4000;
        let mut counts = [0usize; 4];
        for i in 0..samples {
            let t = period * i as f64 / samples as f64;
            let high: Vec<usize> = (0..4).filter(|&k| bank.is_high(k, t)).collect();
            assert!(high.len() <= 1, "windows must not overlap at t={t}");
            if let Some(&k) = high.first() {
                counts[k] += 1;
            }
        }
        for (k, &c) in counts.iter().enumerate() {
            let frac = c as f64 / samples as f64;
            assert!((frac - 0.25).abs() < 0.01, "ref {k} covers {frac}");
        }
    }

    #[test]
    fn sample_classifies_phase_targets() {
        let f0 = 1.0;
        let bank = ReferenceBank::new(f0, 4, 0.0);
        // An oscillator with phase theta_k has a rising edge at
        // t = -theta_k / (2 pi f0) (mod period); sampling there yields k.
        for k in 0..4 {
            let theta = TAU * k as f64 / 4.0;
            let t_edge = (-theta / TAU / f0).rem_euclid(1.0 / f0);
            assert_eq!(bank.sample(t_edge), k, "phase target {k}");
        }
    }

    #[test]
    fn offset_rotates_windows() {
        let f0 = 1.0;
        let offset = 0.3;
        let bank = ReferenceBank::new(f0, 4, offset);
        let theta = TAU / 4.0 + offset;
        let t_edge = (-theta / TAU / f0).rem_euclid(1.0 / f0);
        assert_eq!(bank.sample(t_edge), 1);
    }

    #[test]
    fn measured_phase_matches_reference_classification() {
        // Free-running ring: measure its phase, then check the DFF sampler
        // classifies consistently with the measured phase's bucket.
        let g = generators::path_graph(1);
        let array = crate::netlist::CircuitArray::builder(&g).build();
        let mut rng = StdRng::seed_from_u64(20);
        let mut state = array.random_state(&mut rng);
        array.run(&mut state, 0.0, 10.0, 1e-3);
        let phase = measure_phase(&array, &state, 0, 8.0, 1e-3).expect("oscillates");
        let bank = ReferenceBank::new(array.f0_ghz(), 4, 0.0);
        let sampler = DffPhaseSampler::new(bank, 8.0, 1e-3);
        let color = sampler
            .read_color(&array, &state, 0, 0.0)
            .expect("readable");
        // The color bucket must contain the measured phase (within half a
        // window of slack for frequency mismatch over the window).
        let bucket_center = TAU * color as f64 / 4.0;
        let d = (phase - bucket_center).rem_euclid(TAU);
        let d = d.min(TAU - d);
        assert!(d < TAU / 4.0 + 0.3, "phase {phase} vs bucket {color}");
    }

    #[test]
    fn dead_oscillator_reads_none() {
        let g = generators::path_graph(1);
        let mut array = crate::netlist::CircuitArray::builder(&g).build();
        array.set_oscillator_enabled(0, false);
        let state = vec![0.0; array.state_dim()];
        let bank = ReferenceBank::new(array.f0_ghz(), 4, 0.0);
        let sampler = DffPhaseSampler::new(bank, 5.0, 1e-3);
        assert_eq!(sampler.read_color(&array, &state, 0, 0.0), None);
        assert_eq!(measure_phase(&array, &state, 0, 5.0, 1e-3), None);
    }

    #[test]
    #[should_panic(expected = "reference index out of range")]
    fn bad_reference_index() {
        ReferenceBank::new(1.0, 4, 0.0).is_high(4, 0.0);
    }
}
