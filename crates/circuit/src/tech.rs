//! Technology parameters for the behavioural 65 nm-like models.

/// Electrical parameters of the (behavioural) technology node.
///
/// Defaults approximate the paper's 65 nm GP process at 1 V: an 11-stage
/// ring built from these inverters free-runs near 1.3 GHz after
/// [`Technology::calibrated`] adjusts the node capacitance.
///
/// The PMOS:NMOS strength ratio defaults to the paper's 4:1 sizing, which
/// skews the switching threshold and gives the ring its 2nd-order SHIL
/// susceptibility (paper §3.3, ref \[24\]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Technology {
    /// Supply voltage, volts.
    pub vdd: f64,
    /// Peak pull-down (NMOS) conductance, siemens.
    pub gn: f64,
    /// Peak pull-up (PMOS) conductance, siemens.
    pub gp: f64,
    /// Inverter switching threshold, volts.
    pub vm: f64,
    /// Transition sharpness, volts (smaller = more ideal switch).
    pub vs: f64,
    /// Node capacitance, farads.
    pub c_node: f64,
    /// Weak leak conductance to ground used when a block is disabled,
    /// siemens.
    pub g_leak: f64,
}

impl Default for Technology {
    fn default() -> Self {
        // Base values chosen so the *shape* is CMOS-like; c_node is then
        // calibrated so an 11-stage ring hits the paper's 1.3 GHz.
        Technology {
            vdd: 1.0,
            gn: 0.8e-3,
            gp: 3.2e-3, // 4:1 PMOS:NMOS sizing (paper sec. 3.3)
            vm: 0.42,   // skewed below VDD/2 by the strong PMOS
            vs: 0.09,
            c_node: 12e-15,
            g_leak: 5e-6,
        }
    }
}

impl Technology {
    /// The default technology with `c_node` rescaled so that an
    /// `num_stages`-ring free-runs at `target_ghz`.
    ///
    /// Calibration is measurement-based: the node ODE is linear in `1/C`,
    /// so the oscillation frequency is *exactly* proportional to `1/C`. One
    /// transient measurement of the default ring therefore pins the scale,
    /// and the returned technology hits the target to within the crossing
    /// interpolation error (≪ 1%).
    ///
    /// # Panics
    ///
    /// Panics if `target_ghz <= 0` or `num_stages` is even or < 3.
    pub fn calibrated(num_stages: usize, target_ghz: f64) -> Self {
        assert!(target_ghz > 0.0, "target frequency must be positive");
        assert!(
            num_stages >= 3 && num_stages % 2 == 1,
            "ring needs an odd stage count >= 3"
        );
        let mut tech = Technology::default();
        // First pass: analytic estimate gets within tens of percent.
        let f_analytic = tech.estimate_ring_frequency(num_stages);
        tech.c_node *= f_analytic / (target_ghz * 1e9);
        // Second pass: measure the actual transient period and rescale
        // using the exact f ∝ 1/C law.
        let ring = crate::rosc::RingOscillator::new(tech, num_stages);
        let t_target_ns = 1.0 / target_ghz;
        let f_measured_ghz = ring
            .measure_frequency_ghz(40.0 * t_target_ns, 8)
            .expect("default ring must oscillate during calibration");
        tech.c_node *= f_measured_ghz / target_ghz;
        tech
    }

    /// Analytic small-model estimate of the free-running ring frequency in
    /// Hz (used for calibration; transient tests measure the real value).
    pub fn estimate_ring_frequency(&self, num_stages: usize) -> f64 {
        // Per-stage delay ~ time for the output to swing between the
        // thresholds under the weaker device; the swing-limiting device
        // dominates. Use the RC of the mean conductance with an empirical
        // 0.69 (ln 2) factor.
        let g_mean = 2.0 * self.gp * self.gn / (self.gp + self.gn);
        let t_stage = std::f64::consts::LN_2 * self.c_node / g_mean;
        1.0 / (2.0 * num_stages as f64 * t_stage)
    }

    /// Dynamic switching energy of one node per full period: `C·VDD²`
    /// (charge up + discharge counts once in CV² accounting), joules.
    pub fn node_switch_energy(&self) -> f64 {
        self.c_node * self.vdd * self.vdd
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_cmos_like() {
        let t = Technology::default();
        assert_eq!(t.vdd, 1.0);
        assert!((t.gp / t.gn - 4.0).abs() < 1e-12, "4:1 sizing");
        assert!(t.vm < t.vdd / 2.0 + 0.05, "threshold skewed by strong PMOS");
    }

    #[test]
    fn calibration_scales_capacitance() {
        let t13 = Technology::calibrated(11, 1.3);
        // Higher target -> smaller capacitance, exactly inverse.
        let t26 = Technology::calibrated(11, 2.6);
        assert!(t26.c_node < t13.c_node);
        assert!((t13.c_node / t26.c_node - 2.0).abs() < 0.02);
    }

    #[test]
    fn calibration_hits_target_frequency() {
        let t = Technology::calibrated(11, 1.3);
        let ring = crate::rosc::RingOscillator::new(t, 11);
        let f = ring.measure_frequency_ghz(20.0, 8).expect("oscillates");
        assert!(
            (f - 1.3).abs() / 1.3 < 0.01,
            "measured {f} GHz, target 1.3 GHz"
        );
    }

    #[test]
    #[should_panic(expected = "odd stage count")]
    fn even_stage_count_rejected() {
        Technology::calibrated(10, 1.3);
    }

    #[test]
    fn switch_energy_positive() {
        let t = Technology::default();
        assert!(t.node_switch_energy() > 0.0);
        assert!(
            (t.node_switch_energy() - t.c_node).abs() < 1e-18,
            "VDD=1 => E=C"
        );
    }
}
