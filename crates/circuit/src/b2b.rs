//! Gated back-to-back (B2B) inverter coupling branches — Fig. 4(b).
//!
//! A B2B cell places two anti-parallel inverters between corresponding
//! nodes of two rings. Each inverter drives its far node with the inversion
//! of its near node, so the pair pushes the rings toward **opposite**
//! phases — the paper's negative coupling (`J < 0` in Fig. 1). The whole
//! cell sits behind an enable gate (`G_EN`/`L_EN`/`P_EN`).

use crate::inverter::Inverter;
use crate::tech::Technology;

/// A back-to-back inverter coupling between two circuit nodes.
#[derive(Debug, Clone, Copy)]
pub struct B2bCoupling {
    inverter: Inverter,
    enabled: bool,
}

impl B2bCoupling {
    /// Creates a coupling whose inverters have `strength` × unit widths.
    ///
    /// The paper tunes this strength: too weak and the array fails to order
    /// before the SHIL window; too strong and coupling halts oscillation
    /// (§2.3). Typical working values are 0.05–0.3 of a unit inverter.
    ///
    /// # Panics
    ///
    /// Panics if `strength <= 0`.
    pub fn new(tech: Technology, strength: f64) -> Self {
        B2bCoupling {
            inverter: Inverter::with_strength(tech, strength),
            enabled: true,
        }
    }

    /// Enables/disables the cell.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Returns `true` if the cell conducts.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Coupling-inverter strength relative to a unit inverter.
    pub fn strength(&self) -> f64 {
        self.inverter.strength
    }

    /// Currents injected into node A and node B (`(i_a, i_b)`) given their
    /// voltages. Zero when disabled.
    pub fn currents(&self, va: f64, vb: f64) -> (f64, f64) {
        if !self.enabled {
            return (0.0, 0.0);
        }
        // Inverter driven by B injects into A, and vice versa.
        let ia = self.inverter.output_current(vb, va);
        let ib = self.inverter.output_current(va, vb);
        (ia, ib)
    }

    /// Supply current drawn by the cell (for power accounting).
    pub fn supply_current(&self, va: f64, vb: f64) -> f64 {
        if !self.enabled {
            return 0.0;
        }
        self.inverter.supply_current(vb, va) + self.inverter.supply_current(va, vb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell() -> B2bCoupling {
        B2bCoupling::new(Technology::default(), 0.2)
    }

    #[test]
    fn pushes_nodes_apart() {
        let c = cell();
        // Both nodes high: each inverter sees a high input and pulls its far
        // node low — both currents negative (discharging).
        let (ia, ib) = c.currents(0.9, 0.9);
        assert!(ia < 0.0 && ib < 0.0);
        // Both low: both pulled high.
        let (ia, ib) = c.currents(0.1, 0.1);
        assert!(ia > 0.0 && ib > 0.0);
        // Opposite rails: the cell reinforces the difference.
        let (ia, ib) = c.currents(0.95, 0.05);
        assert!(ia > 0.0, "high node pushed higher by low far node");
        assert!(ib < 0.0, "low node pushed lower by high far node");
    }

    #[test]
    fn disabled_cell_conducts_nothing() {
        let mut c = cell();
        c.set_enabled(false);
        assert!(!c.is_enabled());
        assert_eq!(c.currents(1.0, 0.0), (0.0, 0.0));
        assert_eq!(c.supply_current(1.0, 0.0), 0.0);
    }

    #[test]
    fn symmetric_in_node_exchange() {
        let c = cell();
        let (ia, ib) = c.currents(0.3, 0.8);
        let (ib2, ia2) = c.currents(0.8, 0.3);
        assert!((ia - ia2).abs() < 1e-15);
        assert!((ib - ib2).abs() < 1e-15);
    }

    #[test]
    fn strength_recorded() {
        assert!((cell().strength() - 0.2).abs() < 1e-15);
    }
}
