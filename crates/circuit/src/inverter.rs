//! The behavioural CMOS inverter: the primitive cell of every block.
//!
//! Modelled as a smooth conductance divider: the input voltage steers a
//! pull-up conductance `g_p(V_in)` to VDD and a pull-down `g_n(V_in)` to
//! ground, so the output node obeys
//!
//! ```text
//! C dV_out/dt = g_p(V_in)·(VDD − V_out) − g_n(V_in)·V_out
//! ```
//!
//! with logistic steering `g_p = G_P·σ((VM−V_in)/VS)`,
//! `g_n = G_N·σ((V_in−VM)/VS)`. This captures the three behaviours the
//! Potts machine depends on: regenerative switching (ring oscillation),
//! current injection summing at nodes (coupling and SHIL), and asymmetric
//! rise/fall from the 4:1 sizing (2nd-harmonic SHIL susceptibility).

use crate::tech::Technology;

/// A behavioural CMOS inverter in a given technology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Inverter {
    tech: Technology,
    /// Strength multiplier (1.0 = unit inverter); B2B coupling cells use
    /// fractions of a unit inverter.
    pub strength: f64,
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

impl Inverter {
    /// A unit-strength inverter.
    pub fn new(tech: Technology) -> Self {
        Inverter {
            tech,
            strength: 1.0,
        }
    }

    /// An inverter scaled by `strength` (device widths × strength).
    ///
    /// # Panics
    ///
    /// Panics if `strength <= 0`.
    pub fn with_strength(tech: Technology, strength: f64) -> Self {
        assert!(strength > 0.0, "inverter strength must be positive");
        Inverter { tech, strength }
    }

    /// Technology of this cell.
    pub fn tech(&self) -> &Technology {
        &self.tech
    }

    /// Pull-up conductance at input voltage `vin` (siemens).
    pub fn g_pull_up(&self, vin: f64) -> f64 {
        self.strength * self.tech.gp * sigmoid((self.tech.vm - vin) / self.tech.vs)
    }

    /// Pull-down conductance at input voltage `vin` (siemens).
    pub fn g_pull_down(&self, vin: f64) -> f64 {
        self.strength * self.tech.gn * sigmoid((vin - self.tech.vm) / self.tech.vs)
    }

    /// Current delivered *into* the output node (amperes) for the given
    /// input and output voltages.
    pub fn output_current(&self, vin: f64, vout: f64) -> f64 {
        self.g_pull_up(vin) * (self.tech.vdd - vout) - self.g_pull_down(vin) * vout
    }

    /// DC transfer: the output voltage at which [`Inverter::output_current`]
    /// vanishes for a held input.
    pub fn dc_output(&self, vin: f64) -> f64 {
        let gp = self.g_pull_up(vin);
        let gn = self.g_pull_down(vin);
        gp * self.tech.vdd / (gp + gn)
    }

    /// The supply current drawn while producing `output_current` — used by
    /// the transient power integrator. Only the pull-up path draws from
    /// VDD.
    pub fn supply_current(&self, vin: f64, vout: f64) -> f64 {
        self.g_pull_up(vin) * (self.tech.vdd - vout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv() -> Inverter {
        Inverter::new(Technology::default())
    }

    #[test]
    fn dc_transfer_inverts() {
        let i = inv();
        let vdd = i.tech().vdd;
        // Input low -> output ~VDD; input high -> output ~0.
        assert!(i.dc_output(0.0) > 0.98 * vdd);
        assert!(i.dc_output(vdd) < 0.02 * vdd);
        // Monotone decreasing.
        let mut prev = i.dc_output(0.0);
        for k in 1..=20 {
            let v = i.dc_output(vdd * k as f64 / 20.0);
            assert!(v <= prev + 1e-12);
            prev = v;
        }
    }

    #[test]
    fn switching_threshold_is_skewed_low() {
        // With gp = 4 gn the transfer crosses VDD/2 at an input *above* vm,
        // but the steering midpoint vm itself sits below VDD/2.
        let i = inv();
        assert!(i.tech().vm < 0.5);
        // At vin = vm, pull-up is 4x pull-down: output well above VDD/2.
        assert!(i.dc_output(i.tech().vm) > 0.5);
    }

    #[test]
    fn output_current_signs() {
        let i = inv();
        // Low input, low output: charging (positive into node).
        assert!(i.output_current(0.0, 0.1) > 0.0);
        // High input, high output: discharging.
        assert!(i.output_current(1.0, 0.9) < 0.0);
        // At the DC point the current is ~0.
        let v = i.dc_output(0.3);
        assert!(i.output_current(0.3, v).abs() < 1e-12);
    }

    #[test]
    fn strength_scales_current() {
        let t = Technology::default();
        let unit = Inverter::new(t);
        let double = Inverter::with_strength(t, 2.0);
        let weak = Inverter::with_strength(t, 0.25);
        let (vin, vout) = (0.2, 0.5);
        assert!(
            (double.output_current(vin, vout) - 2.0 * unit.output_current(vin, vout)).abs() < 1e-15
        );
        assert!(
            (weak.output_current(vin, vout) - 0.25 * unit.output_current(vin, vout)).abs() < 1e-15
        );
    }

    #[test]
    fn supply_current_nonnegative() {
        let i = inv();
        for vin in [0.0, 0.3, 0.6, 1.0] {
            for vout in [0.0, 0.5, 1.0] {
                assert!(i.supply_current(vin, vout) >= 0.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "strength must be positive")]
    fn zero_strength_rejected() {
        Inverter::with_strength(Technology::default(), 0.0);
    }
}
