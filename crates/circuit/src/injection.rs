//! SHIL injection: a PMOS device gated by a 2f (or 3f) clock — Fig. 4(a).
//!
//! When the SHIL clock drives the PMOS gate low, the device conducts and
//! pulls the oscillator node toward VDD. Because the perturbation repeats
//! `m` times per oscillation period, the oscillator can only lock with its
//! phase in one of `m` positions relative to the clock — sub-harmonic
//! injection locking. Phase-shifting the clock shifts those positions: the
//! mechanism behind SHIL 1 vs SHIL 2 (paper Fig. 2(d)).

use crate::tech::Technology;

/// A square SHIL clock: frequency multiple `m` of the oscillator frequency
/// `f0_ghz`, phase shift `psi` (radians of the *oscillator* cycle times
/// `m`, i.e. the phase of the injected waveform itself), and duty cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShilWave {
    /// Injection order: 2 for binarization, 3 for 3-phase (ref \[14\]).
    pub order: u32,
    /// Oscillator fundamental frequency in GHz.
    pub f0_ghz: f64,
    /// Phase of the injected clock, radians in `[0, 2π)`; SHIL 2 uses `π`
    /// ("180° out of phase with SHIL 1").
    pub psi: f64,
    /// Fraction of the injection period during which the PMOS conducts.
    pub duty: f64,
}

impl ShilWave {
    /// SHIL 1 of the paper: order 2, in phase with the reference.
    pub fn shil1(f0_ghz: f64) -> Self {
        ShilWave {
            order: 2,
            f0_ghz,
            psi: 0.0,
            duty: 0.25,
        }
    }

    /// SHIL 2 of the paper: order 2, 180° out of phase with SHIL 1.
    pub fn shil2(f0_ghz: f64) -> Self {
        ShilWave {
            order: 2,
            f0_ghz,
            psi: std::f64::consts::PI,
            duty: 0.25,
        }
    }

    /// Returns `true` if the clock holds the PMOS on at time `t_ns`.
    ///
    /// The conduction window is centred on the peaks of
    /// `cos(2π·m·f0·t − ψ)`, so the phase-domain locking term is
    /// `−Ks·sin(m·θ − ψ)` with stable phases `(ψ + 2πk)/m` — matching
    /// `msropm-osc`.
    pub fn is_conducting(&self, t_ns: f64) -> bool {
        let m = self.order as f64;
        let cycle = (m * self.f0_ghz * t_ns - self.psi / std::f64::consts::TAU).rem_euclid(1.0);
        // Window centred on cycle phase 0.
        cycle < self.duty / 2.0 || cycle > 1.0 - self.duty / 2.0
    }

    /// Injection period in ns (`1 / (m·f0)`).
    pub fn period_ns(&self) -> f64 {
        1.0 / (self.order as f64 * self.f0_ghz)
    }
}

/// The per-oscillator SHIL injector: a PMOS pull-up gated by one of two
/// (or more) SHIL clocks through the `SHIL_SEL` multiplexer, all behind
/// `SHIL_EN`.
#[derive(Debug, Clone)]
pub struct ShilSignal {
    tech: Technology,
    /// Available SHIL clocks (the paper uses two).
    waves: Vec<ShilWave>,
    /// Injection conductance of the PMOS when conducting, siemens.
    pub g_inject: f64,
}

impl ShilSignal {
    /// Creates an injector with the given clocks and injection conductance.
    ///
    /// # Panics
    ///
    /// Panics if `waves` is empty or `g_inject < 0`.
    pub fn new(tech: Technology, waves: Vec<ShilWave>, g_inject: f64) -> Self {
        assert!(!waves.is_empty(), "need at least one SHIL clock");
        assert!(
            g_inject >= 0.0,
            "injection conductance must be non-negative"
        );
        ShilSignal {
            tech,
            waves,
            g_inject,
        }
    }

    /// The paper's two-clock configuration (SHIL 1 + SHIL 2) at `f0_ghz`.
    pub fn paper_pair(tech: Technology, f0_ghz: f64, g_inject: f64) -> Self {
        ShilSignal::new(
            tech,
            vec![ShilWave::shil1(f0_ghz), ShilWave::shil2(f0_ghz)],
            g_inject,
        )
    }

    /// Number of selectable clocks.
    pub fn num_waves(&self) -> usize {
        self.waves.len()
    }

    /// The selected wave.
    ///
    /// # Panics
    ///
    /// Panics if `select` is out of range.
    pub fn wave(&self, select: usize) -> &ShilWave {
        &self.waves[select]
    }

    /// Current injected into a node at voltage `v` at time `t_ns`, when the
    /// multiplexer selects clock `select`. Zero while the clock holds the
    /// PMOS off.
    ///
    /// # Panics
    ///
    /// Panics if `select` is out of range.
    pub fn current(&self, select: usize, t_ns: f64, v: f64) -> f64 {
        if self.waves[select].is_conducting(t_ns) {
            self.g_inject * (self.tech.vdd - v)
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn shil_clock_runs_at_twice_f0() {
        let w = ShilWave::shil1(1.3);
        assert!((w.period_ns() - 1.0 / 2.6).abs() < 1e-12);
        let w3 = ShilWave {
            order: 3,
            ..ShilWave::shil1(1.0)
        };
        assert!((w3.period_ns() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn duty_cycle_fraction_of_time_conducting() {
        let w = ShilWave::shil1(1.0);
        let samples = 100_000;
        let t_end = 50.0;
        let on = (0..samples)
            .filter(|&k| w.is_conducting(t_end * k as f64 / samples as f64))
            .count();
        let frac = on as f64 / samples as f64;
        assert!((frac - 0.25).abs() < 0.01, "duty fraction {frac}");
    }

    #[test]
    fn shil2_windows_shifted_by_half_injection_period() {
        let f0 = 1.0;
        let w1 = ShilWave::shil1(f0);
        let w2 = ShilWave::shil2(f0);
        // psi = pi shifts the window by (pi/2pi) = half an injection cycle.
        let shift = 0.5 * w1.period_ns();
        for k in 0..1000 {
            let t = 0.003 * k as f64;
            assert_eq!(
                w1.is_conducting(t),
                w2.is_conducting(t + shift),
                "mismatch at t={t}"
            );
        }
    }

    #[test]
    fn injector_pulls_toward_vdd_only_when_conducting() {
        let tech = Technology::default();
        let inj = ShilSignal::paper_pair(tech, 1.0, 1e-4);
        assert_eq!(inj.num_waves(), 2);
        // t=0 is the centre of SHIL1's window.
        assert!(inj.current(0, 0.0, 0.3) > 0.0);
        // At VDD no current flows even when conducting.
        assert!(inj.current(0, 0.0, tech.vdd).abs() < 1e-18);
        // Off-window: zero.
        let quarter = 0.25 * inj.wave(0).period_ns();
        assert_eq!(inj.current(0, quarter, 0.3), 0.0);
    }

    #[test]
    fn selected_wave_properties() {
        let inj = ShilSignal::paper_pair(Technology::default(), 1.3, 1e-4);
        assert_eq!(inj.wave(0).psi, 0.0);
        assert!((inj.wave(1).psi - PI).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one SHIL clock")]
    fn empty_waves_rejected() {
        ShilSignal::new(Technology::default(), vec![], 1e-4);
    }
}
