//! Branchless double-precision `sin` for the compiled coupling kernels.
//!
//! The coupling drift evaluates one `sin` per active edge per step; on the
//! paper's 2116-oscillator King's graph that is ~8200 sins per RHS call,
//! tens of millions per annealing window. `libm`'s `sin` is accurate to
//! <1 ulp but is an opaque call: the edge loop serializes on it and the
//! auto-vectorizer gives up. [`sin_fast`] is a classical Cody–Waite
//! two-step π/2 reduction plus minimax polynomials with the quadrant
//! select done by bit blending — straight-line FP/integer code that LLVM
//! unrolls and vectorizes when applied over a contiguous buffer (see
//! [`sin_slice`]).
//!
//! Accuracy: max absolute error < 4e-15 for |x| ≤ 64 (phase differences
//! in this workspace stay within a few tens of radians), growing slowly
//! with |x| as the two-term reduction loses bits (~1e-13 at |x| = 2·10³);
//! inputs with |x| > 2^20 fall back to `f64::sin`. The function is
//! exactly odd (`sin_fast(-x) == -sin_fast(x)` bitwise for nonzero x;
//! `sin_fast(-0.0)` returns `+0.0`), matching the antisymmetry the
//! kernels rely on to visit each undirected edge once.

/// Threshold beyond which the Cody–Waite reduction loses too many bits and
/// the implementation defers to `f64::sin`. Kernel phase differences are
/// O(10) rad, so the branch is never taken in practice (and predicts
/// perfectly when compiled scalar).
const REDUCTION_LIMIT: f64 = 1_048_576.0; // 2^20

/// `sin(x)` via branchless Cody–Waite reduction + minimax polynomials.
///
/// Max absolute error < 4e-15 for `|x| ≤ 64` (see module docs for the
/// growth beyond); exactly odd for nonzero x; falls back to `f64::sin`
/// outside the reduction range and for non-finite input.
#[inline(always)]
#[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(|x| <= L)` deliberately catches NaN
pub fn sin_fast(x: f64) -> f64 {
    if !(x.abs() <= REDUCTION_LIMIT) {
        // NaN, infinities and huge arguments take the slow exact path.
        return x.sin();
    }
    sin_core(x)
}

/// The guard-free reduction + polynomial core: straight-line FP/integer
/// code with no branches, so a loop over a contiguous slice vectorizes.
/// Only valid for `|x| ≤` [`REDUCTION_LIMIT`]; callers guard.
#[inline(always)]
// The split π/2 constants intentionally carry more digits than f64 holds
// (Cody–Waite needs the exact rounded-to-nearest values), which trips
// clippy's approx-constant/precision lints.
#[allow(clippy::approx_constant, clippy::excessive_precision)]
fn sin_core(x: f64) -> f64 {
    // Cody–Waite: x = q·π/2 + r with π/2 split into hi + lo parts so the
    // q·hi product is exact for |q| < 2^27.
    const INV_PIO2: f64 = 0.636_619_772_367_581_343_075_535_053_490_057_45; // 2/π
    const PIO2_HI: f64 = 1.570_796_326_794_896_557_998_981_734_272_092_58;
    const PIO2_LO: f64 = 6.123_233_995_736_766_035_868_820_147_292e-17;
    let q = (x * INV_PIO2).round();
    let r = (x - q * PIO2_HI) - q * PIO2_LO;
    let qi = q as i64;
    let r2 = r * r;

    // Minimax sin polynomial on [-π/4, π/4] (coefficients from the classic
    // fdlibm kernel, |err| < 2^-58 relative).
    let sp = -2.505_074_776_285_780_72e-8 + r2 * 1.589_623_015_765_465_68e-10;
    let sp = 2.755_731_362_138_572_45e-6 + r2 * sp;
    let sp = -1.984_126_982_958_953_86e-4 + r2 * sp;
    let sp = 8.333_333_333_322_118_59e-3 + r2 * sp;
    let sp = -1.666_666_666_666_663_07e-1 + r2 * sp;
    let s = r + r * r2 * sp;

    // Minimax cos polynomial on [-π/4, π/4].
    let cp = -1.135_853_652_138_768_17e-11;
    let cp = 2.087_570_084_197_473_17e-9 + r2 * cp;
    let cp = -2.755_731_417_929_673_88e-7 + r2 * cp;
    let cp = 2.480_158_728_885_171_80e-5 + r2 * cp;
    let cp = -1.388_888_888_887_305_64e-3 + r2 * cp;
    let cp = 4.166_666_666_666_659_29e-2 + r2 * cp;
    let c = 1.0 - 0.5 * r2 + r2 * r2 * cp;

    // Quadrant select without branches: odd q takes the cos polynomial,
    // bit 1 of q flips the sign.
    let sel = 0u64.wrapping_sub((qi & 1) as u64);
    let v = f64::from_bits((s.to_bits() & !sel) | (c.to_bits() & sel));
    f64::from_bits(v.to_bits() ^ (((qi as u64) & 2) << 62))
}

/// Applies [`sin_fast`] in place over a slice.
///
/// This is the shape the kernels use: a contiguous buffer of phase
/// differences with no gather/scatter inside the loop. A cheap range
/// scan first decides whether every element can take the branchless
/// [`sin_core`] path — when it can (always, for phase dynamics), the
/// main loop contains no branches at all and LLVM auto-vectorizes it
/// (4 lanes of f64 with AVX2). Results are bitwise identical to calling
/// [`sin_fast`] per element either way.
#[inline]
pub fn sin_slice(xs: &mut [f64]) {
    let mut all_in_range = true;
    for &x in xs.iter() {
        // `!(|x| <= L)` also catches NaN.
        all_in_range &= x.abs() <= REDUCTION_LIMIT;
    }
    if all_in_range {
        for x in xs.iter_mut() {
            *x = sin_core(*x);
        }
    } else {
        for x in xs.iter_mut() {
            *x = sin_fast(*x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_sweep_typical_range() {
        // Kernel arguments are phase differences: a dense sweep of the
        // range they actually occupy plus a wide margin.
        let mut worst = 0.0f64;
        let mut x = -64.0;
        while x < 64.0 {
            let err = (sin_fast(x) - x.sin()).abs();
            worst = worst.max(err);
            x += 0.000_731;
        }
        assert!(worst < 4e-15, "max abs error {worst:e}");
    }

    #[test]
    fn accuracy_sweep_wide_range() {
        let mut worst = 0.0f64;
        let mut x = -2000.0;
        while x < 2000.0 {
            worst = worst.max((sin_fast(x) - x.sin()).abs());
            x += 0.013_7;
        }
        assert!(worst < 5e-13, "max abs error on [-2000, 2000]: {worst:e}");
    }

    #[test]
    fn accuracy_near_reduction_limit() {
        let mut worst = 0.0f64;
        for k in 0..20_000 {
            let x = 1.0e5 + k as f64 * 0.913;
            worst = worst.max((sin_fast(x) - x.sin()).abs());
        }
        assert!(worst < 1e-10, "max abs error near 1e5: {worst:e}");
    }

    #[test]
    fn exactly_odd() {
        let mut x = 0.0001;
        while x < 100.0 {
            assert_eq!(
                sin_fast(-x).to_bits(),
                (-sin_fast(x)).to_bits(),
                "odd symmetry broken at {x}"
            );
            x *= 1.37;
        }
    }

    #[test]
    fn special_values() {
        assert_eq!(sin_fast(0.0).to_bits(), 0.0f64.to_bits());
        // -0.0 collapses to +0.0 through the reduction (documented; the
        // kernels never produce a -0.0 argument from x - x).
        assert_eq!(sin_fast(-0.0), 0.0);
        assert!(sin_fast(f64::NAN).is_nan());
        assert!(sin_fast(f64::INFINITY).is_nan());
        // Beyond the reduction limit: falls back to libm, stays exact.
        let big = 3.9e7;
        assert_eq!(sin_fast(big), big.sin());
    }

    #[test]
    fn quadrant_boundaries() {
        use std::f64::consts::{FRAC_PI_2, PI};
        for k in -8i32..=8 {
            for eps in [-1e-9, 0.0, 1e-9] {
                let x = k as f64 * FRAC_PI_2 + eps;
                assert!(
                    (sin_fast(x) - x.sin()).abs() < 4e-15,
                    "boundary {k}·π/2 + {eps}"
                );
            }
        }
        assert!((sin_fast(PI)).abs() < 1e-15);
    }

    #[test]
    fn slice_matches_scalar() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64 - 500.0) * 0.0137).collect();
        let mut ys = xs.clone();
        sin_slice(&mut ys);
        for (x, y) in xs.iter().zip(&ys) {
            assert_eq!(y.to_bits(), sin_fast(*x).to_bits());
        }
    }
}
