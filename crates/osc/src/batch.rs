//! Multi-replica (SoA) phase integration: M independent machine replicas
//! advanced in one interleaved sweep.
//!
//! The paper runs **40 independent iterations** per problem and keeps the
//! best solution. Run sequentially, every iteration re-walks the same
//! topology while the previous iteration's phases fall out of cache.
//! [`BatchKernel`] lays the replica phases out *replica-minor per node*
//! (`y[i*M + r]`), so one pass over the edge list advances all replicas:
//! the per-edge inner loop over `M` contiguous lanes is the textbook
//! auto-vectorization shape, and the topology arrays are read once per
//! step instead of once per step **per replica**.
//!
//! Replicas differ in their gating state after stage 1 (each replica cuts
//! its own partition's couplings), so gating is represented as a
//! per-replica **weight lane** (`0.0` = gated): the sweep stays uniform
//! and branch-free. Adding a `±0` term is exact in IEEE arithmetic, which
//! keeps every replica's phase trajectory **bit-identical** to the same
//! replica integrated alone with the scalar
//! [`CoupledKernel`](crate::kernel::CoupledKernel) — the property that
//! lets the batch solver shard replicas across threads deterministically.
//!
//! The same lane treatment extends to every control parameter, so the
//! replicas need not be identical machines: per-replica coupling
//! strengths ride in the weight lanes ([`BatchKernel::from_lanes`]),
//! per-replica noise amplitudes in σ-lanes, per-replica SHIL strengths
//! in the dense SHIL table, and per-replica OIM ramps in a SHIL-scale
//! lane — all resolved to flat per-(element, replica) tables before the
//! sweep, so heterogeneous parameter portfolios run at homogeneous-batch
//! speed with no per-step branching.
//!
//! Noise is drawn through
//! [`fill_normal_batch`](msropm_ode::sde::fill_normal_batch) from one
//! seeded RNG **per replica**, in the same per-replica order a sequential
//! run would draw, completing the bit-identity argument.

use crate::fastmath::sin_slice;
use crate::network::PhaseNetwork;
use crate::shil::Shil;
use msropm_ode::sde::fill_normal_batch;
use rand::Rng;

/// A compiled multi-replica coupling kernel (see the module docs).
///
/// Unlike the scalar kernel, gating is mutable in place (per-replica
/// weight lanes) because each replica's `P_EN`/`SHIL_SEL` state evolves
/// independently across solution stages; recompiling per window would
/// cost O(n·M + m·M) for no benefit.
///
/// Every control parameter is a **per-replica lane**: ungated edge
/// weights (`K`-lanes), noise amplitudes (`σ`-lanes), SHIL tables and
/// SHIL ramp scales. [`BatchKernel::new`] broadcasts one network across
/// all lanes; [`BatchKernel::from_lanes`] gives each lane the weights
/// and noise of its own network, which is how heterogeneous parameter
/// sweeps enter the hot loop without any per-step branching.
#[derive(Debug, Clone)]
pub struct BatchKernel {
    num_nodes: usize,
    replicas: usize,
    /// Edge endpoints in edge-id order (all graph edges).
    edge_u: Vec<u32>,
    edge_v: Vec<u32>,
    /// Ungated physical weight lanes `[e*M + r]` (per-replica `K`).
    base_weight: Vec<f64>,
    /// Effective weight lanes `[e*M + r]`; `0.0` encodes a gated edge.
    weight: Vec<f64>,
    /// Bookkeeping mirror of the gating (weights may legitimately be 0).
    edge_on: Vec<bool>,
    node_enabled: Vec<bool>,
    /// Per-(node, replica) frequency offsets `[i*M + r]`.
    bias: Vec<f64>,
    /// Dense per-(node, replica) SHIL table.
    shil_m: Vec<f64>,
    shil_psi: Vec<f64>,
    shil_ks: Vec<f64>,
    /// Per-replica SHIL ramp scale (the OIM ramp, one lane at a time).
    shil_scale: Vec<f64>,
    /// Per-(node, replica) diffusion σ `[i*M + r]` (defective rings 0).
    noise_sig: Vec<f64>,
    /// Per-replica noise amplitude (the value `noise_sig` lanes carry on
    /// functional rings).
    noise_amp: Vec<f64>,
    couplings_on: bool,
    shil_on: bool,
}

impl BatchKernel {
    /// Builds a batch kernel over `net`'s topology with `replicas` lanes.
    /// Every lane starts from the network's current state: its edge
    /// gating, frequency offsets, SHIL assignments and noise amplitude.
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0`.
    pub fn new(net: &PhaseNetwork, replicas: usize) -> Self {
        assert!(replicas > 0, "need at least one replica");
        Self::build(net, replicas, None)
    }

    /// Builds a **heterogeneous** batch kernel: lane `r` takes its edge
    /// weights, edge gating, noise amplitude, frequency offsets and SHIL
    /// assignments from `nets[r]`. All networks must share the topology
    /// and per-ring enables (they are typically clones of one base
    /// network with per-lane parameter overrides applied); the global
    /// coupling/SHIL enables are taken from `nets[0]` and must agree.
    ///
    /// Lane `r` of the resulting kernel is bit-identical to a
    /// single-replica kernel built from `nets[r]` alone — per-lane
    /// weights are *copied*, never rescaled, so no rounding can creep in
    /// between a swept lane and a standalone run at the same operating
    /// point.
    ///
    /// # Panics
    ///
    /// Panics if `nets` is empty or the networks disagree on topology,
    /// node enables, or the global coupling/SHIL enables.
    pub fn from_lanes(nets: &[PhaseNetwork]) -> Self {
        assert!(!nets.is_empty(), "need at least one lane network");
        let base = &nets[0];
        for (r, net) in nets.iter().enumerate() {
            assert_eq!(
                net.num_nodes(),
                base.num_nodes(),
                "lane {r} node count differs"
            );
            assert_eq!(
                net.edge_endpoints(),
                base.edge_endpoints(),
                "lane {r} topology differs"
            );
            assert!(
                (0..net.num_nodes()).all(|i| net.node_enabled(i) == base.node_enabled(i)),
                "lane {r} ring enables differ"
            );
            assert_eq!(
                net.couplings_enabled(),
                base.couplings_enabled(),
                "lane {r} global coupling enable differs"
            );
            assert_eq!(
                net.shil_enabled(),
                base.shil_enabled(),
                "lane {r} global SHIL enable differs"
            );
        }
        Self::build(base, nets.len(), Some(nets))
    }

    fn build(net: &PhaseNetwork, replicas: usize, lanes: Option<&[PhaseNetwork]>) -> Self {
        let n = net.num_nodes();
        let m = net.num_edges();
        let lane_net = |r: usize| lanes.map_or(net, |nets| &nets[r]);
        let mut edge_u = Vec::with_capacity(m);
        let mut edge_v = Vec::with_capacity(m);
        for &(u, v) in net.edge_endpoints() {
            edge_u.push(u);
            edge_v.push(v);
        }
        let mut base_weight = vec![0.0; m * replicas];
        for e in 0..m {
            for r in 0..replicas {
                base_weight[e * replicas + r] = lane_net(r).edge_weight(e);
            }
        }
        let node_enabled: Vec<bool> = (0..n).map(|i| net.node_enabled(i)).collect();
        let mut kernel = BatchKernel {
            num_nodes: n,
            replicas,
            edge_u,
            edge_v,
            base_weight,
            weight: vec![0.0; m * replicas],
            edge_on: vec![false; m * replicas],
            node_enabled,
            bias: vec![0.0; n * replicas],
            shil_m: vec![0.0; n * replicas],
            shil_psi: vec![0.0; n * replicas],
            shil_ks: vec![0.0; n * replicas],
            shil_scale: vec![1.0; replicas],
            noise_sig: vec![0.0; n * replicas],
            noise_amp: vec![0.0; replicas],
            couplings_on: net.couplings_enabled(),
            shil_on: net.shil_enabled(),
        };
        for e in 0..m {
            for r in 0..replicas {
                kernel.set_edge_enabled(e, r, lane_net(r).edge_enabled(e));
            }
        }
        for i in 0..n {
            for r in 0..replicas {
                kernel.set_bias(i, r, lane_net(r).delta_omega()[i]);
                kernel.set_shil(i, r, lane_net(r).shil_of(i));
            }
        }
        for r in 0..replicas {
            kernel.set_lane_noise_amplitude(r, lane_net(r).noise_amplitude());
        }
        kernel
    }

    /// Number of oscillators per replica.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of replicas (`M`).
    pub fn num_replicas(&self) -> usize {
        self.replicas
    }

    /// Length of the interleaved state vector (`n·M`).
    pub fn state_len(&self) -> usize {
        self.num_nodes * self.replicas
    }

    /// Index of node `i`, replica `r` in the interleaved state vector.
    #[inline(always)]
    pub fn idx(&self, node: usize, replica: usize) -> usize {
        node * self.replicas + replica
    }

    /// Gates one coupling of one replica (that replica's `P_EN` bit).
    /// An enabled edge conducts at that replica's own lane weight.
    ///
    /// # Panics
    ///
    /// Panics if `edge` or `replica` is out of range.
    pub fn set_edge_enabled(&mut self, edge: usize, replica: usize, on: bool) {
        assert!(replica < self.replicas, "replica out of range");
        let (u, v) = (self.edge_u[edge] as usize, self.edge_v[edge] as usize);
        let live = on && self.node_enabled[u] && self.node_enabled[v];
        let lane = edge * self.replicas + replica;
        self.edge_on[lane] = live;
        self.weight[lane] = if live { self.base_weight[lane] } else { 0.0 };
    }

    /// Returns `true` if `edge` conducts for `replica`.
    pub fn edge_enabled(&self, edge: usize, replica: usize) -> bool {
        self.edge_on[edge * self.replicas + replica]
    }

    /// Raises every replica's `P_EN` on every edge — the start-of-run
    /// control state every lane-range solve begins from (defective
    /// rings' edges stay dead regardless).
    pub fn enable_all_edges(&mut self) {
        for e in 0..self.edge_u.len() {
            for r in 0..self.replicas {
                self.set_edge_enabled(e, r, true);
            }
        }
    }

    /// Sets the frequency offset of node `i` in `replica` (used for
    /// per-replica process-variation sampling). Defective rings stay 0.
    pub fn set_bias(&mut self, node: usize, replica: usize, delta_omega: f64) {
        let v = if self.node_enabled[node] {
            delta_omega
        } else {
            0.0
        };
        self.bias[node * self.replicas + replica] = v;
    }

    /// Assigns (or clears) the SHIL source of node `i` in `replica` —
    /// that replica's `SHIL_SEL` value. Defective rings keep `Ks = 0`.
    pub fn set_shil(&mut self, node: usize, replica: usize, shil: Option<Shil>) {
        let k = node * self.replicas + replica;
        match shil {
            Some(s) if self.node_enabled[node] => {
                self.shil_m[k] = s.order() as f64;
                self.shil_psi[k] = s.phase();
                self.shil_ks[k] = s.strength();
            }
            _ => {
                self.shil_m[k] = 0.0;
                self.shil_psi[k] = 0.0;
                self.shil_ks[k] = 0.0;
            }
        }
    }

    /// Frequency offset of node `i` in `replica`.
    pub fn bias_of(&self, node: usize, replica: usize) -> f64 {
        self.bias[node * self.replicas + replica]
    }

    /// Returns `true` if oscillator `node` is functional (ring `L_EN`).
    pub fn node_enabled(&self, node: usize) -> bool {
        self.node_enabled[node]
    }

    /// Global coupling enable (`G_EN`): skips the edge sweep when low.
    pub fn set_couplings_enabled(&mut self, on: bool) {
        self.couplings_on = on;
    }

    /// Global SHIL enable (`SHIL_EN`): skips the torque pass when low.
    pub fn set_shil_enabled(&mut self, on: bool) {
        self.shil_on = on;
    }

    /// Scales every SHIL strength of every replica at evaluation time
    /// (the OIM ramp applied uniformly).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is negative or non-finite.
    pub fn set_shil_scale(&mut self, scale: f64) {
        for r in 0..self.replicas {
            self.set_lane_shil_scale(r, scale);
        }
    }

    /// Scales the SHIL strengths of one replica at evaluation time —
    /// the per-lane OIM ramp (lanes that don't ramp keep scale 1).
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range or `scale` is negative or
    /// non-finite.
    pub fn set_lane_shil_scale(&mut self, replica: usize, scale: f64) {
        assert!(
            scale.is_finite() && scale >= 0.0,
            "SHIL scale must be finite and non-negative, got {scale}"
        );
        self.shil_scale[replica] = scale;
    }

    /// Sets the white-noise amplitude σ of every replica's functional
    /// rings.
    ///
    /// # Panics
    ///
    /// Panics if `sigma < 0`.
    pub fn set_noise_amplitude(&mut self, sigma: f64) {
        for r in 0..self.replicas {
            self.set_lane_noise_amplitude(r, sigma);
        }
    }

    /// Sets the white-noise amplitude σ of one replica (its σ-lane);
    /// defective rings stay at 0.
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range or `sigma < 0`.
    pub fn set_lane_noise_amplitude(&mut self, replica: usize, sigma: f64) {
        assert!(sigma >= 0.0, "noise amplitude must be non-negative");
        assert!(replica < self.replicas, "replica out of range");
        self.noise_amp[replica] = sigma;
        for i in 0..self.num_nodes {
            self.noise_sig[i * self.replicas + replica] =
                if self.node_enabled[i] { sigma } else { 0.0 };
        }
    }

    /// Noise amplitude σ of replica 0 (all replicas agree unless
    /// per-lane amplitudes were set — query
    /// [`BatchKernel::lane_noise_amplitude`] for a specific lane).
    pub fn noise_amplitude(&self) -> f64 {
        self.noise_amp[0]
    }

    /// Noise amplitude σ of one replica.
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range.
    pub fn lane_noise_amplitude(&self, replica: usize) -> f64 {
        self.noise_amp[replica]
    }

    /// Writes the interleaved drift into `dydt` (`scratch` holds the
    /// per-(edge, replica) sin pass; resized once, reused forever).
    ///
    /// Per replica the arithmetic is bit-identical to the scalar
    /// [`CoupledKernel`](crate::kernel::CoupledKernel): edges are visited
    /// in the same (edge-id) order and gated lanes contribute an exact
    /// `±0`.
    ///
    /// # Panics
    ///
    /// Panics if `y`/`dydt` lengths differ from [`BatchKernel::state_len`].
    pub fn drift_into(&self, y: &[f64], dydt: &mut [f64], scratch: &mut Vec<f64>) {
        assert_eq!(y.len(), self.state_len(), "phase vector size mismatch");
        assert_eq!(dydt.len(), self.state_len(), "drift vector size mismatch");
        let rr = self.replicas;
        dydt.copy_from_slice(&self.bias);
        if self.couplings_on {
            let m = self.edge_u.len();
            scratch.resize(m * rr, 0.0);
            // Pass 1: gather phase differences, M contiguous lanes per edge.
            for e in 0..m {
                let (u, v) = (self.edge_u[e] as usize * rr, self.edge_v[e] as usize * rr);
                let row = &mut scratch[e * rr..(e + 1) * rr];
                for r in 0..rr {
                    row[r] = y[u + r] - y[v + r];
                }
            }
            // Pass 2: branchless vectorized sin over the whole buffer.
            sin_slice(&mut scratch[..m * rr]);
            // Pass 3: scatter ±w·s — every (edge, replica) exactly once.
            for e in 0..m {
                let (u, v) = (self.edge_u[e] as usize * rr, self.edge_v[e] as usize * rr);
                let wrow = &self.weight[e * rr..(e + 1) * rr];
                let srow = &scratch[e * rr..(e + 1) * rr];
                for r in 0..rr {
                    let s = wrow[r] * srow[r];
                    dydt[u + r] -= s;
                    dydt[v + r] += s;
                }
            }
        }
        if self.shil_on {
            // Same three-pass shape as the edges: argument slice, one
            // vectorized `sin_slice` sweep over contiguous memory, then
            // apply. Bitwise-identical to the former per-element
            // `sin_fast` loop; `scratch` regrows at most once to
            // `max(m, n)·M` lanes.
            let len = self.num_nodes * rr;
            scratch.resize(len, 0.0);
            for (k, slot) in scratch[..len].iter_mut().enumerate() {
                *slot = self.shil_m[k] * y[k] - self.shil_psi[k];
            }
            sin_slice(&mut scratch[..len]);
            for i in 0..self.num_nodes {
                let row = i * rr;
                for r in 0..rr {
                    let k = row + r;
                    dydt[k] -= (self.shil_ks[k] * self.shil_scale[r]) * scratch[k];
                }
            }
        }
    }
}

/// Reusable Euler–Maruyama driver for [`BatchKernel`]s with one RNG per
/// replica. Owns all scratch; allocation-free after the first step.
#[derive(Debug, Clone, Default)]
pub struct BatchIntegrator {
    drift: Vec<f64>,
    noise: Vec<f64>,
    scratch: Vec<f64>,
}

impl BatchIntegrator {
    /// Creates an integrator with empty (lazily sized) buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// One interleaved Euler–Maruyama step for all replicas.
    ///
    /// # Panics
    ///
    /// Panics if `rngs.len() != kernel.num_replicas()`.
    pub fn step<R: Rng>(&mut self, kernel: &BatchKernel, y: &mut [f64], dt: f64, rngs: &mut [R]) {
        assert_eq!(
            rngs.len(),
            kernel.num_replicas(),
            "need exactly one RNG per replica"
        );
        let len = kernel.state_len();
        let rr = kernel.num_replicas();
        self.drift.resize(len, 0.0);
        self.noise.resize(len, 0.0);
        kernel.drift_into(y, &mut self.drift, &mut self.scratch);
        // Per-replica streams in sequential order (see fill_normal_batch):
        // one deviate per oscillator per step, σ = 0 lanes included.
        fill_normal_batch(&mut self.noise, rngs);
        let sqrt_dt = dt.sqrt();
        for i in 0..kernel.num_nodes() {
            let row = i * rr;
            for r in 0..rr {
                y[row + r] += dt * self.drift[row + r]
                    + sqrt_dt * kernel.noise_sig[row + r] * self.noise[row + r];
            }
        }
    }

    /// Integrates all replicas from `t0` to `t1` with steps of at most
    /// `dt` (final step shrinks to land on `t1`).
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0` or `t1 < t0`.
    pub fn integrate<R: Rng>(
        &mut self,
        kernel: &BatchKernel,
        y: &mut [f64],
        t0: f64,
        t1: f64,
        dt: f64,
        rngs: &mut [R],
    ) {
        assert!(dt > 0.0, "step size must be positive");
        assert!(t1 >= t0, "t1 must be >= t0");
        let mut t = t0;
        while t < t1 {
            let h = dt.min(t1 - t);
            self.step(kernel, y, h, rngs);
            t += h;
        }
    }

    /// Integrates `[t0, t1]` while ramping every replica's SHIL scale.
    /// Equivalent to [`BatchIntegrator::integrate_ramped_lanes`] with
    /// every lane ramped.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0`, `t1 < t0`, or the ramp returns a negative or
    /// non-finite scale.
    #[allow(clippy::too_many_arguments)]
    pub fn integrate_ramped<R: Rng>(
        &mut self,
        kernel: &mut BatchKernel,
        y: &mut [f64],
        t0: f64,
        t1: f64,
        dt: f64,
        rngs: &mut [R],
        ramp: impl Fn(f64) -> f64,
    ) {
        let all = vec![true; kernel.num_replicas()];
        self.integrate_ramped_lanes(kernel, y, t0, t1, dt, rngs, ramp, &all);
    }

    /// Integrates `[t0, t1]` while ramping the SHIL scale of the lanes
    /// marked in `ramped`; unmarked lanes hold scale 1 throughout. Uses
    /// the same step-indexed [`RampSchedule`](crate::kernel) as the
    /// scalar `KernelIntegrator::integrate_ramped`, so the step sequence
    /// is exactly the plain [`BatchIntegrator::integrate`] sequence:
    /// ramped lanes stay in lockstep with a sequential ramped run, and
    /// non-ramped lanes are bit-identical to a plain sequential run.
    /// All scales are restored to 1 on return.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0`, `t1 < t0`, `ramped.len()` differs from the
    /// replica count, or the ramp returns a negative or non-finite
    /// scale.
    #[allow(clippy::too_many_arguments)]
    pub fn integrate_ramped_lanes<R: Rng>(
        &mut self,
        kernel: &mut BatchKernel,
        y: &mut [f64],
        t0: f64,
        t1: f64,
        dt: f64,
        rngs: &mut [R],
        ramp: impl Fn(f64) -> f64,
        ramped: &[bool],
    ) {
        assert_eq!(
            ramped.len(),
            kernel.num_replicas(),
            "need one ramp flag per replica"
        );
        let schedule = crate::kernel::RampSchedule::new(t0, t1, dt);
        let mut t = t0;
        let mut step = 0usize;
        let mut cur_seg = usize::MAX;
        while t < t1 {
            let s = schedule.seg_of(step);
            if s != cur_seg {
                let scale = ramp(schedule.frac(s));
                for (r, &is_ramped) in ramped.iter().enumerate() {
                    if is_ramped {
                        kernel.set_lane_shil_scale(r, scale);
                    }
                }
                cur_seg = s;
            }
            let h = dt.min(t1 - t);
            self.step(kernel, y, h, rngs);
            t += h;
            step += 1;
        }
        kernel.set_shil_scale(1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelIntegrator;
    use msropm_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::TAU;

    /// Scalar reference: integrate one replica with the scalar kernel.
    fn scalar_run(net: &mut PhaseNetwork, seed: u64, duration: f64, dt: f64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut y = net.random_phases(&mut rng);
        let kernel = net.compile_kernel();
        KernelIntegrator::new().integrate(&kernel, &mut y, 0.0, duration, dt, &mut rng);
        y
    }

    #[test]
    fn batch_is_bit_identical_to_scalar_replicas() {
        let g = generators::kings_graph(4, 4);
        let mut net = PhaseNetwork::builder(&g)
            .coupling_strength(0.9)
            .noise(0.25)
            .build();
        net.set_shil_all(Shil::order2(0.0, 1.5));
        net.set_shil_enabled(true);

        let seeds = [5u64, 6, 7];
        let kernel = BatchKernel::new(&net, seeds.len());
        let mut rngs: Vec<StdRng> = seeds.iter().map(|&s| StdRng::seed_from_u64(s)).collect();
        // Initial phases drawn per replica in node order, as a sequential
        // run would.
        let n = net.num_nodes();
        let rr = seeds.len();
        let mut y = vec![0.0; n * rr];
        for r in 0..rr {
            for i in 0..n {
                y[i * rr + r] = rand::Rng::gen::<f64>(&mut rngs[r]) * TAU;
            }
        }
        BatchIntegrator::new().integrate(&kernel, &mut y, 0.0, 2.0, 0.01, &mut rngs);

        for (r, &seed) in seeds.iter().enumerate() {
            let solo = scalar_run(&mut net, seed, 2.0, 0.01);
            for i in 0..n {
                assert_eq!(
                    y[i * rr + r].to_bits(),
                    solo[i].to_bits(),
                    "node {i} replica {r} diverged from scalar run"
                );
            }
        }
    }

    #[test]
    fn per_replica_gating_is_independent() {
        // Path 0-1-2: replica 0 cuts edge (1,2), replica 1 keeps all.
        let g = generators::path_graph(3);
        let net = PhaseNetwork::builder(&g).coupling_strength(1.0).build();
        let e12 = g
            .find_edge(msropm_graph::NodeId::new(1), msropm_graph::NodeId::new(2))
            .unwrap()
            .index();
        let mut kernel = BatchKernel::new(&net, 2);
        kernel.set_edge_enabled(e12, 0, false);
        assert!(!kernel.edge_enabled(e12, 0));
        assert!(kernel.edge_enabled(e12, 1));
        // enable_all_edges restores the start-of-run state...
        kernel.enable_all_edges();
        assert!(kernel.edge_enabled(e12, 0));
        // ...and re-gating works on top of it.
        kernel.set_edge_enabled(e12, 0, false);

        let mut y = vec![0.0, 0.0, 1.0, 1.0, 2.5, 2.5]; // both replicas same start
        let mut rngs = vec![StdRng::seed_from_u64(1), StdRng::seed_from_u64(1)];
        BatchIntegrator::new().integrate(&kernel, &mut y, 0.0, 10.0, 0.01, &mut rngs);
        let node2 = |r: usize| y[kernel.idx(2, r)];
        assert_eq!(node2(0), 2.5, "gated replica's node 2 must not move");
        assert_ne!(node2(1), 2.5, "ungated replica's node 2 must move");
    }

    #[test]
    fn batch_ramp_matches_scalar_ramp() {
        let g = generators::kings_graph(3, 3);
        let mut net = PhaseNetwork::builder(&g)
            .coupling_strength(0.7)
            .noise(0.1)
            .build();
        net.set_shil_all(Shil::order2(0.0, 2.0));
        net.set_shil_enabled(true);

        // Scalar reference.
        let mut rng = StdRng::seed_from_u64(42);
        let mut y_scalar = net.random_phases(&mut rng);
        let mut k_scalar = net.compile_kernel();
        KernelIntegrator::new().integrate_ramped(
            &mut k_scalar,
            &mut y_scalar,
            0.0,
            3.0,
            0.01,
            &mut rng,
            |f| f,
            |_, _| {},
        );

        // One-replica batch.
        let mut k_batch = BatchKernel::new(&net, 1);
        let mut rngs = vec![StdRng::seed_from_u64(42)];
        let n = net.num_nodes();
        let mut y = vec![0.0; n];
        for slot in y.iter_mut() {
            *slot = rand::Rng::gen::<f64>(&mut rngs[0]) * TAU;
        }
        BatchIntegrator::new().integrate_ramped(
            &mut k_batch,
            &mut y,
            0.0,
            3.0,
            0.01,
            &mut rngs,
            |f| f,
        );
        for i in 0..n {
            assert_eq!(y[i].to_bits(), y_scalar[i].to_bits(), "node {i}");
        }
    }

    #[test]
    fn defective_ring_respected_in_batch() {
        let g = generators::path_graph(2);
        let mut net = PhaseNetwork::builder(&g)
            .coupling_strength(1.0)
            .noise(0.5)
            .build();
        net.set_node_enabled(0, false);
        let mut kernel = BatchKernel::new(&net, 2);
        kernel.set_noise_amplitude(0.5);
        // Re-asserting gating or bias on a dead ring keeps it dead.
        kernel.set_edge_enabled(0, 1, true);
        kernel.set_bias(0, 1, 3.0);
        kernel.set_shil(0, 1, Some(Shil::order2(0.0, 9.0)));
        kernel.set_shil_enabled(true);
        let mut y = vec![1.0, 1.0, 1.0, 1.0];
        let mut rngs = vec![StdRng::seed_from_u64(3), StdRng::seed_from_u64(4)];
        BatchIntegrator::new().integrate(&kernel, &mut y, 0.0, 2.0, 0.01, &mut rngs);
        assert_eq!(y[kernel.idx(0, 0)], 1.0);
        assert_eq!(
            y[kernel.idx(0, 1)],
            1.0,
            "dead ring moved via re-enabled state"
        );
        assert_ne!(y[kernel.idx(1, 0)], 1.0, "live ring must jitter");
    }

    #[test]
    #[should_panic(expected = "one RNG per replica")]
    fn wrong_rng_count_rejected() {
        let g = generators::path_graph(2);
        let net = PhaseNetwork::builder(&g).build();
        let kernel = BatchKernel::new(&net, 3);
        let mut y = vec![0.0; kernel.state_len()];
        let mut rngs = vec![StdRng::seed_from_u64(0)];
        BatchIntegrator::new().step(&kernel, &mut y, 0.01, &mut rngs);
    }
}
