//! Sub-harmonic injection-locking (SHIL) signal models.
//!
//! A SHIL source injects a perturbation at `m` times the oscillator
//! frequency; in the phase macromodel its entire effect is the torque
//! `−Ks·sin(m·θ − ψ)`, which has `m` stable equilibria at
//! `θ*_k = (ψ + 2πk)/m`. The *phase shift* `ψ` of the injected signal moves
//! those equilibria — the enabling observation of the multi-stage design
//! (paper §3.2 and Fig. 2(d)).

use std::f64::consts::TAU;

/// A sub-harmonic injection-lock source of order `m`, phase `ψ` and
/// strength `Ks`.
///
/// # Example
///
/// ```
/// use msropm_osc::Shil;
/// use std::f64::consts::PI;
///
/// // SHIL 1 of the paper: order 2, in phase with the reference.
/// let shil1 = Shil::order2(0.0, 1.0);
/// assert_eq!(shil1.stable_phases(), vec![0.0, PI]);
///
/// // SHIL 2: 180 degrees out of phase -> stabilizes 90/270 degrees.
/// let shil2 = Shil::order2(PI, 1.0);
/// let phases = shil2.stable_phases();
/// assert!((phases[0] - PI / 2.0).abs() < 1e-12);
/// assert!((phases[1] - 3.0 * PI / 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Shil {
    order: u32,
    phase: f64,
    strength: f64,
}

impl Shil {
    /// Creates a SHIL source.
    ///
    /// # Panics
    ///
    /// Panics if `order == 0`, `strength < 0`, or `phase` is non-finite.
    pub fn new(order: u32, phase: f64, strength: f64) -> Self {
        assert!(order >= 1, "SHIL order must be >= 1");
        assert!(strength >= 0.0, "SHIL strength must be non-negative");
        assert!(phase.is_finite(), "SHIL phase must be finite");
        Shil {
            order,
            phase: phase.rem_euclid(TAU),
            strength,
        }
    }

    /// Second-order SHIL (the paper's workhorse): binarizes phases.
    pub fn order2(phase: f64, strength: f64) -> Self {
        Shil::new(2, phase, strength)
    }

    /// Third-order SHIL, as used by the single-stage 3-coloring ROPM of the
    /// paper's ref \[14\]: locks phases to three equally spaced values.
    pub fn order3(phase: f64, strength: f64) -> Self {
        Shil::new(3, phase, strength)
    }

    /// Injection order `m` (the sub-harmonic ratio).
    pub fn order(&self) -> u32 {
        self.order
    }

    /// Phase shift `ψ` of the injected signal, in `[0, 2π)`.
    pub fn phase(&self) -> f64 {
        self.phase
    }

    /// Injection strength `Ks` (rad/ns in this workspace's units).
    pub fn strength(&self) -> f64 {
        self.strength
    }

    /// Returns a copy with a different strength (used for strength sweeps).
    pub fn with_strength(self, strength: f64) -> Self {
        Shil::new(self.order, self.phase, strength)
    }

    /// The phase-domain torque `−Ks·sin(m·θ − ψ)` exerted on an oscillator
    /// at phase `theta`.
    pub fn torque(&self, theta: f64) -> f64 {
        -self.strength * (self.order as f64 * theta - self.phase).sin()
    }

    /// Potential energy `−(Ks/m)·cos(m·θ − ψ)` whose negative gradient is
    /// [`Shil::torque`].
    pub fn potential(&self, theta: f64) -> f64 {
        -(self.strength / self.order as f64) * (self.order as f64 * theta - self.phase).cos()
    }

    /// The `m` stable equilibrium phases `(ψ + 2πk)/m`, sorted ascending in
    /// `[0, 2π)`.
    pub fn stable_phases(&self) -> Vec<f64> {
        let m = self.order as f64;
        let mut phases: Vec<f64> = (0..self.order)
            .map(|k| ((self.phase + TAU * k as f64) / m).rem_euclid(TAU))
            .collect();
        phases.sort_by(|a, b| a.partial_cmp(b).expect("phases are finite"));
        phases
    }
}

/// SHIL phase `ψ_g` for group `g` of `num_groups` at one solution stage.
///
/// The multi-stage generalization (paper §3.2: *"this scheme can be extended
/// to capture an arbitrary number of different stable phases ... by
/// increasing the number of SHILs that are shifted in phase"*): with `G`
/// groups, group `g` receives a second-order SHIL with `ψ_g = 2πg/G`, whose
/// stable pair is `{πg/G, πg/G + π}`. The union over all groups covers `2G`
/// equally spaced phases:
///
/// - stage 2 (`G = 2`): ψ ∈ {0°, 180°} → phases {0°,180°} ∪ {90°,270°};
/// - stage 3 (`G = 4`): ψ ∈ {0°, 90°, 180°, 270°} → all 8 multiples of 45°.
///
/// # Panics
///
/// Panics if `num_groups == 0` or `group >= num_groups`.
///
/// # Example
///
/// ```
/// use msropm_osc::stage_shil_phase;
/// use std::f64::consts::PI;
///
/// assert_eq!(stage_shil_phase(0, 2), 0.0);
/// assert_eq!(stage_shil_phase(1, 2), PI);
/// assert_eq!(stage_shil_phase(1, 4), PI / 2.0);
/// ```
pub fn stage_shil_phase(group: usize, num_groups: usize) -> f64 {
    assert!(num_groups >= 1, "need at least one group");
    assert!(group < num_groups, "group {group} out of {num_groups}");
    TAU * group as f64 / num_groups as f64
}

/// Checks that `theta` is a *stable* equilibrium of the SHIL torque, i.e.
/// torque is ~0 and its derivative is negative (restoring).
pub fn is_stable_equilibrium(shil: &Shil, theta: f64, tol: f64) -> bool {
    let m = shil.order() as f64;
    let arg = m * theta - shil.phase();
    arg.sin().abs() < tol && arg.cos() > 0.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn order2_stable_phases_match_paper() {
        // Fig. 2(d): SHIL 1 -> 0/180, SHIL 2 (180 deg shifted) -> 90/270.
        let s1 = Shil::order2(0.0, 0.5);
        let p1 = s1.stable_phases();
        assert!((p1[0] - 0.0).abs() < 1e-12);
        assert!((p1[1] - PI).abs() < 1e-12);

        let s2 = Shil::order2(PI, 0.5);
        let p2 = s2.stable_phases();
        assert!((p2[0] - PI / 2.0).abs() < 1e-12);
        assert!((p2[1] - 3.0 * PI / 2.0).abs() < 1e-12);
    }

    #[test]
    fn order3_three_equally_spaced() {
        let s = Shil::order3(0.0, 1.0);
        let p = s.stable_phases();
        assert_eq!(p.len(), 3);
        assert!((p[1] - TAU / 3.0).abs() < 1e-12);
        assert!((p[2] - 2.0 * TAU / 3.0).abs() < 1e-12);
    }

    #[test]
    fn stable_phases_are_stable_equilibria() {
        for shil in [
            Shil::order2(0.0, 1.0),
            Shil::order2(PI, 1.0),
            Shil::order3(1.1, 0.7),
            Shil::new(4, 2.2, 0.3),
        ] {
            for theta in shil.stable_phases() {
                assert!(
                    is_stable_equilibrium(&shil, theta, 1e-9),
                    "{theta} unstable for {shil:?}"
                );
            }
        }
    }

    #[test]
    fn midpoints_are_unstable() {
        let shil = Shil::order2(0.0, 1.0);
        // PI/2 sits between the stable phases 0 and PI: torque vanishes but
        // the equilibrium is repelling.
        assert!(!is_stable_equilibrium(&shil, PI / 2.0, 1e-9));
    }

    #[test]
    fn torque_is_negative_gradient_of_potential() {
        let shil = Shil::new(3, 0.4, 0.8);
        let h = 1e-6;
        for theta in [0.0, 0.5, 1.7, 3.0, 5.9] {
            let grad = (shil.potential(theta + h) - shil.potential(theta - h)) / (2.0 * h);
            assert!((shil.torque(theta) + grad).abs() < 1e-6);
        }
    }

    #[test]
    fn torque_restores_toward_stable_phase() {
        let shil = Shil::order2(0.0, 1.0);
        // Slightly past 0: negative torque pulls back; slightly before:
        // positive torque pushes forward.
        assert!(shil.torque(0.1) < 0.0);
        assert!(shil.torque(-0.1) > 0.0);
        // Near PI likewise.
        assert!(shil.torque(PI + 0.1) < 0.0);
        assert!(shil.torque(PI - 0.1) > 0.0);
    }

    #[test]
    fn stage_phases_cover_all_colors() {
        // Stage 3 with 4 groups: union of stable pairs = 8 phases 45 deg apart.
        let mut all: Vec<f64> = (0..4)
            .flat_map(|g| Shil::order2(stage_shil_phase(g, 4), 1.0).stable_phases())
            .collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(all.len(), 8);
        for (k, phase) in all.iter().enumerate() {
            assert!((phase - k as f64 * TAU / 8.0).abs() < 1e-12);
        }
    }

    #[test]
    fn phase_normalized_into_tau() {
        let s = Shil::order2(-PI, 1.0);
        assert!((s.phase() - PI).abs() < 1e-12);
        let t = Shil::order2(3.0 * TAU + 0.25, 1.0);
        assert!((t.phase() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn with_strength_preserves_geometry() {
        let s = Shil::order2(PI, 1.0).with_strength(0.2);
        assert_eq!(s.strength(), 0.2);
        assert_eq!(s.order(), 2);
        assert!((s.phase() - PI).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "order must be >= 1")]
    fn zero_order_rejected() {
        Shil::new(0, 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "group 2 out of 2")]
    fn group_out_of_range() {
        stage_shil_phase(2, 2);
    }
}
