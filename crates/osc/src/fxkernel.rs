//! Fixed-point phase kernel: the Q-format integer backend behind the
//! same `drift_into` contract as [`crate::batch::BatchKernel`].
//!
//! # Why a second numeric stack
//!
//! The float kernels have plateaued: `sin_fast` already vectorizes the
//! edge pass, and the next SIMD rung (explicit `f64x4`/intrinsics) is
//! blocked on stable Rust. An ASIC built from these oscillators does
//! not integrate IEEE doubles either — it accumulates *quantized phase
//! counts* in registers that wrap. This module is that machine's
//! numeric model, and it happens to also be the fastest RHS path on
//! commodity CPUs: everything in the hot loop is `i32` adds, shifts and
//! a 4 KiB table lookup, which the auto-vectorizer handles twice as
//! wide as `f64` lanes and without a polynomial in sight.
//!
//! # Phase format: binary turns (Q0.32)
//!
//! A phase is an `i32` whose **unsigned** reinterpretation counts
//! `2^32`-ths of a full turn: `θ = 2π · (q as u32) / 2^32`. This is the
//! classic DDS phase-accumulator format, chosen over a literal Q3.28
//! radian format for one decisive property: **wrapping arithmetic is
//! exact arithmetic mod 2π**. Phase reduction — a `rem_euclid(TAU)`
//! with rounding error in float land — is free and exact here; overflow
//! in any intermediate sum is not a bug but the correct group
//! operation. A bonus: `m·θ` for the SHIL torque is a single
//! `wrapping_mul`, exact mod 2π for any integer order.
//!
//! # Compile-time quantization
//!
//! The integrator walks a uniform step grid (every step is exactly
//! `dt`; windows that are not an exact multiple of `dt` round their
//! step count up, mirroring the float loop's step *count* without its
//! shrunken landing step — the hardware has one clock, not a fractional
//! last cycle). That makes `dt` a compile-time constant of the kernel,
//! so every rate is folded into a per-**step** increment when the
//! kernel is built:
//!
//! ```text
//! wq   = round(dt·K_uv / 2π · 2^32)        (per edge per lane, i32)
//! bq   = round(dt·Δω_i / 2π · 2^32)        (per node per lane, i32)
//! ksq  = round(dt·Ks_i / 2π · 2^32)        (per node per lane, i32)
//! ```
//!
//! One RHS evaluation is then pure integer gather → LUT → scatter:
//! `dq_u -= (wq · sinq(q_u − q_v)) >> 30`, accumulated with wrapping
//! adds. No division, no float, no rounding mode to disagree across
//! platforms: the kernel arithmetic is bit-exact everywhere.
//!
//! # Sine: quarter-wave LUT, linear interpolation
//!
//! [`sin_turns`] returns Q1.30 (`2^30` = amplitude 1.0) from a
//! 1025-entry quarter-wave table (4 KiB, entries are
//! `round(2^30·sin(π/2·j/1024))`) with 16-bit linear interpolation.
//! Quadrant folding is branchless bit-twiddling on the turn count (the
//! symmetry is exact in this format). Max absolute error is under
//! **4e-7** of unit amplitude (interpolation curvature ~2.9e-7 +
//! fraction truncation ~2.3e-8 + table rounding 2^-31), property-tested
//! against `f64::sin` over the full wrapped range. The table is built
//! once from [`crate::fastmath::sin_fast`] — our own polynomial, not
//! libm — so its entries are identical on every platform.
//!
//! # Noise: quantized ziggurat draws
//!
//! [`FxBatchIntegrator`] draws one `f64` standard-normal deviate per
//! oscillator per step through the exact
//! [`fill_normal_batch`](msropm_ode::sde::fill_normal_batch) stream the
//! float backend consumes (same RNG, same order — a lane's seed means
//! the same thing under either backend), then quantizes: the deviate is
//! rounded to Q16 and multiplied by a per-lane integer gain
//! `round(σ√dt/2π · 2^32 · 2^16)`, mirroring the betrusted-ec
//! ring-oscillator TRNG treatment of jitter as integer counts on a
//! phase accumulator. Trajectories are therefore bit-exact run-to-run
//! and across shard widths by the same per-lane-stream argument as the
//! float path.

use crate::fastmath::sin_fast;
use crate::network::PhaseNetwork;
use crate::shil::Shil;
use msropm_ode::sde::fill_normal_batch;
use rand::Rng;
use std::f64::consts::{FRAC_PI_2, TAU};
use std::sync::OnceLock;

/// One full turn in phase counts: `2^32` (as f64, for quantization).
const TURN: f64 = 4_294_967_296.0;

/// Quarter-wave resolution: `2^QSIN_BITS` segments over `[0, π/2]`.
const QSIN_BITS: u32 = 10;

/// Amplitude 1.0 in the Q1.30 output format of [`sin_turns`].
pub const QSIN_ONE: i32 = 1 << 30;

/// Maximum absolute error of [`sin_turns`], as a fraction of unit
/// amplitude (documented bound; property-tested with margin).
pub const QSIN_MAX_ERR: f64 = 4e-7;

/// Quantizes an angle in radians to binary turns (wrapping mod 2π).
///
/// Exactly invertible against [`turns_to_phase`]: for every `q`,
/// `phase_to_turns(turns_to_phase(q)) == q` (the relative error of the
/// round trip is ~2^-52, far below the 0.5-count rounding threshold) —
/// the property the golden-hash test uses to recover raw phase words
/// from a solution's `f64` phases.
#[inline]
pub fn phase_to_turns(theta: f64) -> i32 {
    ((theta * (TURN / TAU)).round() as i64) as u32 as i32
}

/// The phase angle in `[0, 2π)` a turn count represents.
#[inline]
pub fn turns_to_phase(q: i32) -> f64 {
    (q as u32 as f64) * (TAU / TURN)
}

/// Quantizes a rate already multiplied by `dt` (a per-step phase
/// increment in radians) to per-step turn counts, saturating at the
/// `i32` range (reachable only for |dt·rate| ≥ π, far beyond any valid
/// configuration).
#[inline]
fn quantize_step(radians_per_step: f64) -> i32 {
    let q = (radians_per_step * (TURN / TAU)).round();
    q.clamp(i32::MIN as f64, i32::MAX as f64) as i32
}

/// Per-lane noise gain: turn counts per unit deviate, in Q16
/// (`round(σ·√dt/2π · 2^32 · 2^16)`).
#[inline]
pub fn noise_gain(sigma: f64, dt: f64) -> i64 {
    (sigma * dt.sqrt() * (TURN / TAU) * 65_536.0).round() as i64
}

/// One quantized noise increment: the deviate is rounded to Q16 and
/// folded against a [`noise_gain`] (Q16·Q16 → >>32). This is the
/// single quantization the integer noise path applies on top of the
/// shared ziggurat stream.
#[inline]
pub fn noise_increment(gain: i64, xi: f64) -> i32 {
    let xi_q16 = (xi * 65_536.0).round() as i64;
    ((gain * xi_q16) >> 32) as i32
}

/// The quarter-wave table: `table[j] = round(2^30 · sin(π/2 · j/1024))`
/// for `j in 0..=1024`. Built from [`sin_fast`] (platform-independent);
/// `table[1024] = 2^30` exactly.
fn quarter_table() -> &'static [i32; 1025] {
    static TABLE: OnceLock<[i32; 1025]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0i32; 1025];
        for (j, slot) in t.iter_mut().enumerate() {
            let x = FRAC_PI_2 * (j as f64) / 1024.0;
            *slot = (sin_fast(x) * QSIN_ONE as f64).round() as i32;
        }
        t
    })
}

/// `sin(2π·q/2^32)` in Q1.30, via the quarter-wave LUT with 16-bit
/// linear interpolation. Branchless: quadrant folding is bit
/// arithmetic on the turn count (the format's symmetries are exact).
#[inline(always)]
fn sin_turns_core(table: &[i32; 1025], q: i32) -> i32 {
    let u = q as u32;
    // Top bit: second half-turn → negate. Next, double into the
    // half-turn domain and fold the second quarter onto the first by
    // complement (an exact mirror up to 1 LSB of the doubled phase,
    // i.e. 2^-32 of a turn — negligible against the table step).
    let neg = -(((u >> 31) & 1) as i64);
    let v = u << 1;
    let mirror = ((v as i32) >> 31) as u32;
    let v2 = v ^ mirror;
    // 10-bit segment index + 16-bit intra-segment fraction.
    let j = (v2 >> (31 - QSIN_BITS)) as usize;
    let frac = ((v2 >> 5) & 0xFFFF) as i64;
    let a = table[j] as i64;
    let b = table[j + 1] as i64;
    let s = a + (((b - a) * frac) >> 16);
    ((s ^ neg) - neg) as i32
}

/// `sin` of a phase in binary turns, Q1.30 result (see module docs for
/// the error bound).
#[inline]
pub fn sin_turns(q: i32) -> i32 {
    sin_turns_core(quarter_table(), q)
}

/// Applies [`sin_turns`] in place over a slice — the contiguous-buffer
/// shape the kernel's LUT pass runs (one table borrow hoisted out of
/// the loop; the body is straight-line integer code).
#[inline]
pub fn sin_turns_slice(qs: &mut [i32]) {
    let table = quarter_table();
    for q in qs.iter_mut() {
        *q = sin_turns_core(table, *q);
    }
}

/// The fixed-point multi-replica coupling kernel: the integer twin of
/// [`crate::batch::BatchKernel`], same SoA layout (`y[i*M + r]`), same
/// gating API, `dt` folded into every table at build time.
///
/// [`FxBatchKernel::drift_into`] honors the same three-pass
/// gather → sin → scatter contract, with one deliberate difference in
/// units: because the step size is compiled in, it writes **per-step
/// phase increments in turns** (apply with a wrapping add), not a
/// rate — the hardware-faithful formulation where an RHS evaluation
/// *is* one clock of the phase accumulator.
#[derive(Debug, Clone)]
pub struct FxBatchKernel {
    num_nodes: usize,
    replicas: usize,
    dt: f64,
    edge_u: Vec<u32>,
    edge_v: Vec<u32>,
    /// Ungated per-step weight lanes `[e*M + r]` (quantized `dt·K`).
    base_wq: Vec<i32>,
    /// Effective weight lanes; `0` encodes a gated edge.
    wq: Vec<i32>,
    /// Bookkeeping mirror of the gating (a weight may quantize to 0).
    edge_on: Vec<bool>,
    node_enabled: Vec<bool>,
    /// Per-(node, replica) per-step bias increments `[i*M + r]`.
    bias_q: Vec<i32>,
    /// Dense per-(node, replica) SHIL table: integer order, phase in
    /// turns, per-step strength in turn counts.
    shil_m: Vec<i32>,
    shil_psi_q: Vec<i32>,
    shil_ks_q: Vec<i32>,
    /// Per-replica SHIL ramp scale in Q16 (`65536` = 1.0).
    shil_scale_q16: Vec<i32>,
    /// Per-(node, replica) noise gains (Q16 turn counts per deviate;
    /// 0 for defective rings).
    noise_gain: Vec<i64>,
    /// Per-replica noise amplitude σ (the value the gain lanes encode).
    noise_amp: Vec<f64>,
    couplings_on: bool,
    shil_on: bool,
}

impl FxBatchKernel {
    /// Builds a homogeneous fixed-point kernel over `net`'s topology:
    /// every lane takes the network's current weights, gating, offsets,
    /// SHIL assignments and noise amplitude, quantized at `dt` per
    /// step.
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0` or `dt` is not positive and finite.
    pub fn new(net: &PhaseNetwork, replicas: usize, dt: f64) -> Self {
        assert!(replicas > 0, "need at least one replica");
        Self::build(net, replicas, None, dt)
    }

    /// Heterogeneous variant: lane `r` quantizes the weights, gating,
    /// noise, offsets and SHIL assignments of `nets[r]`, under the same
    /// topology/enable agreement rules as
    /// [`crate::batch::BatchKernel::from_lanes`].
    ///
    /// # Panics
    ///
    /// Panics if `nets` is empty, the networks disagree on topology,
    /// node enables or the global enables, or `dt` is invalid.
    pub fn from_lanes(nets: &[PhaseNetwork], dt: f64) -> Self {
        assert!(!nets.is_empty(), "need at least one lane network");
        let base = &nets[0];
        for (r, net) in nets.iter().enumerate() {
            assert_eq!(
                net.num_nodes(),
                base.num_nodes(),
                "lane {r} node count differs"
            );
            assert_eq!(
                net.edge_endpoints(),
                base.edge_endpoints(),
                "lane {r} topology differs"
            );
            assert!(
                (0..net.num_nodes()).all(|i| net.node_enabled(i) == base.node_enabled(i)),
                "lane {r} ring enables differ"
            );
            assert_eq!(
                net.couplings_enabled(),
                base.couplings_enabled(),
                "lane {r} global coupling enable differs"
            );
            assert_eq!(
                net.shil_enabled(),
                base.shil_enabled(),
                "lane {r} global SHIL enable differs"
            );
        }
        Self::build(base, nets.len(), Some(nets), dt)
    }

    fn build(net: &PhaseNetwork, replicas: usize, lanes: Option<&[PhaseNetwork]>, dt: f64) -> Self {
        assert!(dt.is_finite() && dt > 0.0, "step size must be positive");
        let n = net.num_nodes();
        let m = net.num_edges();
        let lane_net = |r: usize| lanes.map_or(net, |nets| &nets[r]);
        let mut edge_u = Vec::with_capacity(m);
        let mut edge_v = Vec::with_capacity(m);
        for &(u, v) in net.edge_endpoints() {
            edge_u.push(u);
            edge_v.push(v);
        }
        let mut base_wq = vec![0i32; m * replicas];
        for e in 0..m {
            for r in 0..replicas {
                base_wq[e * replicas + r] = quantize_step(dt * lane_net(r).edge_weight(e));
            }
        }
        let node_enabled: Vec<bool> = (0..n).map(|i| net.node_enabled(i)).collect();
        let mut kernel = FxBatchKernel {
            num_nodes: n,
            replicas,
            dt,
            edge_u,
            edge_v,
            base_wq,
            wq: vec![0; m * replicas],
            edge_on: vec![false; m * replicas],
            node_enabled,
            bias_q: vec![0; n * replicas],
            shil_m: vec![0; n * replicas],
            shil_psi_q: vec![0; n * replicas],
            shil_ks_q: vec![0; n * replicas],
            shil_scale_q16: vec![65_536; replicas],
            noise_gain: vec![0; n * replicas],
            noise_amp: vec![0.0; replicas],
            couplings_on: net.couplings_enabled(),
            shil_on: net.shil_enabled(),
        };
        for e in 0..m {
            for r in 0..replicas {
                kernel.set_edge_enabled(e, r, lane_net(r).edge_enabled(e));
            }
        }
        for i in 0..n {
            for r in 0..replicas {
                kernel.set_bias(i, r, lane_net(r).delta_omega()[i]);
                kernel.set_shil(i, r, lane_net(r).shil_of(i));
            }
        }
        for r in 0..replicas {
            kernel.set_lane_noise_amplitude(r, lane_net(r).noise_amplitude());
        }
        kernel
    }

    /// Number of oscillators per replica.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of replicas (`M`).
    pub fn num_replicas(&self) -> usize {
        self.replicas
    }

    /// Length of the interleaved state vector (`n·M`).
    pub fn state_len(&self) -> usize {
        self.num_nodes * self.replicas
    }

    /// Index of node `i`, replica `r` in the interleaved state vector.
    #[inline(always)]
    pub fn idx(&self, node: usize, replica: usize) -> usize {
        node * self.replicas + replica
    }

    /// The step size every rate table was quantized at.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Gates one coupling of one replica (its `P_EN` bit); an enabled
    /// edge conducts at that replica's quantized lane weight.
    ///
    /// # Panics
    ///
    /// Panics if `edge` or `replica` is out of range.
    pub fn set_edge_enabled(&mut self, edge: usize, replica: usize, on: bool) {
        assert!(replica < self.replicas, "replica out of range");
        let (u, v) = (self.edge_u[edge] as usize, self.edge_v[edge] as usize);
        let live = on && self.node_enabled[u] && self.node_enabled[v];
        let lane = edge * self.replicas + replica;
        self.edge_on[lane] = live;
        self.wq[lane] = if live { self.base_wq[lane] } else { 0 };
    }

    /// Returns `true` if `edge` conducts for `replica`.
    pub fn edge_enabled(&self, edge: usize, replica: usize) -> bool {
        self.edge_on[edge * self.replicas + replica]
    }

    /// Raises every replica's `P_EN` on every edge (defective rings'
    /// edges stay dead regardless).
    pub fn enable_all_edges(&mut self) {
        for e in 0..self.edge_u.len() {
            for r in 0..self.replicas {
                self.set_edge_enabled(e, r, true);
            }
        }
    }

    /// Sets the frequency offset of node `i` in `replica` (radians per
    /// unit time; quantized to per-step turn counts). Defective rings
    /// stay 0.
    pub fn set_bias(&mut self, node: usize, replica: usize, delta_omega: f64) {
        let v = if self.node_enabled[node] {
            quantize_step(self.dt * delta_omega)
        } else {
            0
        };
        self.bias_q[node * self.replicas + replica] = v;
    }

    /// Per-step bias increment of node `i` in `replica`, in turn counts
    /// (for the mixed-reinit drift loop that advances lanes by hand).
    pub fn bias_step_of(&self, node: usize, replica: usize) -> i32 {
        self.bias_q[node * self.replicas + replica]
    }

    /// Assigns (or clears) the SHIL source of node `i` in `replica`,
    /// quantizing its phase to turns and its strength to per-step turn
    /// counts. Defective rings keep strength 0.
    pub fn set_shil(&mut self, node: usize, replica: usize, shil: Option<Shil>) {
        let k = node * self.replicas + replica;
        match shil {
            Some(s) if self.node_enabled[node] => {
                self.shil_m[k] = s.order() as i32;
                self.shil_psi_q[k] = phase_to_turns(s.phase());
                self.shil_ks_q[k] = quantize_step(self.dt * s.strength());
            }
            _ => {
                self.shil_m[k] = 0;
                self.shil_psi_q[k] = 0;
                self.shil_ks_q[k] = 0;
            }
        }
    }

    /// Returns `true` if oscillator `node` is functional (ring `L_EN`).
    pub fn node_enabled(&self, node: usize) -> bool {
        self.node_enabled[node]
    }

    /// Global coupling enable (`G_EN`): skips the edge sweep when low.
    pub fn set_couplings_enabled(&mut self, on: bool) {
        self.couplings_on = on;
    }

    /// Global SHIL enable (`SHIL_EN`): skips the torque pass when low.
    pub fn set_shil_enabled(&mut self, on: bool) {
        self.shil_on = on;
    }

    /// Scales every replica's SHIL strengths at evaluation time (the
    /// OIM ramp), quantized to Q16.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is negative or non-finite.
    pub fn set_shil_scale(&mut self, scale: f64) {
        for r in 0..self.replicas {
            self.set_lane_shil_scale(r, scale);
        }
    }

    /// Scales one replica's SHIL strengths at evaluation time (Q16).
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range or `scale` is negative or
    /// non-finite.
    pub fn set_lane_shil_scale(&mut self, replica: usize, scale: f64) {
        assert!(
            scale.is_finite() && scale >= 0.0,
            "SHIL scale must be finite and non-negative, got {scale}"
        );
        self.shil_scale_q16[replica] = (scale * 65_536.0).round() as i32;
    }

    /// Sets the white-noise amplitude σ of every replica.
    ///
    /// # Panics
    ///
    /// Panics if `sigma < 0`.
    pub fn set_noise_amplitude(&mut self, sigma: f64) {
        for r in 0..self.replicas {
            self.set_lane_noise_amplitude(r, sigma);
        }
    }

    /// Sets the white-noise amplitude σ of one replica (its quantized
    /// gain lane); defective rings stay at 0.
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range or `sigma < 0`.
    pub fn set_lane_noise_amplitude(&mut self, replica: usize, sigma: f64) {
        assert!(sigma >= 0.0, "noise amplitude must be non-negative");
        assert!(replica < self.replicas, "replica out of range");
        self.noise_amp[replica] = sigma;
        let gain = noise_gain(sigma, self.dt);
        for i in 0..self.num_nodes {
            self.noise_gain[i * self.replicas + replica] =
                if self.node_enabled[i] { gain } else { 0 };
        }
    }

    /// Noise amplitude σ of replica 0.
    pub fn noise_amplitude(&self) -> f64 {
        self.noise_amp[0]
    }

    /// Noise amplitude σ of one replica.
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range.
    pub fn lane_noise_amplitude(&self, replica: usize) -> f64 {
        self.noise_amp[replica]
    }

    /// Writes the interleaved **per-step phase increments** (turn
    /// counts) into `dq`. Apply with `y[k] = y[k].wrapping_add(dq[k])`.
    ///
    /// Unlike the float kernel's three-pass gather → `sin_slice` →
    /// scatter shape, the fixed-point hot loop is **fused**: each
    /// (edge, replica) does gather, LUT sine, and scatter in one step,
    /// and the SHIL pass likewise. The float kernel buys SIMD by
    /// staging arguments for a vectorizable polynomial sweep; the LUT
    /// sine is two table loads either way, so staging it through a
    /// scratch buffer would only add two full passes of memory traffic
    /// over `m·M` words. `scratch` is accepted (and left untouched) so
    /// the two backends keep the same call shape. The per-element
    /// arithmetic and its order are identical to the staged form —
    /// fusion is invisible to the bit-exactness contract.
    ///
    /// # Panics
    ///
    /// Panics if `y`/`dq` lengths differ from
    /// [`FxBatchKernel::state_len`].
    pub fn drift_into(&self, y: &[i32], dq: &mut [i32], scratch: &mut Vec<i32>) {
        assert_eq!(y.len(), self.state_len(), "phase vector size mismatch");
        assert_eq!(dq.len(), self.state_len(), "increment vector size mismatch");
        let _ = scratch;
        let table = quarter_table();
        let rr = self.replicas;
        let n = self.num_nodes;
        dq.copy_from_slice(&self.bias_q);
        if self.couplings_on {
            let m = self.edge_u.len();
            // Fused per-edge pass: wrapped phase difference → LUT sine
            // → scatter `±(wq·s)>>30` to both endpoints; every
            // (edge, replica) exactly once, wrapping adds are exact
            // mod-2π accumulation.
            for e in 0..m {
                let (u, v) = (self.edge_u[e] as usize * rr, self.edge_v[e] as usize * rr);
                let wrow = &self.wq[e * rr..(e + 1) * rr];
                for r in 0..rr {
                    let s = sin_turns_core(table, y[u + r].wrapping_sub(y[v + r]));
                    let c = ((wrow[r] as i64 * s as i64) >> 30) as i32;
                    dq[u + r] = dq[u + r].wrapping_sub(c);
                    dq[v + r] = dq[v + r].wrapping_add(c);
                }
            }
        }
        if self.shil_on {
            // Fused dense pass: arg = m·θ − ψ (exact mod 2π by
            // construction), LUT sine, torque apply.
            for i in 0..n {
                let row = i * rr;
                for r in 0..rr {
                    let k = row + r;
                    let arg = y[k]
                        .wrapping_mul(self.shil_m[k])
                        .wrapping_sub(self.shil_psi_q[k]);
                    let s = sin_turns_core(table, arg);
                    let ks = (self.shil_ks_q[k] as i64 * self.shil_scale_q16[r] as i64) >> 16;
                    let torque = ((ks * s as i64) >> 30) as i32;
                    dq[k] = dq[k].wrapping_sub(torque);
                }
            }
        }
    }

    /// Number of integrator steps the uniform grid takes to cover
    /// `[t0, t1]` at this kernel's `dt`: the float loop's step *count*
    /// (`ceil((t1−t0)/dt)`), every step a full `dt`.
    ///
    /// # Panics
    ///
    /// Panics if `t1 < t0`.
    pub fn steps_for(&self, t0: f64, t1: f64) -> usize {
        assert!(t1 >= t0, "t1 must be >= t0");
        ((t1 - t0) / self.dt).ceil() as usize
    }
}

/// Reusable fixed-point Euler–Maruyama driver for [`FxBatchKernel`]s:
/// one RNG per replica, per-step increments applied with wrapping adds,
/// noise via quantized ziggurat draws (see the module docs).
/// Allocation-free after the first step.
#[derive(Debug, Clone, Default)]
pub struct FxBatchIntegrator {
    delta: Vec<i32>,
    scratch: Vec<i32>,
    noise: Vec<f64>,
}

impl FxBatchIntegrator {
    /// Creates an integrator with empty (lazily sized) buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// One fixed-point Euler–Maruyama step for all replicas:
    /// `q += drift_q + round(gain·ξ)`, everything wrapping.
    ///
    /// # Panics
    ///
    /// Panics if `rngs.len() != kernel.num_replicas()`.
    pub fn step<R: Rng>(&mut self, kernel: &FxBatchKernel, y: &mut [i32], rngs: &mut [R]) {
        assert_eq!(
            rngs.len(),
            kernel.num_replicas(),
            "need exactly one RNG per replica"
        );
        let len = kernel.state_len();
        self.delta.resize(len, 0);
        self.noise.resize(len, 0.0);
        kernel.drift_into(y, &mut self.delta, &mut self.scratch);
        // The same per-replica deviate streams as the float backend:
        // one draw per oscillator per step, σ = 0 lanes included.
        fill_normal_batch(&mut self.noise, rngs);
        for (k, q) in y.iter_mut().enumerate() {
            let inc = noise_increment(kernel.noise_gain[k], self.noise[k]);
            *q = q.wrapping_add(self.delta[k]).wrapping_add(inc);
        }
    }

    /// Integrates all replicas over `[t0, t1]` on the uniform step grid
    /// (see [`FxBatchKernel::steps_for`]).
    ///
    /// # Panics
    ///
    /// Panics if `t1 < t0`, or `dt` differs from the kernel's compiled
    /// step size (the rate tables would be stale).
    pub fn integrate<R: Rng>(
        &mut self,
        kernel: &FxBatchKernel,
        y: &mut [i32],
        t0: f64,
        t1: f64,
        dt: f64,
        rngs: &mut [R],
    ) {
        assert_eq!(
            dt.to_bits(),
            kernel.dt().to_bits(),
            "dt differs from the kernel's compiled step size"
        );
        for _ in 0..kernel.steps_for(t0, t1) {
            self.step(kernel, y, rngs);
        }
    }

    /// Integrates `[t0, t1]` while ramping the SHIL scale of the lanes
    /// marked in `ramped`, on the same step-indexed
    /// [`RampSchedule`](crate::kernel) as the float integrators — the
    /// step sequence is exactly the plain [`FxBatchIntegrator::integrate`]
    /// sequence, so ramped and plain lanes mix freely. All scales are
    /// restored to 1 on return.
    ///
    /// # Panics
    ///
    /// Panics if `t1 < t0`, `dt` differs from the kernel's compiled
    /// step, `ramped.len()` differs from the replica count, or the ramp
    /// returns a negative or non-finite scale.
    #[allow(clippy::too_many_arguments)]
    pub fn integrate_ramped_lanes<R: Rng>(
        &mut self,
        kernel: &mut FxBatchKernel,
        y: &mut [i32],
        t0: f64,
        t1: f64,
        dt: f64,
        rngs: &mut [R],
        ramp: impl Fn(f64) -> f64,
        ramped: &[bool],
    ) {
        assert_eq!(
            dt.to_bits(),
            kernel.dt().to_bits(),
            "dt differs from the kernel's compiled step size"
        );
        assert_eq!(
            ramped.len(),
            kernel.num_replicas(),
            "need one ramp flag per replica"
        );
        let schedule = crate::kernel::RampSchedule::new(t0, t1, dt);
        let mut cur_seg = usize::MAX;
        for step in 0..kernel.steps_for(t0, t1) {
            let s = schedule.seg_of(step);
            if s != cur_seg {
                let scale = ramp(schedule.frac(s));
                for (r, &is_ramped) in ramped.iter().enumerate() {
                    if is_ramped {
                        kernel.set_lane_shil_scale(r, scale);
                    }
                }
                cur_seg = s;
            }
            self.step(kernel, y, rngs);
        }
        kernel.set_shil_scale(1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msropm_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lut_sine_within_stated_bound_over_full_range() {
        // Dense sweep of the full wrapped range: every 2^16-th count
        // plus the exact segment boundaries and quadrant seams.
        let mut worst = 0.0f64;
        let mut check = |q: i32| {
            let got = sin_turns(q) as f64 / QSIN_ONE as f64;
            let want = turns_to_phase(q).sin();
            worst = worst.max((got - want).abs());
        };
        let mut u: u32 = 0;
        loop {
            check(u as i32);
            let (next, wrapped) = u.overflowing_add(1 << 16);
            if wrapped {
                break;
            }
            u = next;
        }
        for j in 0..4096u32 {
            check((j << 20) as i32); // every interpolation segment start
        }
        for q in [0i32, i32::MIN, i32::MAX, 1 << 30, -(1 << 30), -1, 1] {
            check(q);
        }
        assert!(worst < QSIN_MAX_ERR, "max LUT sine error {worst:e}");
    }

    #[test]
    fn lut_sine_is_odd_and_exact_at_cardinal_points() {
        // Exact zeros at 0 and half turn; the peaks sit within the
        // 1-count deficit the complement fold costs at the very top of
        // the quarter wave (still ~1e-9 of amplitude, far inside the
        // stated bound). Odd symmetry holds to within one interpolation
        // LSB for the same reason.
        assert_eq!(sin_turns(0), 0);
        assert_eq!(sin_turns(i32::MIN), 0); // half turn
        assert!((QSIN_ONE - sin_turns(1 << 30)) <= 1); // quarter turn
        assert!((QSIN_ONE + sin_turns(-(1 << 30))) <= 1); // three quarters
        for q in [1, 77, 1 << 20, (1 << 30) - 3, 0x1234_5678] {
            let asym = (sin_turns(-q) as i64 + sin_turns(q) as i64).abs();
            assert!(asym <= 32, "odd symmetry off by {asym} counts at {q}");
        }
    }

    #[test]
    fn phase_round_trip_is_exact() {
        // phase_to_turns(turns_to_phase(q)) == q for every word the
        // solver can produce — the golden-hash recovery property.
        let mut q: u32 = 0;
        loop {
            let w = q as i32;
            assert_eq!(phase_to_turns(turns_to_phase(w)), w, "round trip at {q:#x}");
            let (next, wrapped) = q.overflowing_add(0x0001_0001); // odd stride hits both halves
            if wrapped {
                break;
            }
            q = next;
        }
        for w in [0i32, 1, -1, i32::MIN, i32::MAX, 1 << 30, -(1 << 28)] {
            assert_eq!(phase_to_turns(turns_to_phase(w)), w);
        }
    }

    #[test]
    fn wrapping_subtraction_is_phase_difference() {
        // A difference across the wrap point equals the principal
        // difference: (small) - (almost a full turn) is a small
        // positive angle, not a huge negative one.
        let a = phase_to_turns(0.01);
        let b = phase_to_turns(TAU - 0.01);
        let d = a.wrapping_sub(b);
        assert!((turns_to_phase(d) - 0.02).abs() < 1e-8);
    }

    #[test]
    fn fx_drift_matches_float_kernel_within_quantization_bound() {
        // The integer drift (converted back to radians) agrees with the
        // float kernel's dt-scaled drift to within the stated
        // quantization budget, on a gated heterogeneous graph.
        use crate::batch::BatchKernel;
        let g = generators::kings_graph(5, 5);
        let mut net = PhaseNetwork::builder(&g)
            .coupling_strength(0.9)
            .noise(0.2)
            .build();
        net.set_shil_all(Shil::order2(1.3, 0.4));
        net.set_shil_enabled(true);
        let dt = 0.01;
        let rr = 3;
        let fk = BatchKernel::new(&net, rr);
        let mut xk = FxBatchKernel::new(&net, rr, dt);
        let mut fk = fk;
        // Gate a few (edge, lane) pairs on both kernels identically.
        for (e, r) in [(0usize, 0usize), (5, 1), (17, 2), (30, 0)] {
            fk.set_edge_enabled(e, r, false);
            xk.set_edge_enabled(e, r, false);
        }
        let mut rng = StdRng::seed_from_u64(77);
        let n = net.num_nodes();
        let mut yf = vec![0.0f64; n * rr];
        let mut yq = vec![0i32; n * rr];
        for (f, q) in yf.iter_mut().zip(yq.iter_mut()) {
            let theta = rng.gen::<f64>() * TAU;
            *q = phase_to_turns(theta);
            // Evaluate the float kernel at the *quantized* phase so the
            // comparison isolates arithmetic error from input rounding.
            *f = turns_to_phase(*q);
        }
        let mut df = vec![0.0f64; n * rr];
        let mut dq = vec![0i32; n * rr];
        fk.drift_into(&yf, &mut df, &mut Vec::new());
        xk.drift_into(&yq, &mut dq, &mut Vec::new());
        // Budget per element: LUT error (4e-7 of each |dt·w| term) plus
        // one count of rounding per accumulated term (weights, bias,
        // SHIL, product floors).
        let count = TAU / TURN;
        for i in 0..n {
            for r in 0..rr {
                let k = i * rr + r;
                let got = {
                    // dq is a wrapped increment; |true value| << half a
                    // turn here, so the signed word is the value.
                    dq[k] as f64 * count
                };
                let want = dt * df[k];
                let terms = (g.degree(msropm_graph::NodeId::new(i)) + 2) as f64;
                let budget = 4e-7 * dt * (terms * 0.9 + 0.4) + 2.0 * terms * count;
                assert!(
                    (got - want).abs() < budget,
                    "node {i} lane {r}: fx {got:e} vs float {want:e} (budget {budget:e})"
                );
            }
        }
    }

    #[test]
    fn fx_batch_lanes_are_bit_identical_to_single_replica_runs() {
        // The SoA sweep must be bit-exact against integrating each lane
        // alone — the same property the float batch kernel holds.
        let g = generators::kings_graph(4, 4);
        let mut net = PhaseNetwork::builder(&g)
            .coupling_strength(0.8)
            .noise(0.3)
            .build();
        net.set_shil_all(Shil::order2(0.0, 1.1));
        net.set_shil_enabled(true);
        let dt = 0.01;
        let seeds = [9u64, 10, 11];
        let rr = seeds.len();
        let n = net.num_nodes();
        let kernel = FxBatchKernel::new(&net, rr, dt);
        let mut rngs: Vec<StdRng> = seeds.iter().map(|&s| StdRng::seed_from_u64(s)).collect();
        let mut y = vec![0i32; n * rr];
        for r in 0..rr {
            for i in 0..n {
                y[i * rr + r] = phase_to_turns(rngs[r].gen::<f64>() * TAU);
            }
        }
        FxBatchIntegrator::new().integrate(&kernel, &mut y, 0.0, 2.0, dt, &mut rngs);

        for (r, &seed) in seeds.iter().enumerate() {
            let solo_kernel = FxBatchKernel::new(&net, 1, dt);
            let mut solo_rngs = vec![StdRng::seed_from_u64(seed)];
            let mut ys = vec![0i32; n];
            for (i, slot) in ys.iter_mut().enumerate() {
                let _ = i;
                *slot = phase_to_turns(solo_rngs[0].gen::<f64>() * TAU);
            }
            FxBatchIntegrator::new().integrate(&solo_kernel, &mut ys, 0.0, 2.0, dt, &mut solo_rngs);
            for i in 0..n {
                assert_eq!(y[i * rr + r], ys[i], "node {i} lane {r} diverged");
            }
        }
    }

    #[test]
    fn fx_run_is_reproducible_and_stays_near_float_run() {
        // Same seed twice -> identical words; and a short noiseless
        // anneal stays within the accumulated quantization drift of the
        // float run (loose bound: error compounds through the dynamics).
        let g = generators::kings_graph(3, 3);
        let net = PhaseNetwork::builder(&g).coupling_strength(1.0).build();
        let dt = 0.01;
        let kernel = FxBatchKernel::new(&net, 1, dt);
        let run = |seed: u64| {
            let mut rngs = vec![StdRng::seed_from_u64(seed)];
            let mut y = vec![0i32; net.num_nodes()];
            for slot in y.iter_mut() {
                *slot = phase_to_turns(rngs[0].gen::<f64>() * TAU);
            }
            FxBatchIntegrator::new().integrate(&kernel, &mut y, 0.0, 5.0, dt, &mut rngs);
            y
        };
        assert_eq!(run(3), run(3), "fixed-point run not reproducible");

        // Float twin from the same initial draw.
        use crate::batch::{BatchIntegrator, BatchKernel};
        let fkernel = BatchKernel::new(&net, 1);
        let mut rngs = vec![StdRng::seed_from_u64(3)];
        let mut yf = vec![0.0f64; net.num_nodes()];
        for slot in yf.iter_mut() {
            *slot = turns_to_phase(phase_to_turns(rngs[0].gen::<f64>() * TAU));
        }
        BatchIntegrator::new().integrate(&fkernel, &mut yf, 0.0, 5.0, dt, &mut rngs);
        let yq = run(3);
        for (q, f) in yq.iter().zip(&yf) {
            let dq = turns_to_phase(*q);
            let df = f.rem_euclid(TAU);
            let diff = (dq - df).abs().min(TAU - (dq - df).abs());
            assert!(diff < 2e-3, "trajectories drifted apart: {dq} vs {df}");
        }
    }

    #[test]
    fn defective_ring_is_frozen() {
        let g = generators::path_graph(3);
        let mut net = PhaseNetwork::builder(&g)
            .coupling_strength(1.0)
            .noise(0.4)
            .build();
        net.set_shil_all(Shil::order2(0.0, 2.0));
        net.set_shil_enabled(true);
        net.set_node_enabled(1, false);
        let mut kernel = FxBatchKernel::new(&net, 1, 0.01);
        kernel.set_noise_amplitude(0.4);
        kernel.set_bias(1, 0, 3.0);
        let frozen = phase_to_turns(1.7);
        let mut y = vec![phase_to_turns(0.3), frozen, phase_to_turns(2.9)];
        let mut rngs = vec![StdRng::seed_from_u64(9)];
        FxBatchIntegrator::new().integrate(&kernel, &mut y, 0.0, 3.0, 0.01, &mut rngs);
        assert_eq!(y[1], frozen, "defective ring moved");
        assert_ne!(y[0], phase_to_turns(0.3), "live ring must feel noise/SHIL");
    }

    #[test]
    #[should_panic(expected = "one RNG per replica")]
    fn wrong_rng_count_rejected() {
        let g = generators::path_graph(2);
        let net = PhaseNetwork::builder(&g).build();
        let kernel = FxBatchKernel::new(&net, 3, 0.01);
        let mut y = vec![0i32; kernel.state_len()];
        let mut rngs = vec![StdRng::seed_from_u64(0)];
        FxBatchIntegrator::new().step(&kernel, &mut y, &mut rngs);
    }

    #[test]
    #[should_panic(expected = "compiled step size")]
    fn stale_dt_rejected() {
        let g = generators::path_graph(2);
        let net = PhaseNetwork::builder(&g).build();
        let kernel = FxBatchKernel::new(&net, 1, 0.01);
        let mut y = vec![0i32; kernel.state_len()];
        let mut rngs = vec![StdRng::seed_from_u64(0)];
        FxBatchIntegrator::new().integrate(&kernel, &mut y, 0.0, 1.0, 0.02, &mut rngs);
    }
}
