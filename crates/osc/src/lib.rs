//! Phase-domain macromodel of coupled, injection-locked CMOS ring
//! oscillators — the scalable physics engine of the MSROPM reproduction.
//!
//! # Model
//!
//! Following the standard reduction for oscillator Ising machines (Wang &
//! Roychowdhury's OIM; Adler's locking equation; Neogy & Roychowdhury's SHIL
//! analysis, the paper's refs \[6\], \[19\], \[24\]), each ring oscillator is
//! represented by a single phase `θ_i` in a frame rotating at the common
//! free-running frequency. The network evolves as the Itô SDE
//!
//! ```text
//! dθ_i = [ Δω_i − Σ_j K_ij sin(θ_i − θ_j) − Ks_i sin(m θ_i − ψ_i) ] dt + σ dW_i
//! ```
//!
//! - `K_ij < 0` models the back-to-back-inverter (negative/inverting)
//!   couplings of the paper, which push neighbours **out of phase**;
//! - the `Ks sin(mθ − ψ)` term is the m-th order sub-harmonic injection
//!   lock: for `m = 2` it binarizes phases to `{ψ/2, ψ/2 + π}`, so SHIL 1
//!   (`ψ = 0`) yields {0°, 180°} and SHIL 2 (`ψ = 180°`) yields {90°, 270°},
//!   exactly the paper's Fig. 2(d);
//! - `σ dW` is white phase noise (jitter), the paper's randomization and
//!   annealing mechanism.
//!
//! The drift is the negative gradient of the energy
//!
//! ```text
//! E(θ) = −Σ_{(i,j)∈E} K_ij cos(θ_i−θ_j) − Σ_i (Ks_i/m) cos(m θ_i − ψ_i) − Σ_i Δω_i θ_i
//! ```
//!
//! so (noise aside) the network *descends* `E`; with `K_ij = −K_c` the first
//! sum is `+K_c Σ cos(θ_i−θ_j)`, the continuous relaxation of the max-cut /
//! vector-Potts Hamiltonian of paper Eq. (2)/(4).
//!
//! # Architecture: reference model vs. compiled kernels
//!
//! The crate separates *what the physics is* from *how it is stepped
//! fast*:
//!
//! - [`network::PhaseNetwork`] holds the mutable control state (`P_EN`
//!   edge gates, `SHIL_SEL` assignments, `G_EN`/`SHIL_EN`, defective
//!   rings) and implements the drift as a branchy CSR walk — the
//!   **reference** implementation that everything else is property-tested
//!   against.
//! - [`kernel::CoupledKernel`] is an immutable **compiled snapshot** of
//!   that gating state: a flat active-edge list visited once per step
//!   (`sin(θ_u−θ_v)` evaluated a single time, `±w·s` scattered to both
//!   endpoints), a dense SHIL torque table, and zeroed bias/noise for
//!   defective rings. [`kernel::KernelIntegrator`] owns all scratch, so
//!   stepping is allocation- and branch-free. Integration windows
//!   recompile on gating changes (cheap: O(n + m)); the SHIL ramp is a
//!   runtime scalar, not a recompile.
//! - [`batch::BatchKernel`] is the multi-replica (SoA) variant: M
//!   independent replicas interleaved replica-minor per node, advanced by
//!   one sweep per step with per-replica weight lanes for gating and
//!   per-replica RNGs for noise — bit-identical to M scalar runs, and the
//!   unit the experiment runner shards across threads.
//! - [`fxkernel::FxBatchKernel`] is the fixed-point twin of the batch
//!   kernel: phases as wrapping `i32` binary turns, every rate quantized
//!   to per-step turn counts at build time, sine from a quarter-wave
//!   integer LUT — the hardware-faithful (and fastest) RHS path,
//!   selected per solve through the core crate's `KernelBackend`.
//! - [`fastmath::sin_fast`] is the branchless polynomial `sin` those
//!   kernels vectorize over (< 4e-15 absolute error).
//!
//! # Example: two negatively coupled ROSCs end up antiphase
//!
//! ```
//! use msropm_graph::generators::path_graph;
//! use msropm_osc::{PhaseNetwork, principal_phase};
//!
//! let g = path_graph(2);
//! let mut net = PhaseNetwork::builder(&g).coupling_strength(1.0).build();
//! let mut phases = vec![0.3, 0.9];
//! net.relax(&mut phases, 50.0, 1e-2);
//! let diff = principal_phase(phases[0] - phases[1]);
//! assert!((diff - std::f64::consts::PI).abs() < 1e-3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod fastmath;
pub mod fxkernel;
pub mod kernel;
pub mod landscape;
pub mod lock;
pub mod network;
pub mod shil;
pub mod waveform;

pub use batch::{BatchIntegrator, BatchKernel};
pub use fxkernel::{FxBatchIntegrator, FxBatchKernel};
pub use kernel::{CoupledKernel, KernelIntegrator};
pub use lock::{binarize_phases, nearest_stable_phase, order_parameter, phase_to_spin};
pub use network::{PhaseNetwork, PhaseNetworkBuilder};
pub use shil::{stage_shil_phase, Shil};
pub use waveform::{principal_phase, unwrap_phases};
