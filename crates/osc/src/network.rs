//! The coupled-oscillator phase network: drift, noise, energy, relaxation.
//!
//! [`PhaseNetwork`] owns the gating state and the **reference** CSR drift
//! implementation ([`OdeSystem::eval`]); all integration entry points
//! (`relax`/`anneal`/…) compile the current gating into a
//! [`CoupledKernel`](crate::kernel::CoupledKernel) and run on that, which
//! is ~4× faster on paper-sized problems while agreeing with the
//! reference to < 1e-12 (property-tested).

use crate::kernel::{CoupledKernel, KernelIntegrator};
use crate::shil::Shil;
use msropm_graph::{EdgeMask, Graph};
use msropm_ode::fixed::{FixedStepper, Rk4};
use msropm_ode::system::{OdeSystem, SdeSystem};
use rand::Rng;
use std::f64::consts::TAU;

/// Builder for [`PhaseNetwork`] (see [`PhaseNetwork::builder`]).
#[derive(Debug, Clone)]
pub struct PhaseNetworkBuilder {
    num_nodes: usize,
    offsets: Vec<u32>,
    neighbors: Vec<(u32, u32)>,
    endpoints: Vec<(u32, u32)>,
    coupling: f64,
    noise: f64,
    freq_spread: f64,
}

impl PhaseNetworkBuilder {
    fn from_graph(g: &Graph) -> Self {
        let mut offsets = Vec::with_capacity(g.num_nodes() + 1);
        let mut neighbors = Vec::with_capacity(2 * g.num_edges());
        offsets.push(0);
        for v in g.nodes() {
            for (w, e) in g.neighbors(v) {
                neighbors.push((w.index() as u32, e.index() as u32));
            }
            offsets.push(neighbors.len() as u32);
        }
        let endpoints = g
            .edges()
            .map(|(_, u, v)| (u.index() as u32, v.index() as u32))
            .collect();
        PhaseNetworkBuilder {
            num_nodes: g.num_nodes(),
            offsets,
            neighbors,
            endpoints,
            coupling: 1.0,
            noise: 0.0,
            freq_spread: 0.0,
        }
    }

    /// Sets the coupling magnitude `K_c` (rad/ns). Couplings are applied
    /// with the B2B-inverter sign convention `K_ij = −K_c` (anti-phase).
    ///
    /// # Panics
    ///
    /// Panics if `coupling < 0`.
    pub fn coupling_strength(mut self, coupling: f64) -> Self {
        assert!(coupling >= 0.0, "coupling strength must be non-negative");
        self.coupling = coupling;
        self
    }

    /// Sets the white phase-noise amplitude `σ` (rad/√ns).
    ///
    /// # Panics
    ///
    /// Panics if `noise < 0`.
    pub fn noise(mut self, noise: f64) -> Self {
        assert!(noise >= 0.0, "noise amplitude must be non-negative");
        self.noise = noise;
        self
    }

    /// Sets the standard deviation of the per-oscillator free-running
    /// frequency offsets `Δω_i` (rad/ns); sampled when the network is built
    /// with [`PhaseNetworkBuilder::build_with_spread`].
    ///
    /// # Panics
    ///
    /// Panics if `spread < 0`.
    pub fn frequency_spread(mut self, spread: f64) -> Self {
        assert!(spread >= 0.0, "frequency spread must be non-negative");
        self.freq_spread = spread;
        self
    }

    /// Builds the network with identical oscillators (`Δω_i = 0`).
    pub fn build(self) -> PhaseNetwork {
        let num_nodes = self.num_nodes;
        let num_edges = self.endpoints.len();
        let coupling = self.coupling;
        PhaseNetwork {
            num_nodes,
            offsets: self.offsets,
            neighbors: self.neighbors,
            endpoints: self.endpoints,
            edge_weight: vec![-coupling; num_edges],
            edge_enabled: vec![true; num_edges],
            couplings_on: true,
            shil: vec![None; num_nodes],
            shil_on: false,
            delta_omega: vec![0.0; num_nodes],
            noise: self.noise,
            node_enabled: vec![true; num_nodes],
        }
    }

    /// Builds the network with Gaussian frequency offsets drawn from `rng`
    /// (std dev set by [`PhaseNetworkBuilder::frequency_spread`]).
    pub fn build_with_spread<R: Rng + ?Sized>(self, rng: &mut R) -> PhaseNetwork {
        let spread = self.freq_spread;
        let mut net = self.build();
        if spread > 0.0 {
            for dw in &mut net.delta_omega {
                *dw = spread * msropm_ode::sde::standard_normal(rng);
            }
        }
        net
    }
}

/// A network of coupled ring oscillators in the phase domain.
///
/// Holds the CSR coupling topology derived from a [`Graph`], per-edge
/// weights and enables (the `L_EN`/`P_EN` gates), per-node SHIL assignments
/// (the `SHIL_SEL` multiplexers) and the global coupling/SHIL enables
/// (`G_EN`, `SHIL_EN`). Implements [`OdeSystem`]/[`SdeSystem`] so any
/// integrator from `msropm-ode` can evolve it.
#[derive(Debug, Clone)]
pub struct PhaseNetwork {
    num_nodes: usize,
    offsets: Vec<u32>,
    neighbors: Vec<(u32, u32)>,
    endpoints: Vec<(u32, u32)>,
    edge_weight: Vec<f64>,
    edge_enabled: Vec<bool>,
    couplings_on: bool,
    shil: Vec<Option<Shil>>,
    shil_on: bool,
    delta_omega: Vec<f64>,
    noise: f64,
    node_enabled: Vec<bool>,
}

impl PhaseNetwork {
    /// Starts building a network over the coupling topology of `g`.
    pub fn builder(g: &Graph) -> PhaseNetworkBuilder {
        PhaseNetworkBuilder::from_graph(g)
    }

    /// Number of oscillators.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of couplings (graph edges).
    pub fn num_edges(&self) -> usize {
        self.edge_weight.len()
    }

    /// White phase-noise amplitude `σ`.
    pub fn noise_amplitude(&self) -> f64 {
        self.noise
    }

    /// Sets the white phase-noise amplitude `σ`.
    ///
    /// # Panics
    ///
    /// Panics if `noise < 0`.
    pub fn set_noise(&mut self, noise: f64) {
        assert!(noise >= 0.0, "noise amplitude must be non-negative");
        self.noise = noise;
    }

    /// Globally enables/disables all couplings (the `G_EN` gate for B2Bs).
    pub fn set_couplings_enabled(&mut self, on: bool) {
        self.couplings_on = on;
    }

    /// Returns `true` if couplings are globally enabled.
    pub fn couplings_enabled(&self) -> bool {
        self.couplings_on
    }

    /// Enables/disables one coupling (a `P_EN`/`L_EN` gate).
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    pub fn set_edge_enabled(&mut self, edge: usize, on: bool) {
        self.edge_enabled[edge] = on;
    }

    /// Returns `true` if the coupling `edge` is individually enabled.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    pub fn edge_enabled(&self, edge: usize) -> bool {
        self.edge_enabled[edge]
    }

    /// Applies a whole [`EdgeMask`] at once (the stage-transition `P_EN`
    /// write).
    ///
    /// # Panics
    ///
    /// Panics if the mask length differs from the edge count.
    pub fn apply_edge_mask(&mut self, mask: &EdgeMask) {
        assert_eq!(
            mask.len(),
            self.edge_enabled.len(),
            "mask/network size mismatch"
        );
        for e in 0..self.edge_enabled.len() {
            self.edge_enabled[e] = mask.is_enabled(msropm_graph::EdgeId::new(e));
        }
    }

    /// Sets the coupling magnitude `K_c` for **every** edge, replacing
    /// any per-edge weight overrides — the same recipe as
    /// [`PhaseNetworkBuilder::coupling_strength`] (all weights become
    /// `−coupling`, the B2B anti-phase sign). This is how per-lane
    /// coupling sweeps derive a lane network from a base network without
    /// any weight rescaling arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if `coupling < 0`.
    pub fn set_coupling_strength(&mut self, coupling: f64) {
        assert!(coupling >= 0.0, "coupling strength must be non-negative");
        for w in &mut self.edge_weight {
            *w = -coupling;
        }
    }

    /// Overrides the weight of one coupling (`K_ij`; negative = B2B).
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range or `weight` is non-finite.
    pub fn set_edge_weight(&mut self, edge: usize, weight: f64) {
        assert!(weight.is_finite(), "coupling weight must be finite");
        self.edge_weight[edge] = weight;
    }

    /// The weight of one coupling.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    pub fn edge_weight(&self, edge: usize) -> f64 {
        self.edge_weight[edge]
    }

    /// Edge endpoints `(u, v)` in dense edge-id order — the canonical
    /// visit order of the compiled kernels.
    pub fn edge_endpoints(&self) -> &[(u32, u32)] {
        &self.endpoints
    }

    /// Compiles the current gating state into a flat, edge-visited-once
    /// [`CoupledKernel`] (see `crate::kernel` for the architecture).
    pub fn compile_kernel(&self) -> CoupledKernel {
        CoupledKernel::compile(self)
    }

    /// Globally enables/disables SHIL injection (the `SHIL_EN` gate).
    pub fn set_shil_enabled(&mut self, on: bool) {
        self.shil_on = on;
    }

    /// Returns `true` if SHIL injection is globally enabled.
    pub fn shil_enabled(&self) -> bool {
        self.shil_on
    }

    /// Assigns a SHIL source to every oscillator (stage 1: all on SHIL 1).
    pub fn set_shil_all(&mut self, shil: Shil) {
        for s in &mut self.shil {
            *s = Some(shil);
        }
    }

    /// Assigns (or clears) the SHIL source of one oscillator — the
    /// `SHIL_SEL` multiplexer of the paper's Fig. 4(a).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set_shil_node(&mut self, node: usize, shil: Option<Shil>) {
        self.shil[node] = shil;
    }

    /// SHIL source currently selected for `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn shil_of(&self, node: usize) -> Option<Shil> {
        self.shil[node]
    }

    /// Per-oscillator free-running frequency offsets.
    pub fn delta_omega(&self) -> &[f64] {
        &self.delta_omega
    }

    /// Enables/disables one oscillator (the per-ring `L_EN` gate). A
    /// disabled oscillator models a **defective ring**: its phase freezes
    /// and it exchanges no coupling torque with its neighbours.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set_node_enabled(&mut self, node: usize, on: bool) {
        self.node_enabled[node] = on;
    }

    /// Returns `true` if oscillator `node` is enabled.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node_enabled(&self, node: usize) -> bool {
        self.node_enabled[node]
    }

    /// Number of enabled oscillators.
    pub fn num_enabled_nodes(&self) -> usize {
        self.node_enabled.iter().filter(|&&e| e).count()
    }

    /// Total phase-domain energy whose negative gradient is the drift:
    /// `E = −Σ_e w_e cos(θ_u−θ_v) − Σ_i (Ks_i/m)cos(mθ_i−ψ_i) − Σ_i Δω_i θ_i`,
    /// with disabled couplings and disabled SHIL contributing zero.
    #[allow(clippy::needless_range_loop)] // indexed walk over parallel arrays
    pub fn energy(&self, phases: &[f64]) -> f64 {
        assert_eq!(phases.len(), self.num_nodes, "phase vector size mismatch");
        let mut e = 0.0;
        // Each undirected edge is visited twice in CSR; halve the sum.
        if self.couplings_on {
            for i in 0..self.num_nodes {
                let (lo, hi) = (self.offsets[i] as usize, self.offsets[i + 1] as usize);
                for &(j, eid) in &self.neighbors[lo..hi] {
                    if self.edge_enabled[eid as usize] {
                        e += -0.5
                            * self.edge_weight[eid as usize]
                            * (phases[i] - phases[j as usize]).cos();
                    }
                }
            }
        }
        for i in 0..self.num_nodes {
            if self.shil_on {
                if let Some(shil) = &self.shil[i] {
                    e += shil.potential(phases[i]);
                }
            }
            e -= self.delta_omega[i] * phases[i];
        }
        e
    }

    /// The vector-Potts Hamiltonian of paper Eq. (4) with unit couplings
    /// over **all** graph edges (gating ignored):
    /// `H = Σ_{(i,j)∈E} cos(θ_i − θ_j)`.
    ///
    /// Minimizing `H` pushes adjacent oscillators apart in phase; for phases
    /// locked to the color targets, `H` counts satisfied/violated edges.
    pub fn vector_potts_hamiltonian(&self, phases: &[f64]) -> f64 {
        assert_eq!(phases.len(), self.num_nodes, "phase vector size mismatch");
        let mut h = 0.0;
        for i in 0..self.num_nodes {
            let (lo, hi) = (self.offsets[i] as usize, self.offsets[i + 1] as usize);
            for &(j, _) in &self.neighbors[lo..hi] {
                let j = j as usize;
                if j > i {
                    h += (phases[i] - phases[j]).cos();
                }
            }
        }
        h
    }

    /// Uniform random initial phases in `[0, 2π)` — the steady-state result
    /// of the paper's "turn on at random instants and drift by jitter"
    /// randomization.
    pub fn random_phases<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        (0..self.num_nodes)
            .map(|_| rng.gen::<f64>() * TAU)
            .collect()
    }

    /// Deterministic relaxation (gradient descent) for `duration` ns with
    /// RK4 steps of `dt` ns, via the compiled kernel. Used for noiseless
    /// analysis and tests.
    pub fn relax(&mut self, phases: &mut [f64], duration: f64, dt: f64) {
        let kernel = self.compile_kernel();
        Rk4::new().integrate(&kernel, phases, 0.0, duration, dt);
    }

    /// Stochastic annealing for `duration` ns with Euler–Maruyama steps of
    /// `dt` ns, drawing jitter from `rng`. This is the paper's
    /// "self-annealing" window. Runs on the compiled kernel; callers that
    /// integrate many windows should compile once and hold a
    /// [`KernelIntegrator`] instead (as `msropm-core` does).
    pub fn anneal<R: Rng + ?Sized>(
        &mut self,
        phases: &mut [f64],
        duration: f64,
        dt: f64,
        rng: &mut R,
    ) {
        let kernel = self.compile_kernel();
        KernelIntegrator::new().integrate(&kernel, phases, 0.0, duration, dt, rng);
    }

    /// Stochastic annealing that records `(t, θ)` samples via `observe`.
    pub fn anneal_observed<R: Rng + ?Sized>(
        &mut self,
        phases: &mut [f64],
        duration: f64,
        dt: f64,
        rng: &mut R,
        observe: impl FnMut(f64, &[f64]),
    ) {
        let kernel = self.compile_kernel();
        KernelIntegrator::new()
            .integrate_observed(&kernel, phases, 0.0, duration, dt, rng, observe);
    }

    /// Stochastic annealing with a **SHIL-strength ramp**: every assigned
    /// SHIL's strength is scaled by `ramp(t/duration)` (`ramp(0..=1) >= 0`)
    /// while integrating. Ramping the sub-harmonic injection from 0 to full
    /// strength is the classical OIM annealing refinement (Wang &
    /// Roychowdhury): phases order under the couplings first and discretize
    /// gradually instead of being quenched.
    ///
    /// The network's configured SHIL strengths are never modified; the
    /// ramp only scales the compiled kernel's torque table.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0`, `duration < 0`, or the ramp returns a negative
    /// scale.
    pub fn anneal_shil_ramped<R: Rng + ?Sized>(
        &mut self,
        phases: &mut [f64],
        duration: f64,
        dt: f64,
        rng: &mut R,
        ramp: impl Fn(f64) -> f64,
    ) {
        self.anneal_shil_ramped_observed(phases, duration, dt, rng, ramp, |_, _| {});
    }

    /// [`PhaseNetwork::anneal_shil_ramped`] with per-step observation:
    /// `observe(t, θ)` fires at `t = 0` and after every step across the
    /// whole segmented ramp (previously ramped windows could only be
    /// sampled at their end, which broke Fig. 3-style waveform dumps).
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0`, `duration < 0`, or the ramp returns a negative
    /// scale.
    pub fn anneal_shil_ramped_observed<R: Rng + ?Sized>(
        &mut self,
        phases: &mut [f64],
        duration: f64,
        dt: f64,
        rng: &mut R,
        ramp: impl Fn(f64) -> f64,
        observe: impl FnMut(f64, &[f64]),
    ) {
        assert!(duration >= 0.0, "duration must be non-negative");
        let mut kernel = self.compile_kernel();
        KernelIntegrator::new().integrate_ramped(
            &mut kernel,
            phases,
            0.0,
            duration,
            dt,
            rng,
            ramp,
            observe,
        );
    }
}

impl OdeSystem for PhaseNetwork {
    fn dim(&self) -> usize {
        self.num_nodes
    }

    fn eval(&self, _t: f64, y: &[f64], dydt: &mut [f64]) {
        assert_eq!(y.len(), self.num_nodes, "phase vector size mismatch");
        for i in 0..self.num_nodes {
            if !self.node_enabled[i] {
                dydt[i] = 0.0;
                continue;
            }
            let mut d = self.delta_omega[i];
            if self.couplings_on {
                let (lo, hi) = (self.offsets[i] as usize, self.offsets[i + 1] as usize);
                for &(j, eid) in &self.neighbors[lo..hi] {
                    if self.edge_enabled[eid as usize] && self.node_enabled[j as usize] {
                        d -= self.edge_weight[eid as usize] * (y[i] - y[j as usize]).sin();
                    }
                }
            }
            if self.shil_on {
                if let Some(shil) = &self.shil[i] {
                    d += shil.torque(y[i]);
                }
            }
            dydt[i] = d;
        }
    }
}

impl SdeSystem for PhaseNetwork {
    fn diffusion(&self, _t: f64, _y: &[f64], g_out: &mut [f64]) {
        for (g, &on) in g_out.iter_mut().zip(&self.node_enabled) {
            *g = if on { self.noise } else { 0.0 };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lock::phase_to_spin;
    use crate::waveform::principal_phase;
    use msropm_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::PI;

    #[test]
    fn negative_coupling_antiphase() {
        let g = generators::path_graph(2);
        let mut net = PhaseNetwork::builder(&g).coupling_strength(1.0).build();
        let mut phases = vec![0.2, 1.0];
        net.relax(&mut phases, 60.0, 1e-2);
        let d = principal_phase(phases[0] - phases[1]);
        assert!((d - PI).abs() < 1e-3, "phase difference {d}");
    }

    #[test]
    fn positive_coupling_in_phase() {
        let g = generators::path_graph(2);
        let mut net = PhaseNetwork::builder(&g).coupling_strength(1.0).build();
        net.set_edge_weight(0, 1.0); // ferromagnetic
        let mut phases = vec![0.2, 2.0];
        net.relax(&mut phases, 60.0, 1e-2);
        let d = principal_phase(phases[0] - phases[1]);
        assert!(d < 1e-3 || (TAU - d) < 1e-3, "phase difference {d}");
    }

    #[test]
    fn shil_binarizes_to_its_stable_pair() {
        let g = Graph::empty(4);
        let mut net = PhaseNetwork::builder(&g).build();
        let shil = Shil::order2(PI, 1.0); // SHIL 2: stable at 90/270 deg
        net.set_shil_all(shil);
        net.set_shil_enabled(true);
        let mut phases = vec![0.3, 1.8, 3.3, 5.5];
        net.relax(&mut phases, 40.0, 1e-2);
        for &p in &phases {
            let p = principal_phase(p);
            let d1 = (p - PI / 2.0).abs();
            let d2 = (p - 3.0 * PI / 2.0).abs();
            assert!(d1 < 1e-3 || d2 < 1e-3, "phase {p} not binarized");
        }
    }

    #[test]
    fn disabled_shil_has_no_effect() {
        let g = Graph::empty(1);
        let mut net = PhaseNetwork::builder(&g).build();
        net.set_shil_all(Shil::order2(0.0, 5.0));
        net.set_shil_enabled(false);
        let mut phases = vec![1.234];
        net.relax(&mut phases, 10.0, 1e-2);
        assert!((phases[0] - 1.234).abs() < 1e-12);
    }

    #[test]
    fn disabled_couplings_freeze_network() {
        let g = generators::complete_graph(3);
        let mut net = PhaseNetwork::builder(&g).coupling_strength(2.0).build();
        net.set_couplings_enabled(false);
        let mut phases = vec![0.1, 2.2, 4.4];
        let before = phases.clone();
        net.relax(&mut phases, 5.0, 1e-2);
        assert_eq!(phases, before);
    }

    #[test]
    fn per_edge_gating() {
        // Path 0-1-2; disable edge (1,2): node 2 must not move.
        let g = generators::path_graph(3);
        let mut net = PhaseNetwork::builder(&g).coupling_strength(1.0).build();
        let e12 = g
            .find_edge(msropm_graph::NodeId::new(1), msropm_graph::NodeId::new(2))
            .unwrap();
        net.set_edge_enabled(e12.index(), false);
        assert!(!net.edge_enabled(e12.index()));
        let mut phases = vec![0.0, 1.0, 2.5];
        net.relax(&mut phases, 20.0, 1e-2);
        assert!((phases[2] - 2.5).abs() < 1e-12, "gated node moved");
        let d = principal_phase(phases[0] - phases[1]);
        assert!((d - PI).abs() < 1e-3);
    }

    #[test]
    fn triangle_frustration_cannot_cut_all() {
        // Three mutually coupled oscillators: at most 2 of 3 edges can be
        // antiphase; the relaxed state is the 120-degree splay.
        let g = generators::complete_graph(3);
        let mut net = PhaseNetwork::builder(&g).coupling_strength(1.0).build();
        let mut phases = vec![0.05, 2.0, 4.5];
        net.relax(&mut phases, 120.0, 1e-2);
        // Pairwise separations all ~120 degrees.
        for i in 0..3 {
            for j in (i + 1)..3 {
                let d = principal_phase(phases[i] - phases[j]);
                let d = d.min(TAU - d);
                assert!((d - TAU / 3.0).abs() < 1e-2, "sep {d}");
            }
        }
    }

    #[test]
    fn energy_descends_without_noise() {
        let g = generators::kings_graph(3, 3);
        let mut net = PhaseNetwork::builder(&g).coupling_strength(0.7).build();
        let mut rng = StdRng::seed_from_u64(9);
        let mut phases = net.random_phases(&mut rng);
        let mut prev = net.energy(&phases);
        for _ in 0..20 {
            net.relax(&mut phases, 1.0, 1e-2);
            let e = net.energy(&phases);
            assert!(e <= prev + 1e-9, "energy rose: {prev} -> {e}");
            prev = e;
        }
    }

    #[test]
    fn drift_is_negative_energy_gradient() {
        let g = generators::kings_graph(2, 3);
        let mut net = PhaseNetwork::builder(&g).coupling_strength(0.8).build();
        net.set_shil_all(Shil::order2(0.4, 0.6));
        net.set_shil_enabled(true);
        let mut rng = StdRng::seed_from_u64(4);
        let phases = net.random_phases(&mut rng);
        let mut drift = vec![0.0; phases.len()];
        net.eval(0.0, &phases, &mut drift);
        let h = 1e-6;
        for i in 0..phases.len() {
            let mut p = phases.clone();
            p[i] += h;
            let ep = net.energy(&p);
            p[i] -= 2.0 * h;
            let em = net.energy(&p);
            let grad = (ep - em) / (2.0 * h);
            assert!(
                (drift[i] + grad).abs() < 1e-5,
                "node {i}: drift {} vs -grad {}",
                drift[i],
                -grad
            );
        }
    }

    #[test]
    fn coupled_shil_pair_lands_on_cut_colors() {
        // Two coupled oscillators + SHIL 1: they must end on *different*
        // binarized phases (0 and 180), i.e. the max-cut of a single edge.
        let g = generators::path_graph(2);
        let mut net = PhaseNetwork::builder(&g).coupling_strength(0.5).build();
        let mut phases = vec![1.0, 1.3];
        net.relax(&mut phases, 30.0, 1e-2);
        let shil = Shil::order2(0.0, 1.0);
        net.set_shil_all(shil);
        net.set_shil_enabled(true);
        net.relax(&mut phases, 30.0, 1e-2);
        let s0 = phase_to_spin(phases[0], &shil);
        let s1 = phase_to_spin(phases[1], &shil);
        assert_ne!(s0, s1, "coupled pair not cut: {phases:?}");
    }

    #[test]
    fn anneal_with_noise_is_reproducible_by_seed() {
        let g = generators::kings_graph(3, 3);
        let mut net = PhaseNetwork::builder(&g)
            .coupling_strength(0.5)
            .noise(0.3)
            .build();
        let run = |net: &mut PhaseNetwork, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut phases = net.random_phases(&mut rng);
            net.anneal(&mut phases, 5.0, 1e-2, &mut rng);
            phases
        };
        let a = run(&mut net, 7);
        let b = run(&mut net, 7);
        let c = run(&mut net, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn frequency_spread_sampling() {
        let g = Graph::empty(64);
        let mut rng = StdRng::seed_from_u64(2);
        let net = PhaseNetwork::builder(&g)
            .frequency_spread(0.1)
            .build_with_spread(&mut rng);
        let nonzero = net.delta_omega().iter().filter(|&&w| w != 0.0).count();
        assert_eq!(nonzero, 64);
        let mean: f64 = net.delta_omega().iter().sum::<f64>() / 64.0;
        assert!(mean.abs() < 0.1);
    }

    #[test]
    fn vector_potts_hamiltonian_counts_edges() {
        let g = generators::path_graph(3);
        let net = PhaseNetwork::builder(&g).build();
        // Both edges antiphase: H = -2. Both in phase: H = +2.
        assert!((net.vector_potts_hamiltonian(&[0.0, PI, 0.0]) + 2.0).abs() < 1e-12);
        assert!((net.vector_potts_hamiltonian(&[0.0, 0.0, 0.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dead_oscillator_is_frozen_and_invisible() {
        // Path 0-1-2 with node 1 dead: node 1 never moves, nodes 0 and 2
        // (not adjacent) receive no torque at all.
        let g = generators::path_graph(3);
        let mut net = PhaseNetwork::builder(&g).coupling_strength(1.0).build();
        net.set_node_enabled(1, false);
        assert!(!net.node_enabled(1));
        assert_eq!(net.num_enabled_nodes(), 2);
        let mut phases = vec![0.3, 1.7, 2.9];
        net.relax(&mut phases, 10.0, 1e-2);
        assert_eq!(phases, vec![0.3, 1.7, 2.9], "no live coupling exists");

        // Re-enable: the chain orders again.
        net.set_node_enabled(1, true);
        net.relax(&mut phases, 60.0, 1e-2);
        let d01 = principal_phase(phases[0] - phases[1]);
        assert!((d01 - PI).abs() < 1e-2);
    }

    #[test]
    fn dead_oscillator_receives_no_noise() {
        let g = Graph::empty(2);
        let mut net = PhaseNetwork::builder(&g).noise(1.0).build();
        net.set_node_enabled(0, false);
        let mut rng = StdRng::seed_from_u64(9);
        let mut phases = vec![1.0, 1.0];
        net.anneal(&mut phases, 5.0, 1e-2, &mut rng);
        assert_eq!(phases[0], 1.0, "dead node must not jitter");
        assert_ne!(phases[1], 1.0, "live node must jitter");
    }

    #[test]
    fn shil_ramp_binarizes_and_restores_strengths() {
        let g = Graph::empty(3);
        let mut net = PhaseNetwork::builder(&g).build();
        let shil = Shil::order2(0.0, 2.0);
        net.set_shil_all(shil);
        net.set_shil_enabled(true);
        let mut rng = StdRng::seed_from_u64(3);
        let mut phases = vec![0.7, 2.5, 5.0];
        net.anneal_shil_ramped(&mut phases, 30.0, 1e-2, &mut rng, |f| f);
        for &p in &phases {
            let e = crate::lock::lock_error(p, &shil);
            assert!(e < 0.05, "phase {p} not discretized after ramp (err {e})");
        }
        // Strengths restored to their configured values.
        for i in 0..3 {
            assert_eq!(net.shil_of(i).unwrap().strength(), 2.0);
        }
    }

    #[test]
    fn zero_ramp_means_no_shil() {
        let g = Graph::empty(1);
        let mut net = PhaseNetwork::builder(&g).build();
        net.set_shil_all(Shil::order2(0.0, 5.0));
        net.set_shil_enabled(true);
        let mut rng = StdRng::seed_from_u64(5);
        let mut phases = vec![1.0];
        net.anneal_shil_ramped(&mut phases, 5.0, 1e-2, &mut rng, |_| 0.0);
        assert!(
            (phases[0] - 1.0).abs() < 1e-9,
            "zero-scaled SHIL moved the phase"
        );
    }

    #[test]
    fn observed_anneal_reports_times() {
        let g = generators::path_graph(2);
        let mut net = PhaseNetwork::builder(&g).noise(0.1).build();
        let mut rng = StdRng::seed_from_u64(1);
        let mut phases = vec![0.0, 1.0];
        let mut count = 0;
        net.anneal_observed(&mut phases, 0.5, 0.1, &mut rng, |_, _| count += 1);
        assert_eq!(count, 6);
    }

    use msropm_graph::Graph;
}
