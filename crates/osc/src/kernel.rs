//! The compiled coupling kernel: the allocation-free, edge-visited-once
//! form of the phase-network drift used by every integration window.
//!
//! # Why compile?
//!
//! [`PhaseNetwork`]'s own [`OdeSystem::eval`] is the *reference*
//! implementation: a CSR walk that re-tests the `P_EN`/`L_EN` gating of
//! every neighbor on every step and evaluates `sin(θ_i − θ_j)` twice per
//! undirected edge (once from each endpoint). The gating state only
//! changes at window boundaries (the machine's stage transitions), so all
//! of that per-step branching is loop-invariant. [`CoupledKernel`]
//! compiles the current gating state once per window into:
//!
//! - a flat **active-edge list** (SoA: endpoint and weight arrays in
//!   edge-id order) visited **once** per step: the kernel evaluates
//!   `s = w·sin(θ_u − θ_v)` a single time and scatters `−s`/`+s` to the
//!   two endpoints (the drift is antisymmetric because `sin` is odd);
//! - a dense **SHIL torque table** (`Ks`, `m`, `ψ` per node, zeroed where
//!   SHIL is unassigned, globally disabled, or the ring is defective);
//! - per-node bias (`Δω`) and diffusion (`σ`) vectors with the defective
//!   rings already zeroed out.
//!
//! The hot path is three passes over contiguous buffers — gather phase
//! differences, [`sin_slice`](crate::fastmath::sin_slice) (branchless,
//! auto-vectorized), scatter — which measures ~4× faster than the CSR
//! walk on the paper's 2116-node King's graph (see
//! `crates/bench/src/bin/bench_phase_step.rs`).
//!
//! [`KernelIntegrator`] owns the drift/scratch buffers and a reusable
//! Euler–Maruyama loop, so a full multi-window anneal performs **zero
//! heap allocation** after the first step.
//!
//! # Numerical contract
//!
//! The kernel drift agrees with the naive [`PhaseNetwork`] eval to better
//! than 1e-12 absolute (property-tested in the workspace root): the only
//! differences are the per-node accumulation order and the polynomial
//! `sin` (|err| < 4e-15). The SHIL table multiplies by a runtime
//! `shil_scale`, so the OIM-style SHIL ramp only rescales one scalar
//! instead of recompiling.

use crate::fastmath::{sin_fast, sin_slice};
use crate::network::PhaseNetwork;
use msropm_ode::sde::standard_normal;
use msropm_ode::system::{OdeSystem, SdeSystem};
use rand::Rng;

/// An immutable, compiled snapshot of a [`PhaseNetwork`]'s gating state
/// (plus a mutable SHIL ramp scale). See the module docs.
#[derive(Debug, Clone)]
pub struct CoupledKernel {
    num_nodes: usize,
    /// Active-edge endpoints/weights, ascending edge id (SoA layout).
    edge_u: Vec<u32>,
    edge_v: Vec<u32>,
    edge_w: Vec<f64>,
    /// Per-node free-running frequency offset; 0 for defective rings.
    bias: Vec<f64>,
    /// Dense SHIL table; `ks == 0` encodes "no torque".
    shil_m: Vec<f64>,
    shil_psi: Vec<f64>,
    shil_ks: Vec<f64>,
    shil_scale: f64,
    shil_on: bool,
    /// Per-node diffusion coefficient; 0 for defective rings.
    noise: Vec<f64>,
}

impl CoupledKernel {
    /// Compiles the network's **current** gating state. An edge is kept
    /// iff couplings are globally on, its own `P_EN` is high and both
    /// endpoints are functional; the SHIL table is zeroed unless
    /// `SHIL_EN` is high.
    pub fn compile(net: &PhaseNetwork) -> Self {
        let n = net.num_nodes();
        let m = net.num_edges();
        let mut edge_u = Vec::with_capacity(m);
        let mut edge_v = Vec::with_capacity(m);
        let mut edge_w = Vec::with_capacity(m);
        if net.couplings_enabled() {
            for (e, &(u, v)) in net.edge_endpoints().iter().enumerate() {
                if net.edge_enabled(e)
                    && net.node_enabled(u as usize)
                    && net.node_enabled(v as usize)
                {
                    edge_u.push(u);
                    edge_v.push(v);
                    edge_w.push(net.edge_weight(e));
                }
            }
        }
        let shil_on = net.shil_enabled();
        let mut shil_m = vec![0.0; n];
        let mut shil_psi = vec![0.0; n];
        let mut shil_ks = vec![0.0; n];
        let mut bias = vec![0.0; n];
        let mut noise = vec![0.0; n];
        for i in 0..n {
            if !net.node_enabled(i) {
                continue;
            }
            bias[i] = net.delta_omega()[i];
            noise[i] = net.noise_amplitude();
            if shil_on {
                if let Some(shil) = net.shil_of(i) {
                    shil_m[i] = shil.order() as f64;
                    shil_psi[i] = shil.phase();
                    shil_ks[i] = shil.strength();
                }
            }
        }
        CoupledKernel {
            num_nodes: n,
            edge_u,
            edge_v,
            edge_w,
            bias,
            shil_m,
            shil_psi,
            shil_ks,
            shil_scale: 1.0,
            shil_on,
            noise,
        }
    }

    /// Number of oscillators.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edges that survived compilation (active couplings).
    pub fn num_active_edges(&self) -> usize {
        self.edge_w.len()
    }

    /// Scales every SHIL strength by `scale` at evaluation time — the
    /// OIM-style annealed-SHIL ramp without recompiling.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is negative or non-finite.
    pub fn set_shil_scale(&mut self, scale: f64) {
        assert!(
            scale.is_finite() && scale >= 0.0,
            "SHIL scale must be finite and non-negative, got {scale}"
        );
        self.shil_scale = scale;
    }

    /// The current SHIL ramp scale.
    pub fn shil_scale(&self) -> f64 {
        self.shil_scale
    }

    /// Per-node diffusion coefficients (σ, with defective rings zeroed).
    pub fn noise(&self) -> &[f64] {
        &self.noise
    }

    /// Writes the drift into `dydt` using `scratch` for the edge pass.
    ///
    /// This is the allocation-free hot path: `scratch` grows once to
    /// `max(active edges, nodes)` and is reused across steps (the edge
    /// pass and the SHIL pass each borrow it in turn). The arithmetic is
    /// identical (bitwise) to the [`OdeSystem::eval`] implementation; the
    /// buffer exists so the `sin` pass runs over contiguous memory and
    /// vectorizes.
    ///
    /// # Panics
    ///
    /// Panics if `y`/`dydt` lengths differ from [`CoupledKernel::num_nodes`].
    pub fn drift_into(&self, y: &[f64], dydt: &mut [f64], scratch: &mut Vec<f64>) {
        assert_eq!(y.len(), self.num_nodes, "phase vector size mismatch");
        assert_eq!(dydt.len(), self.num_nodes, "drift vector size mismatch");
        dydt.copy_from_slice(&self.bias);
        let m = self.edge_w.len();
        scratch.resize(m, 0.0);
        // Pass 1: gather phase differences.
        for ((d, u), v) in scratch.iter_mut().zip(&self.edge_u).zip(&self.edge_v) {
            *d = y[*u as usize] - y[*v as usize];
        }
        // Pass 2: branchless sin over contiguous memory (vectorized).
        sin_slice(scratch);
        // Pass 3: scatter ±w·s to both endpoints — each edge exactly once.
        for k in 0..m {
            let s = self.edge_w[k] * scratch[k];
            dydt[self.edge_u[k] as usize] -= s;
            dydt[self.edge_v[k] as usize] += s;
        }
        // SHIL pass, same three-pass shape as the edges: precompute the
        // argument slice, one vectorized `sin_slice` sweep, then apply.
        // Bitwise-identical to the scalar `shil_pass` (`sin_slice`
        // matches per-element `sin_fast` exactly); `scratch` regrows at
        // most once to `max(m, n)` and stays allocation-free after.
        if self.shil_on {
            let n = self.num_nodes;
            scratch.resize(n, 0.0);
            for i in 0..n {
                scratch[i] = self.shil_m[i] * y[i] - self.shil_psi[i];
            }
            sin_slice(&mut scratch[..n]);
            for i in 0..n {
                dydt[i] -= (self.shil_ks[i] * self.shil_scale) * scratch[i];
            }
        }
    }

    /// Adds the dense SHIL torque `−Ks·scale·sin(mθ − ψ)` for every node.
    /// Nodes without SHIL have `Ks = 0`, making the pass branch-free.
    fn shil_pass(&self, y: &[f64], dydt: &mut [f64]) {
        if !self.shil_on {
            return;
        }
        for i in 0..self.num_nodes {
            let torque = (self.shil_ks[i] * self.shil_scale)
                * sin_fast(self.shil_m[i] * y[i] - self.shil_psi[i]);
            dydt[i] -= torque;
        }
    }
}

impl OdeSystem for CoupledKernel {
    fn dim(&self) -> usize {
        self.num_nodes
    }

    /// Scratch-free single-pass variant, bitwise-identical to
    /// [`CoupledKernel::drift_into`] (same per-edge values in the same
    /// accumulation order). Lets the kernel drive any `msropm-ode`
    /// integrator (e.g. RK4 relaxation) through the standard trait.
    fn eval(&self, _t: f64, y: &[f64], dydt: &mut [f64]) {
        assert_eq!(y.len(), self.num_nodes, "phase vector size mismatch");
        dydt.copy_from_slice(&self.bias);
        for k in 0..self.edge_w.len() {
            let (u, v) = (self.edge_u[k] as usize, self.edge_v[k] as usize);
            let s = self.edge_w[k] * sin_fast(y[u] - y[v]);
            dydt[u] -= s;
            dydt[v] += s;
        }
        self.shil_pass(y, dydt);
    }
}

impl SdeSystem for CoupledKernel {
    fn diffusion(&self, _t: f64, _y: &[f64], g_out: &mut [f64]) {
        g_out.copy_from_slice(&self.noise);
    }
}

/// The segment schedule shared by the scalar and batch ramped
/// integrators. Both must stay in **exact lockstep** — same segment
/// count, same boundaries, same mid-segment ramp fractions — or the
/// batch solver's bit-identity-with-sequential contract breaks (step
/// sizes and per-step RNG consumption would diverge). Keeping the
/// arithmetic in one place makes that impossible to drift.
///
/// Segments are indexed by **step count**, not by time: a ramped window
/// performs exactly the step sequence of the plain
/// [`KernelIntegrator::integrate`] loop (`h = dt` except the final
/// landing step) and only the SHIL scale changes between steps. This is
/// what lets a batch mix ramped and non-ramped lanes — the non-ramped
/// lanes see the same step sizes and RNG consumption as a standalone
/// un-ramped run.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RampSchedule {
    segments: usize,
    steps_per_seg: usize,
}

impl RampSchedule {
    /// Plans ~10-step segments (1..=1000 of them) over the steps the
    /// plain loop takes to cover `[t0, t1]`.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0` or `t1 < t0`.
    pub(crate) fn new(t0: f64, t1: f64, dt: f64) -> Self {
        assert!(dt > 0.0, "step size must be positive");
        assert!(t1 >= t0, "t1 must be >= t0");
        let steps = (((t1 - t0) / dt).ceil() as usize).max(1);
        let segments = steps.div_ceil(10).clamp(1, 1000);
        RampSchedule {
            segments,
            steps_per_seg: steps.div_ceil(segments),
        }
    }

    /// Segment containing step `step` (0-based; steps past the planned
    /// count stay in the last segment).
    pub(crate) fn seg_of(&self, step: usize) -> usize {
        (step / self.steps_per_seg).min(self.segments - 1)
    }

    /// Mid-segment ramp abscissa for segment `s`.
    pub(crate) fn frac(&self, s: usize) -> f64 {
        (s as f64 + 0.5) / self.segments as f64
    }
}

/// A reusable Euler–Maruyama driver for [`CoupledKernel`]s.
///
/// Owns the drift and edge-scratch buffers, so integrating any number of
/// windows (across recompilations of the kernel — buffer sizes only
/// shrink or stay put for a fixed problem) allocates nothing after the
/// first step. One normal deviate is drawn per oscillator per step even
/// where σ = 0, so the RNG stream is independent of the gating state —
/// the property that makes seeded runs comparable across configurations.
#[derive(Debug, Clone, Default)]
pub struct KernelIntegrator {
    drift: Vec<f64>,
    scratch: Vec<f64>,
}

impl KernelIntegrator {
    /// Creates an integrator with empty (lazily sized) buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// One Euler–Maruyama step `y += f·dt + σ·√dt·ξ`.
    pub fn step<R: Rng + ?Sized>(
        &mut self,
        kernel: &CoupledKernel,
        y: &mut [f64],
        dt: f64,
        rng: &mut R,
    ) {
        let n = kernel.num_nodes();
        self.drift.resize(n, 0.0);
        kernel.drift_into(y, &mut self.drift, &mut self.scratch);
        let sqrt_dt = dt.sqrt();
        let noise = kernel.noise();
        for i in 0..n {
            let xi = standard_normal(rng);
            y[i] += dt * self.drift[i] + sqrt_dt * noise[i] * xi;
        }
    }

    /// Integrates from `t0` to `t1` with steps of at most `dt` (the final
    /// step shrinks to land on `t1`).
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0` or `t1 < t0`.
    pub fn integrate<R: Rng + ?Sized>(
        &mut self,
        kernel: &CoupledKernel,
        y: &mut [f64],
        t0: f64,
        t1: f64,
        dt: f64,
        rng: &mut R,
    ) {
        self.integrate_observed(kernel, y, t0, t1, dt, rng, |_, _| {});
    }

    /// Like [`KernelIntegrator::integrate`] with an observer invoked at
    /// `t0` and after every step.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0` or `t1 < t0`.
    #[allow(clippy::too_many_arguments)]
    pub fn integrate_observed<R: Rng + ?Sized>(
        &mut self,
        kernel: &CoupledKernel,
        y: &mut [f64],
        t0: f64,
        t1: f64,
        dt: f64,
        rng: &mut R,
        mut observe: impl FnMut(f64, &[f64]),
    ) {
        assert!(dt > 0.0, "step size must be positive");
        assert!(t1 >= t0, "t1 must be >= t0");
        observe(t0, y);
        let mut t = t0;
        while t < t1 {
            let h = dt.min(t1 - t);
            self.step(kernel, y, h, rng);
            t += h;
            observe(t, y);
        }
    }

    /// Integrates `[t0, t1]` while ramping the kernel's SHIL scale:
    /// steps are grouped into segments (ten steps each, capped at
    /// 1000 segments) and segment `s` runs with
    /// `scale = ramp((s + ½)/segments)`. The step sequence is exactly the
    /// plain [`KernelIntegrator::integrate`] sequence — segments switch
    /// the scale *between* steps and never split one. The observer fires
    /// at `t0` and after every step with absolute time, fixing the Fig. 3
    /// waveform dumps that previously collapsed ramped windows to one
    /// sample. The kernel's scale is restored to 1 on return.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0`, `t1 < t0`, or the ramp returns a negative or
    /// non-finite scale.
    #[allow(clippy::too_many_arguments)]
    pub fn integrate_ramped<R: Rng + ?Sized>(
        &mut self,
        kernel: &mut CoupledKernel,
        y: &mut [f64],
        t0: f64,
        t1: f64,
        dt: f64,
        rng: &mut R,
        ramp: impl Fn(f64) -> f64,
        mut observe: impl FnMut(f64, &[f64]),
    ) {
        let schedule = RampSchedule::new(t0, t1, dt);
        observe(t0, y);
        let mut t = t0;
        let mut step = 0usize;
        let mut cur_seg = usize::MAX;
        while t < t1 {
            let s = schedule.seg_of(step);
            if s != cur_seg {
                kernel.set_shil_scale(ramp(schedule.frac(s)));
                cur_seg = s;
            }
            let h = dt.min(t1 - t);
            self.step(kernel, y, h, rng);
            t += h;
            step += 1;
            observe(t, y);
        }
        kernel.set_shil_scale(1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shil::Shil;
    use msropm_graph::{generators, Graph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::TAU;

    fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn kernel_drift_matches_naive_eval() {
        let g = generators::kings_graph(5, 5);
        let mut net = PhaseNetwork::builder(&g).coupling_strength(0.8).build();
        net.set_shil_all(Shil::order2(0.3, 1.7));
        net.set_shil_enabled(true);
        let mut rng = StdRng::seed_from_u64(11);
        let y = net.random_phases(&mut rng);
        let mut naive = vec![0.0; y.len()];
        net.eval(0.0, &y, &mut naive);

        let kernel = net.compile_kernel();
        let mut fast = vec![0.0; y.len()];
        let mut scratch = Vec::new();
        kernel.drift_into(&y, &mut fast, &mut scratch);
        assert!(max_abs_diff(&naive, &fast) < 1e-12);

        // Trait path must agree bitwise with the scratch path.
        let mut via_trait = vec![0.0; y.len()];
        kernel.eval(0.0, &y, &mut via_trait);
        for (a, b) in fast.iter().zip(&via_trait) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn gated_edges_and_nodes_are_compiled_out() {
        let g = generators::kings_graph(4, 4);
        let mut net = PhaseNetwork::builder(&g).coupling_strength(1.0).build();
        let m = g.num_edges();
        net.set_edge_enabled(0, false);
        net.set_edge_enabled(5, false);
        net.set_node_enabled(3, false);
        let kernel = net.compile_kernel();
        let dead_touch = g
            .edges()
            .filter(|&(e, u, v)| {
                (u.index() == 3 || v.index() == 3) && e.index() != 0 && e.index() != 5
            })
            .count();
        assert_eq!(kernel.num_active_edges(), m - 2 - dead_touch);

        // Couplings globally off: zero edges.
        net.set_couplings_enabled(false);
        assert_eq!(net.compile_kernel().num_active_edges(), 0);

        // Drift still matches the naive reference under this gating.
        net.set_couplings_enabled(true);
        let mut rng = StdRng::seed_from_u64(3);
        let y = net.random_phases(&mut rng);
        let (mut a, mut b) = (vec![0.0; y.len()], vec![0.0; y.len()]);
        net.eval(0.0, &y, &mut a);
        net.compile_kernel().drift_into(&y, &mut b, &mut Vec::new());
        assert!(max_abs_diff(&a, &b) < 1e-12);
    }

    #[test]
    fn integrator_reproduces_seeded_anneal() {
        // The kernel integrator and the generic Euler–Maruyama stepper
        // draw identical noise sequences, so a seeded anneal agrees.
        use msropm_ode::sde::{EulerMaruyama, SdeStepper};
        let g = generators::kings_graph(3, 3);
        let mut net = PhaseNetwork::builder(&g)
            .coupling_strength(0.6)
            .noise(0.2)
            .build();
        net.set_shil_all(Shil::order2(0.0, 1.2));
        net.set_shil_enabled(true);
        let kernel = net.compile_kernel();
        let mut rng = StdRng::seed_from_u64(21);
        let mut y1 = net.random_phases(&mut rng);
        let mut y2 = y1.clone();

        let mut em_rng = StdRng::seed_from_u64(77);
        EulerMaruyama::new().integrate(&kernel, &mut y1, 0.0, 2.0, 0.01, &mut em_rng);
        let mut ki_rng = StdRng::seed_from_u64(77);
        KernelIntegrator::new().integrate(&kernel, &mut y2, 0.0, 2.0, 0.01, &mut ki_rng);
        for (a, b) in y1.iter().zip(&y2) {
            assert_eq!(a.to_bits(), b.to_bits(), "EM and KernelIntegrator diverged");
        }
    }

    #[test]
    fn shil_scale_ramps_torque() {
        let g = Graph::empty(1);
        let mut net = PhaseNetwork::builder(&g).build();
        net.set_shil_all(Shil::order2(0.0, 2.0));
        net.set_shil_enabled(true);
        let mut kernel = net.compile_kernel();
        let y = [1.0];
        let mut full = [0.0];
        kernel.drift_into(&y, &mut full, &mut Vec::new());
        kernel.set_shil_scale(0.5);
        let mut half = [0.0];
        kernel.drift_into(&y, &mut half, &mut Vec::new());
        assert!((half[0] - 0.5 * full[0]).abs() < 1e-15);
        kernel.set_shil_scale(0.0);
        let mut zero = [0.0];
        kernel.drift_into(&y, &mut zero, &mut Vec::new());
        assert_eq!(zero[0], 0.0);
    }

    #[test]
    fn ramped_integration_observes_every_step() {
        let g = Graph::empty(2);
        let mut net = PhaseNetwork::builder(&g).noise(0.1).build();
        net.set_shil_all(Shil::order2(0.0, 1.0));
        net.set_shil_enabled(true);
        let mut kernel = net.compile_kernel();
        let mut rng = StdRng::seed_from_u64(5);
        let mut y = vec![0.7, 2.5];
        let mut ts = Vec::new();
        KernelIntegrator::new().integrate_ramped(
            &mut kernel,
            &mut y,
            10.0,
            11.0,
            0.01,
            &mut rng,
            |f| f,
            |t, _| ts.push(t),
        );
        // t0 plus one sample per step; fp accumulation may add a tiny
        // catch-up step per segment boundary (10 segments here).
        assert!((101..=111).contains(&ts.len()), "got {} samples", ts.len());
        assert_eq!(ts[0], 10.0);
        assert!((ts.last().unwrap() - 11.0).abs() < 1e-9);
        assert!(ts.windows(2).all(|w| w[1] > w[0]), "monotone time");
        assert_eq!(kernel.shil_scale(), 1.0, "scale restored");
    }

    #[test]
    fn defective_ring_is_frozen_by_kernel() {
        let g = generators::path_graph(3);
        let mut net = PhaseNetwork::builder(&g)
            .coupling_strength(1.0)
            .noise(0.4)
            .build();
        net.set_shil_all(Shil::order2(0.0, 2.0));
        net.set_shil_enabled(true);
        net.set_node_enabled(1, false);
        let kernel = net.compile_kernel();
        let mut rng = StdRng::seed_from_u64(9);
        let mut y = vec![0.3, 1.7, 2.9];
        KernelIntegrator::new().integrate(&kernel, &mut y, 0.0, 3.0, 0.01, &mut rng);
        assert_eq!(y[1], 1.7, "defective ring moved");
        assert_ne!(y[0], 0.3, "live ring must feel noise/SHIL");
    }

    #[test]
    fn random_phases_uniform_start() {
        let g = Graph::empty(512);
        let net = PhaseNetwork::builder(&g).build();
        let mut rng = StdRng::seed_from_u64(1);
        let y = net.random_phases(&mut rng);
        assert!(y.iter().all(|&p| (0.0..TAU).contains(&p)));
    }
}
