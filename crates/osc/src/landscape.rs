//! Energy-landscape analysis: the discrete ↔ continuous correspondence.
//!
//! The machine works because the continuous phase energy, restricted to
//! SHIL-binarized configurations, **is** the (affinely rescaled) max-cut
//! objective: with binary phases `θ ∈ {ψ/2, ψ/2+π}` every coupling term
//! `−w·cos(θ_u−θ_v)` contributes `−w` when the endpoints agree and `+w`
//! when they differ, so for B2B couplings (`w = −K_c`)
//!
//! ```text
//! E(spin config) = K_c·(m − 2·cut) + const
//! ```
//!
//! — minimizing phase energy over the binarized set is exactly maximizing
//! the cut. This module enumerates that restricted landscape for small
//! graphs, which the test-suite uses to certify the correspondence and
//! which `examples/` use to visualize solution quality.

use crate::network::PhaseNetwork;
use crate::shil::Shil;
use msropm_graph::{Cut, Graph};

/// One enumerated binarized configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct LandscapePoint {
    /// The spin assignment (one bit per oscillator).
    pub spins: Vec<bool>,
    /// The continuous phase energy of the corresponding binarized phases
    /// (couplings only; SHIL potential is constant on the binarized set).
    pub energy: f64,
    /// The cut value of the spin assignment on the underlying graph.
    pub cut_value: usize,
}

/// Enumerates the phase energy of **every** SHIL-binarized configuration
/// of `g` under a network with coupling strength `k_c` and the given SHIL.
///
/// Exponential in the node count — intended for analysis of graphs with
/// up to ~20 nodes.
///
/// # Panics
///
/// Panics if `g.num_nodes() > 20` or `g.num_nodes() == 0`.
pub fn enumerate_binarized_landscape(g: &Graph, k_c: f64, shil: &Shil) -> Vec<LandscapePoint> {
    let n = g.num_nodes();
    assert!(n > 0, "landscape of the empty graph is undefined");
    assert!(n <= 20, "enumeration limited to 20 nodes, got {n}");
    let mut net = PhaseNetwork::builder(g).coupling_strength(k_c).build();
    // SHIL off so the energy is the pure coupling landscape; the SHIL term
    // is constant over the binarized set anyway.
    net.set_shil_enabled(false);
    let targets = shil.stable_phases();
    assert!(targets.len() >= 2, "need a binarizing SHIL (order >= 2)");

    let mut out = Vec::with_capacity(1 << n);
    let mut phases = vec![0.0f64; n];
    for mask in 0u32..(1u32 << n) {
        let spins: Vec<bool> = (0..n).map(|i| (mask >> i) & 1 == 1).collect();
        for (i, &s) in spins.iter().enumerate() {
            phases[i] = targets[usize::from(s)];
        }
        let energy = net.energy(&phases);
        let cut_value = Cut::new(spins.clone()).cut_value(g);
        out.push(LandscapePoint {
            spins,
            energy,
            cut_value,
        });
    }
    out
}

/// The affine relation `E = a·cut + b` implied by the correspondence:
/// returns `(a, b) = (−2·K_c, K_c·m)` for coupling strength `k_c` on a
/// graph with `m` edges (B2B sign convention, `w = −K_c`): every uncut
/// edge contributes `+K_c`, every cut edge `−K_c`, so
/// `E = K_c·m − 2·K_c·cut` — decreasing in the cut, which is why energy
/// descent solves max-cut.
pub fn energy_cut_relation(g: &Graph, k_c: f64) -> (f64, f64) {
    (-2.0 * k_c, k_c * g.num_edges() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msropm_graph::generators;

    #[test]
    fn energy_is_affine_in_cut() {
        let g = generators::kings_graph(3, 3);
        let k_c = 0.8;
        let shil = Shil::order2(0.0, 1.0);
        let (a, b) = energy_cut_relation(&g, k_c);
        for point in enumerate_binarized_landscape(&g, k_c, &shil) {
            let predicted = a * point.cut_value as f64 + b;
            assert!(
                (point.energy - predicted).abs() < 1e-9,
                "config {:?}: E={} vs affine {}",
                point.spins,
                point.energy,
                predicted
            );
        }
    }

    #[test]
    fn energy_minimum_is_max_cut() {
        // The foundational claim: the ground state of the binarized phase
        // landscape is exactly the max-cut solution.
        for g in [
            generators::cycle_graph(7),
            generators::kings_graph(3, 3),
            generators::complete_graph(5),
        ] {
            let shil = Shil::order2(0.0, 1.0);
            let landscape = enumerate_binarized_landscape(&g, 1.0, &shil);
            let best_energy = landscape
                .iter()
                .min_by(|x, y| x.energy.partial_cmp(&y.energy).expect("finite"))
                .expect("non-empty landscape");
            let max_cut = landscape
                .iter()
                .map(|p| p.cut_value)
                .max()
                .expect("non-empty");
            assert_eq!(
                best_energy.cut_value, max_cut,
                "energy minimum is not a max-cut on {g}"
            );
        }
    }

    #[test]
    fn shifted_shil_gives_identical_landscape() {
        // The landscape shape is independent of WHICH binary pair the SHIL
        // stabilizes (0/180 vs 90/270): only phase differences matter.
        let g = generators::cycle_graph(5);
        let l1 = enumerate_binarized_landscape(&g, 1.0, &Shil::order2(0.0, 1.0));
        let l2 = enumerate_binarized_landscape(&g, 1.0, &Shil::order2(std::f64::consts::PI, 1.0));
        for (p1, p2) in l1.iter().zip(&l2) {
            assert!((p1.energy - p2.energy).abs() < 1e-9);
            assert_eq!(p1.cut_value, p2.cut_value);
        }
    }

    #[test]
    #[should_panic(expected = "limited to 20 nodes")]
    fn oversized_graph_rejected() {
        let g = generators::kings_graph(5, 5);
        enumerate_binarized_landscape(&g, 1.0, &Shil::order2(0.0, 1.0));
    }
}
