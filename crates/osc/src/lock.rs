//! Phase readout: mapping locked phases to discrete spins, and lock-quality
//! metrics.
//!
//! Under SHIL, oscillator phases are absolute with respect to the reference
//! (paper §3.3), so readout reduces to classifying each phase into the
//! nearest stable target — the idealization of the DFF/reference-signal
//! sampler of Fig. 4(c), which `msropm-circuit` models at the waveform
//! level.

use crate::shil::Shil;
use crate::waveform::principal_phase;
use std::f64::consts::TAU;

/// Index of the stable SHIL phase nearest to `theta`.
///
/// For an order-`m` SHIL with phase `ψ`, the stable targets are
/// `(ψ + 2πk)/m`; the returned spin is the `k` of the closest target
/// (circular distance).
///
/// # Example
///
/// ```
/// use msropm_osc::{phase_to_spin, Shil};
/// use std::f64::consts::PI;
///
/// let shil1 = Shil::order2(0.0, 1.0);
/// assert_eq!(phase_to_spin(0.1, &shil1), 0);
/// assert_eq!(phase_to_spin(PI - 0.1, &shil1), 1);
/// ```
pub fn phase_to_spin(theta: f64, shil: &Shil) -> usize {
    let m = shil.order() as f64;
    // Solve (psi + 2 pi k)/m ≈ theta  =>  k ≈ (m theta - psi)/(2 pi).
    let k = ((m * theta - shil.phase()) / TAU).round();
    (k.rem_euclid(m)) as usize
}

/// The stable SHIL phase nearest to `theta`, in `[0, 2π)`.
pub fn nearest_stable_phase(theta: f64, shil: &Shil) -> f64 {
    let m = shil.order() as f64;
    let k = ((m * theta - shil.phase()) / TAU).round();
    principal_phase((shil.phase() + TAU * k) / m)
}

/// Circular distance from `theta` to its nearest stable SHIL phase, in
/// `[0, π/m]`. Zero means perfectly locked.
pub fn lock_error(theta: f64, shil: &Shil) -> f64 {
    let target = nearest_stable_phase(theta, shil);
    let d = principal_phase(theta - target);
    d.min(TAU - d)
}

/// Classifies every phase into a spin via [`phase_to_spin`].
pub fn binarize_phases(phases: &[f64], shil: &Shil) -> Vec<usize> {
    phases.iter().map(|&p| phase_to_spin(p, shil)).collect()
}

/// Returns `true` if every phase is within `tol` radians of a stable SHIL
/// target — the phase-domain criterion for "the SHIL window may end".
pub fn all_locked(phases: &[f64], shil: &Shil, tol: f64) -> bool {
    phases.iter().all(|&p| lock_error(p, shil) <= tol)
}

/// The magnitude of the `m`-th order Kuramoto order parameter
/// `|1/N Σ exp(i·m·θ_j)| ∈ [0, 1]`.
///
/// With `m = 1` this is the classical synchronization measure; with `m`
/// equal to the SHIL order it measures *binarization* quality: 1.0 when all
/// phases sit exactly on (any of) the `m` stable targets.
///
/// # Panics
///
/// Panics if `phases` is empty or `m == 0`.
pub fn order_parameter(phases: &[f64], m: u32) -> f64 {
    assert!(!phases.is_empty(), "order parameter of empty phase set");
    assert!(m >= 1, "order must be >= 1");
    let mf = m as f64;
    let (mut re, mut im) = (0.0, 0.0);
    for &p in phases {
        re += (mf * p).cos();
        im += (mf * p).sin();
    }
    let n = phases.len() as f64;
    ((re / n).powi(2) + (im / n).powi(2)).sqrt()
}

/// Maximum lock error over all phases (∞-norm analogue of [`lock_error`]).
///
/// # Panics
///
/// Panics if `phases` is empty.
pub fn max_lock_error(phases: &[f64], shil: &Shil) -> f64 {
    phases
        .iter()
        .map(|&p| lock_error(p, shil))
        .fold(f64::NAN, f64::max)
        .max(0.0)
}

/// The Adler lock range of a SHIL source: an oscillator with free-running
/// frequency offset `Δω` can phase-lock to the injection if and only if
/// `|Δω| < Ks` (the phase equation `dθ/dt = Δω − Ks·sin(mθ − ψ)` has a
/// fixed point exactly when the drift can be cancelled by the torque).
///
/// Returns the maximum tolerable `|Δω|` in rad/ns.
pub fn lock_range(shil: &Shil) -> f64 {
    shil.strength()
}

/// Whether an oscillator with frequency offset `delta_omega` can lock to
/// `shil` (strict Adler criterion; the boundary case is treated as
/// unlocked since the fixed point is half-stable there).
pub fn can_lock(shil: &Shil, delta_omega: f64) -> bool {
    delta_omega.abs() < lock_range(shil)
}

/// The steady-state phase offset from the nearest SHIL target for a locked
/// oscillator with frequency offset `delta_omega`:
/// `sin(m·θ* − ψ) = Δω/Ks` ⇒ offset `= asin(Δω/Ks)/m` — frequency error
/// translates into a static phase error, which the readout windows must
/// tolerate.
///
/// Returns `None` if the oscillator cannot lock.
pub fn static_phase_offset(shil: &Shil, delta_omega: f64) -> Option<f64> {
    if !can_lock(shil, delta_omega) {
        return None;
    }
    Some((delta_omega / shil.strength()).asin() / shil.order() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn spin_classification_order2() {
        let s = Shil::order2(0.0, 1.0);
        assert_eq!(phase_to_spin(0.0, &s), 0);
        assert_eq!(phase_to_spin(PI, &s), 1);
        assert_eq!(phase_to_spin(TAU - 0.01, &s), 0);
        assert_eq!(phase_to_spin(PI + 0.3, &s), 1);
        // Large unwrapped phases classify the same as their principal value.
        assert_eq!(phase_to_spin(4.0 * TAU + PI, &s), 1);
        assert_eq!(phase_to_spin(-PI, &s), 1);
    }

    #[test]
    fn spin_classification_shifted() {
        let s = Shil::order2(PI, 1.0); // targets 90 / 270 deg
        assert_eq!(phase_to_spin(PI / 2.0, &s), 0);
        assert_eq!(phase_to_spin(3.0 * PI / 2.0, &s), 1);
        // 0 degrees is equidistant; either spin is acceptable, but the
        // nearest stable phase must be one of the two targets.
        let near = nearest_stable_phase(0.2 + PI / 2.0, &s);
        assert!((near - PI / 2.0).abs() < 1e-12);
    }

    #[test]
    fn spin_classification_order3() {
        let s = Shil::order3(0.0, 1.0);
        assert_eq!(phase_to_spin(0.05, &s), 0);
        assert_eq!(phase_to_spin(TAU / 3.0 + 0.05, &s), 1);
        assert_eq!(phase_to_spin(2.0 * TAU / 3.0 - 0.05, &s), 2);
    }

    #[test]
    fn lock_error_zero_at_targets() {
        for shil in [
            Shil::order2(0.0, 1.0),
            Shil::order2(PI, 1.0),
            Shil::order3(0.7, 1.0),
        ] {
            for t in shil.stable_phases() {
                assert!(lock_error(t, &shil) < 1e-12);
            }
        }
    }

    #[test]
    fn lock_error_maximal_between_targets() {
        let s = Shil::order2(0.0, 1.0);
        // PI/2 is as far as possible from both 0 and PI.
        assert!((lock_error(PI / 2.0, &s) - PI / 2.0).abs() < 1e-12);
    }

    #[test]
    fn binarize_and_all_locked() {
        let s = Shil::order2(0.0, 1.0);
        let phases = [0.01, PI - 0.01, 0.02, PI + 0.02];
        assert_eq!(binarize_phases(&phases, &s), vec![0, 1, 0, 1]);
        assert!(all_locked(&phases, &s, 0.05));
        assert!(!all_locked(&phases, &s, 0.001));
    }

    #[test]
    fn order_parameter_extremes() {
        // All on one phase: r_1 = 1.
        assert!((order_parameter(&[1.0, 1.0, 1.0], 1) - 1.0).abs() < 1e-12);
        // Antipodal pair: r_1 = 0 but r_2 = 1 (perfectly binarized).
        let pair = [0.3, 0.3 + PI];
        assert!(order_parameter(&pair, 1) < 1e-12);
        assert!((order_parameter(&pair, 2) - 1.0).abs() < 1e-12);
        // Four equally spaced phases: r_2 = 0 but r_4 = 1.
        let four = [0.0, PI / 2.0, PI, 3.0 * PI / 2.0];
        assert!(order_parameter(&four, 2) < 1e-12);
        assert!((order_parameter(&four, 4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_lock_error_reports_worst() {
        let s = Shil::order2(0.0, 1.0);
        let phases = [0.0, 0.1, PI - 0.3];
        assert!((max_lock_error(&phases, &s) - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty phase set")]
    fn order_parameter_empty_panics() {
        order_parameter(&[], 1);
    }

    #[test]
    fn adler_criterion_matches_dynamics() {
        use msropm_ode::fixed::{FixedStepper, Rk4};
        use msropm_ode::system::{FnSystem, OdeSystem};
        // Integrate dθ/dt = Δω − Ks·sin(2θ) and check lock vs drift.
        let ks = 1.0;
        let shil = Shil::order2(0.0, ks);
        for (dw, expect_lock) in [
            (0.3, true),
            (0.9, true),
            (1.2, false),
            (-0.5, true),
            (-1.5, false),
        ] {
            assert_eq!(can_lock(&shil, dw), expect_lock, "criterion at {dw}");
            let sys = FnSystem::new(1, move |_t, y: &[f64], d: &mut [f64]| {
                d[0] = dw - ks * (2.0 * y[0]).sin();
            });
            let mut y = vec![0.3];
            Rk4::new().integrate(&sys, &mut y, 0.0, 200.0, 1e-2);
            let final_drift: f64 = {
                let mut d = [0.0f64];
                sys.eval(0.0, &y, &mut d);
                d[0]
            };
            if expect_lock {
                assert!(
                    final_drift.abs() < 1e-6,
                    "Δω={dw} should lock, drift {final_drift}"
                );
                // Static offset matches the analytic prediction.
                let predicted = static_phase_offset(&shil, dw).expect("lockable");
                let err = lock_error(y[0], &shil);
                assert!(
                    (err - predicted.abs()).abs() < 1e-6,
                    "Δω={dw}: offset {err} vs predicted {predicted}"
                );
            } else {
                assert!(final_drift.abs() > 0.05, "Δω={dw} should drift");
                assert_eq!(static_phase_offset(&shil, dw), None);
            }
        }
    }

    #[test]
    fn lock_range_equals_strength() {
        assert_eq!(lock_range(&Shil::order2(0.0, 2.5)), 2.5);
        assert!(
            !can_lock(&Shil::order2(0.0, 1.0), 1.0),
            "boundary is unlocked"
        );
    }
}
