//! Phase arithmetic and waveform synthesis.
//!
//! The phase macromodel evolves abstract phases; to produce Fig. 3-style
//! oscillograms (and to feed the DFF readout model), phases are re-expanded
//! into periodic waveforms at the ring-oscillator frequency.

use std::f64::consts::TAU;

/// Wraps a phase into the principal range `[0, 2π)`.
///
/// # Example
///
/// ```
/// use msropm_osc::principal_phase;
/// use std::f64::consts::{PI, TAU};
///
/// assert!((principal_phase(-PI) - PI).abs() < 1e-12);
/// assert!(principal_phase(3.0 * TAU) < 1e-12);
/// ```
pub fn principal_phase(theta: f64) -> f64 {
    theta.rem_euclid(TAU)
}

/// Circular distance between two phases, in `[0, π]`.
pub fn phase_distance(a: f64, b: f64) -> f64 {
    let d = principal_phase(a - b);
    d.min(TAU - d)
}

/// Unwraps a phase time series: removes the artificial ±2π jumps that
/// principal-value storage introduces, producing a continuous trajectory.
pub fn unwrap_phases(series: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(series.len());
    let mut offset = 0.0;
    for (i, &p) in series.iter().enumerate() {
        if i > 0 {
            let prev = series[i - 1];
            let diff = p - prev;
            if diff > TAU / 2.0 {
                offset -= TAU;
            } else if diff < -TAU / 2.0 {
                offset += TAU;
            }
        }
        out.push(p + offset);
    }
    out
}

/// Sinusoidal waveform `sin(2π f t + θ)` of an oscillator with phase `theta`.
pub fn sine_wave(t: f64, freq: f64, theta: f64) -> f64 {
    (TAU * freq * t + theta).sin()
}

/// Square waveform (±1) of an oscillator with phase `theta` — closer to a
/// ring oscillator's rail-to-rail output.
pub fn square_wave(t: f64, freq: f64, theta: f64) -> f64 {
    if principal_phase(TAU * freq * t + theta) < TAU / 2.0 {
        1.0
    } else {
        -1.0
    }
}

/// Samples `square_wave` at `num_samples` uniform points over `[0, t_end]`.
///
/// # Panics
///
/// Panics if `num_samples < 2`.
pub fn synthesize_square(theta: f64, freq: f64, t_end: f64, num_samples: usize) -> Vec<(f64, f64)> {
    assert!(num_samples >= 2, "need at least two samples");
    (0..num_samples)
        .map(|k| {
            let t = t_end * k as f64 / (num_samples - 1) as f64;
            (t, square_wave(t, freq, theta))
        })
        .collect()
}

/// Time of the first rising zero-crossing of `sin(2π f t + θ)` at or after
/// `t0` — used to express a phase as an edge-time offset against a
/// reference, which is what the DFF sampler physically measures.
pub fn rising_edge_time(theta: f64, freq: f64, t0: f64) -> f64 {
    // Rising crossings happen when 2 pi f t + theta = 2 pi k.
    let period = 1.0 / freq;
    let t_first = -theta / (TAU * freq);
    let k = ((t0 - t_first) / period).ceil();
    t_first + k * period
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn principal_range() {
        for x in [-10.0, -PI, 0.0, 1.0, TAU, 100.0] {
            let p = principal_phase(x);
            assert!((0.0..TAU).contains(&p), "{x} -> {p}");
            // Same angle modulo 2 pi.
            assert!(((x - p) / TAU - ((x - p) / TAU).round()).abs() < 1e-9);
        }
    }

    #[test]
    fn distance_symmetry_and_range() {
        assert!((phase_distance(0.1, TAU - 0.1) - 0.2).abs() < 1e-12);
        assert_eq!(phase_distance(1.0, 1.0), 0.0);
        assert!((phase_distance(0.0, PI) - PI).abs() < 1e-12);
        assert!((phase_distance(0.3, 2.0) - phase_distance(2.0, 0.3)).abs() < 1e-12);
    }

    #[test]
    fn unwrap_removes_jumps() {
        // A phase ramp stored as principal values.
        let true_phases: Vec<f64> = (0..100).map(|k| 0.2 * k as f64).collect();
        let wrapped: Vec<f64> = true_phases.iter().map(|&p| principal_phase(p)).collect();
        let unwrapped = unwrap_phases(&wrapped);
        for (u, t) in unwrapped.iter().zip(&true_phases) {
            assert!((u - t).abs() < 1e-9);
        }
    }

    #[test]
    fn unwrap_handles_descending() {
        let true_phases: Vec<f64> = (0..100).map(|k| -0.2 * k as f64).collect();
        let wrapped: Vec<f64> = true_phases.iter().map(|&p| principal_phase(p)).collect();
        let unwrapped = unwrap_phases(&wrapped);
        for (u, t) in unwrapped.iter().zip(&true_phases) {
            // Unwrap starts at the principal value of the first sample.
            assert!((u - (t - true_phases[0] + wrapped[0])).abs() < 1e-9);
        }
    }

    #[test]
    fn square_wave_levels_and_period() {
        let f = 1.3; // GHz -> period ~0.769 ns
        assert_eq!(square_wave(0.0, f, 0.1), 1.0);
        let half = 0.5 / f;
        assert_eq!(square_wave(half + 1e-6, f, 0.0), -1.0);
        // Antiphase oscillators have opposite square levels at all times.
        for k in 0..20 {
            let t = 0.05 * k as f64;
            assert_eq!(square_wave(t, f, 0.0), -square_wave(t, f, PI));
        }
    }

    #[test]
    fn synthesize_covers_interval() {
        let w = synthesize_square(0.0, 1.0, 2.0, 5);
        assert_eq!(w.len(), 5);
        assert_eq!(w[0].0, 0.0);
        assert_eq!(w[4].0, 2.0);
    }

    #[test]
    fn rising_edge_is_rising_and_after_t0() {
        let f = 1.3;
        for theta in [0.0, 1.0, PI, 5.0] {
            let t = rising_edge_time(theta, f, 0.3);
            assert!(t >= 0.3 - 1e-12);
            // sin crosses zero upward: value just after is positive.
            assert!(sine_wave(t + 1e-6, f, theta) > 0.0);
            assert!(sine_wave(t - 1e-6, f, theta) < 0.0);
        }
    }

    #[test]
    fn phase_maps_to_edge_delay() {
        // A 180-degree phase lead shifts the rising edge by half a period.
        let f = 2.0;
        let t0 = rising_edge_time(0.0, f, 0.0);
        let t180 = rising_edge_time(PI, f, 0.0);
        let delta = (t0 - t180).abs();
        let half_period = 0.25;
        assert!((delta - half_period).abs() < 1e-9);
    }
}
