//! Core undirected simple-graph type with CSR adjacency.

use std::error::Error;
use std::fmt;

/// Identifier of a vertex in a [`Graph`].
///
/// Node ids are dense: a graph with `n` nodes uses ids `0..n`.
///
/// # Example
///
/// ```
/// use msropm_graph::NodeId;
///
/// let v = NodeId::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(format!("{v}"), "v3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a dense index.
    pub fn new(index: usize) -> Self {
        NodeId(index as u32)
    }

    /// Returns the dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(raw: u32) -> Self {
        NodeId(raw)
    }
}

/// Identifier of an undirected edge in a [`Graph`].
///
/// Edge ids are dense: a graph with `m` edges uses ids `0..m`, in the order
/// the edges were inserted into the [`GraphBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an edge id from a dense index.
    pub fn new(index: usize) -> Self {
        EdgeId(index as u32)
    }

    /// Returns the dense index of this edge.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<u32> for EdgeId {
    fn from(raw: u32) -> Self {
        EdgeId(raw)
    }
}

/// Errors produced while building or validating graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge endpoint referenced a node outside `0..num_nodes`.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// Number of nodes in the graph under construction.
        num_nodes: usize,
    },
    /// A self-loop `(v, v)` was inserted; simple graphs forbid them.
    SelfLoop(NodeId),
    /// The same undirected edge was inserted twice.
    DuplicateEdge(NodeId, NodeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node {node} out of range for graph with {num_nodes} nodes"
                )
            }
            GraphError::SelfLoop(v) => write!(f, "self-loop at {v} is not allowed"),
            GraphError::DuplicateEdge(u, v) => {
                write!(f, "duplicate edge between {u} and {v}")
            }
        }
    }
}

impl Error for GraphError {}

/// Incremental builder for [`Graph`].
///
/// Validates edges as they are added (no self-loops, no duplicates, endpoints
/// in range) so that the finished graph is always a simple graph.
///
/// # Example
///
/// ```
/// use msropm_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1)?;
/// b.add_edge(1, 2)?;
/// let g = b.build();
/// assert_eq!(g.num_edges(), 2);
/// # Ok::<(), msropm_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    num_nodes: usize,
    edges: Vec<(NodeId, NodeId)>,
    seen: std::collections::HashSet<(u32, u32)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `num_nodes` isolated nodes.
    pub fn new(num_nodes: usize) -> Self {
        GraphBuilder {
            num_nodes,
            edges: Vec::new(),
            seen: std::collections::HashSet::new(),
        }
    }

    /// Adds the undirected edge `{u, v}` (given as dense indices).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if an endpoint is not in
    /// `0..num_nodes`, [`GraphError::SelfLoop`] if `u == v`, and
    /// [`GraphError::DuplicateEdge`] if the edge already exists.
    pub fn add_edge(&mut self, u: usize, v: usize) -> Result<&mut Self, GraphError> {
        if u >= self.num_nodes {
            return Err(GraphError::NodeOutOfRange {
                node: NodeId::new(u),
                num_nodes: self.num_nodes,
            });
        }
        if v >= self.num_nodes {
            return Err(GraphError::NodeOutOfRange {
                node: NodeId::new(v),
                num_nodes: self.num_nodes,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop(NodeId::new(u)));
        }
        let key = (u.min(v) as u32, u.max(v) as u32);
        if !self.seen.insert(key) {
            return Err(GraphError::DuplicateEdge(NodeId::new(u), NodeId::new(v)));
        }
        self.edges.push((NodeId::new(u), NodeId::new(v)));
        Ok(self)
    }

    /// Adds `{u, v}` if absent; silently skips duplicates and self-loops.
    ///
    /// Useful for random generators where collisions are expected.
    pub fn add_edge_dedup(&mut self, u: usize, v: usize) -> &mut Self {
        let _ = self.add_edge(u, v);
        self
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the builder into an immutable [`Graph`].
    pub fn build(self) -> Graph {
        Graph::from_parts(self.num_nodes, self.edges)
    }
}

/// An immutable, undirected simple graph in compressed sparse row form.
///
/// The graph keeps both the flat edge list (indexed by [`EdgeId`]) and a CSR
/// adjacency structure, so that per-node neighbour iteration and per-edge
/// iteration are both O(1) amortized. Every neighbour entry carries the id of
/// the connecting edge, which the Potts machine uses to gate individual
/// couplings (`P_EN` in the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    num_nodes: usize,
    edges: Vec<(NodeId, NodeId)>,
    /// CSR row offsets, length `num_nodes + 1`.
    offsets: Vec<u32>,
    /// CSR column entries: (neighbour, connecting edge).
    adjacency: Vec<(NodeId, EdgeId)>,
}

impl Graph {
    /// Builds a graph from a node count and a validated edge list.
    ///
    /// Prefer [`GraphBuilder`] or [`Graph::from_edges`] in user code.
    pub(crate) fn from_parts(num_nodes: usize, edges: Vec<(NodeId, NodeId)>) -> Self {
        let mut degree = vec![0u32; num_nodes];
        for &(u, v) in &edges {
            degree[u.index()] += 1;
            degree[v.index()] += 1;
        }
        let mut offsets = Vec::with_capacity(num_nodes + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..num_nodes].to_vec();
        let mut adjacency = vec![(NodeId::default(), EdgeId::default()); 2 * edges.len()];
        for (e, &(u, v)) in edges.iter().enumerate() {
            let eid = EdgeId::new(e);
            adjacency[cursor[u.index()] as usize] = (v, eid);
            cursor[u.index()] += 1;
            adjacency[cursor[v.index()] as usize] = (u, eid);
            cursor[v.index()] += 1;
        }
        Graph {
            num_nodes,
            edges,
            offsets,
            adjacency,
        }
    }

    /// Builds a graph from an iterator of `(u, v)` index pairs.
    ///
    /// # Errors
    ///
    /// Propagates the same validation errors as [`GraphBuilder::add_edge`].
    ///
    /// # Example
    ///
    /// ```
    /// use msropm_graph::Graph;
    ///
    /// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])?;
    /// assert_eq!(g.num_edges(), 4);
    /// assert_eq!(g.degree(msropm_graph::NodeId::new(0)), 2);
    /// # Ok::<(), msropm_graph::GraphError>(())
    /// ```
    pub fn from_edges<I>(num_nodes: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let mut b = GraphBuilder::new(num_nodes);
        for (u, v) in edges {
            b.add_edge(u, v)?;
        }
        Ok(b.build())
    }

    /// Creates a graph with `num_nodes` nodes and no edges.
    pub fn empty(num_nodes: usize) -> Self {
        Graph::from_parts(num_nodes, Vec::new())
    }

    /// Number of vertices.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node ids in increasing order.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.num_nodes).map(NodeId::new)
    }

    /// Iterator over all edges as `(EdgeId, NodeId, NodeId)` triples.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = (EdgeId, NodeId, NodeId)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, &(u, v))| (EdgeId::new(i), u, v))
    }

    /// Endpoints of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.edges[e.index()]
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    /// Maximum degree over all nodes (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Iterator over `(neighbour, connecting_edge)` pairs of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: NodeId) -> impl ExactSizeIterator<Item = (NodeId, EdgeId)> + '_ {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        self.adjacency[lo..hi].iter().copied()
    }

    /// Returns `true` if `{u, v}` is an edge.
    pub fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u.index() >= self.num_nodes || v.index() >= self.num_nodes {
            return false;
        }
        // Scan the smaller adjacency list.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).any(|(w, _)| w == b)
    }

    /// Finds the edge id connecting `u` and `v`, if present.
    pub fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        if u.index() >= self.num_nodes || v.index() >= self.num_nodes {
            return None;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).find(|&(w, _)| w == b).map(|(_, e)| e)
    }

    /// Returns `true` if the graph is connected (single-node graphs are
    /// connected; the empty graph with zero nodes is considered connected).
    pub fn is_connected(&self) -> bool {
        if self.num_nodes <= 1 {
            return true;
        }
        let mut seen = vec![false; self.num_nodes];
        let mut stack = vec![NodeId::new(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for (w, _) in self.neighbors(v) {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == self.num_nodes
    }

    /// Labels each node with the index of its connected component and returns
    /// `(labels, component_count)`.
    pub fn connected_components(&self) -> (Vec<usize>, usize) {
        let mut label = vec![usize::MAX; self.num_nodes];
        let mut next = 0usize;
        let mut stack = Vec::new();
        for s in 0..self.num_nodes {
            if label[s] != usize::MAX {
                continue;
            }
            label[s] = next;
            stack.push(NodeId::new(s));
            while let Some(v) = stack.pop() {
                for (w, _) in self.neighbors(v) {
                    if label[w.index()] == usize::MAX {
                        label[w.index()] = next;
                        stack.push(w);
                    }
                }
            }
            next += 1;
        }
        (label, next)
    }

    /// Attempts a proper 2-coloring via BFS; returns the side assignment if
    /// the graph is bipartite, or `None` if an odd cycle exists.
    pub fn bipartition(&self) -> Option<Vec<bool>> {
        let mut side: Vec<Option<bool>> = vec![None; self.num_nodes];
        let mut queue = std::collections::VecDeque::new();
        for s in 0..self.num_nodes {
            if side[s].is_some() {
                continue;
            }
            side[s] = Some(false);
            queue.push_back(NodeId::new(s));
            while let Some(v) = queue.pop_front() {
                let sv = side[v.index()].expect("visited nodes have a side");
                for (w, _) in self.neighbors(v) {
                    match side[w.index()] {
                        None => {
                            side[w.index()] = Some(!sv);
                            queue.push_back(w);
                        }
                        Some(sw) if sw == sv => return None,
                        Some(_) => {}
                    }
                }
            }
        }
        Some(side.into_iter().map(|s| s.unwrap_or(false)).collect())
    }

    /// Returns `true` if the graph contains no odd cycle.
    pub fn is_bipartite(&self) -> bool {
        self.bipartition().is_some()
    }

    /// Sum of degrees (= 2·num_edges); exposed for invariant checks.
    pub fn degree_sum(&self) -> usize {
        self.adjacency.len()
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph(n={}, m={})", self.num_nodes, self.edges.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap()
    }

    #[test]
    fn node_id_roundtrip() {
        let v = NodeId::new(42);
        assert_eq!(v.index(), 42);
        assert_eq!(NodeId::from(42u32), v);
        assert_eq!(v.to_string(), "v42");
    }

    #[test]
    fn edge_id_roundtrip() {
        let e = EdgeId::new(7);
        assert_eq!(e.index(), 7);
        assert_eq!(EdgeId::from(7u32), e);
        assert_eq!(e.to_string(), "e7");
    }

    #[test]
    fn builder_rejects_self_loop() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(
            b.add_edge(1, 1).unwrap_err(),
            GraphError::SelfLoop(NodeId::new(1))
        );
    }

    #[test]
    fn builder_rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        let err = b.add_edge(0, 5).unwrap_err();
        assert_eq!(
            err,
            GraphError::NodeOutOfRange {
                node: NodeId::new(5),
                num_nodes: 2
            }
        );
    }

    #[test]
    fn builder_rejects_duplicates_in_both_orientations() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        assert!(matches!(
            b.add_edge(0, 1),
            Err(GraphError::DuplicateEdge(_, _))
        ));
        assert!(matches!(
            b.add_edge(1, 0),
            Err(GraphError::DuplicateEdge(_, _))
        ));
    }

    #[test]
    fn dedup_builder_skips_errors() {
        let mut b = GraphBuilder::new(3);
        b.add_edge_dedup(0, 1)
            .add_edge_dedup(0, 1)
            .add_edge_dedup(2, 2)
            .add_edge_dedup(1, 2);
        assert_eq!(b.num_edges(), 2);
    }

    #[test]
    fn csr_adjacency_is_consistent() {
        let g = square();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree_sum(), 8);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
            for (w, e) in g.neighbors(v) {
                let (a, b) = g.endpoints(e);
                assert!(a == v && b == w || a == w && b == v);
            }
        }
    }

    #[test]
    fn contains_and_find_edge() {
        let g = square();
        assert!(g.contains_edge(NodeId::new(0), NodeId::new(1)));
        assert!(g.contains_edge(NodeId::new(1), NodeId::new(0)));
        assert!(!g.contains_edge(NodeId::new(0), NodeId::new(2)));
        let e = g.find_edge(NodeId::new(2), NodeId::new(3)).unwrap();
        let (a, b) = g.endpoints(e);
        assert_eq!((a.index().min(b.index()), a.index().max(b.index())), (2, 3));
        assert!(g.find_edge(NodeId::new(0), NodeId::new(2)).is_none());
    }

    #[test]
    fn connectivity() {
        let g = square();
        assert!(g.is_connected());
        let h = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!(!h.is_connected());
        let (labels, k) = h.connected_components();
        assert_eq!(k, 2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = Graph::empty(0);
        assert!(g.is_connected());
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.connected_components().1, 0);
        let g1 = Graph::empty(5);
        assert!(!g1.is_connected());
        assert_eq!(g1.connected_components().1, 5);
    }

    #[test]
    fn bipartite_detection() {
        let even_cycle = square();
        assert!(even_cycle.is_bipartite());
        let side = even_cycle.bipartition().unwrap();
        assert_ne!(side[0], side[1]);
        assert_ne!(side[1], side[2]);

        let triangle = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        assert!(!triangle.is_bipartite());
    }

    #[test]
    fn display_formats() {
        let g = square();
        assert_eq!(g.to_string(), "Graph(n=4, m=4)");
        let err = GraphError::SelfLoop(NodeId::new(1));
        assert_eq!(err.to_string(), "self-loop at v1 is not allowed");
    }
}
