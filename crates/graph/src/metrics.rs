//! Solution-diversity and statistics utilities (Fig. 5(c), §4.1).
//!
//! The paper reports pairwise Hamming distances between the 40 solutions of
//! each problem as histograms, and observes a positive correlation between
//! stage-1 max-cut accuracy and final 4-coloring accuracy. This module
//! implements those measurements.

use crate::coloring::{Color, Coloring};

/// Raw normalized Hamming distance between two colorings: fraction of nodes
/// whose colors differ.
///
/// # Panics
///
/// Panics if lengths differ or both are empty.
pub fn hamming_distance(a: &Coloring, b: &Coloring) -> f64 {
    assert_eq!(a.len(), b.len(), "colorings must cover the same nodes");
    assert!(!a.is_empty(), "empty colorings have no Hamming distance");
    let differing = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .filter(|(x, y)| x != y)
        .count();
    differing as f64 / a.len() as f64
}

/// Label-invariant Hamming distance: the minimum raw distance over all
/// permutations of `b`'s color labels. Solutions that are identical up to
/// renaming colors score 0.
///
/// # Panics
///
/// Panics if lengths differ, both are empty, or more than 8 colors are used
/// (8! = 40320 permutations is the practical limit).
pub fn hamming_distance_min_permutation(a: &Coloring, b: &Coloring) -> f64 {
    assert_eq!(a.len(), b.len(), "colorings must cover the same nodes");
    assert!(!a.is_empty(), "empty colorings have no Hamming distance");
    let k = a.color_range().max(b.color_range());
    assert!(k <= 8, "permutation search limited to 8 colors, got {k}");
    let mut perm: Vec<u16> = (0..k as u16).collect();
    let mut best = usize::MAX;
    permute(&mut perm, 0, &mut |p| {
        let differing = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .filter(|&(&x, &y)| x != Color(p[y.index()]))
            .count();
        best = best.min(differing);
    });
    best as f64 / a.len() as f64
}

fn permute(perm: &mut Vec<u16>, start: usize, visit: &mut impl FnMut(&[u16])) {
    if start == perm.len() {
        visit(perm);
        return;
    }
    for i in start..perm.len() {
        perm.swap(start, i);
        permute(perm, start + 1, visit);
        perm.swap(start, i);
    }
}

/// All pairwise raw Hamming distances among `solutions` (n·(n−1)/2 values),
/// the data behind Fig. 5(c).
pub fn pairwise_hamming(solutions: &[Coloring]) -> Vec<f64> {
    let mut out = Vec::with_capacity(solutions.len() * solutions.len().saturating_sub(1) / 2);
    for i in 0..solutions.len() {
        for j in (i + 1)..solutions.len() {
            out.push(hamming_distance(&solutions[i], &solutions[j]));
        }
    }
    out
}

/// Histogram of values in `[0, 1]` with `bins` equal-width buckets; the last
/// bucket is closed so 1.0 lands in it.
///
/// # Panics
///
/// Panics if `bins == 0`.
pub fn histogram_unit_interval(values: &[f64], bins: usize) -> Vec<usize> {
    assert!(bins > 0, "need at least one bin");
    let mut counts = vec![0usize; bins];
    for &v in values {
        let clamped = v.clamp(0.0, 1.0);
        let mut b = (clamped * bins as f64) as usize;
        if b == bins {
            b = bins - 1;
        }
        counts[b] += 1;
    }
    counts
}

/// Pearson correlation coefficient of paired samples.
///
/// Returns `None` if fewer than two samples or either variance is zero.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    assert_eq!(x.len(), y.len(), "paired samples must have equal length");
    let n = x.len();
    if n < 2 {
        return None;
    }
    let mx = x.iter().sum::<f64>() / n as f64;
    let my = y.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = x[i] - mx;
        let dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx.sqrt() * syy.sqrt()))
}

/// Spearman rank correlation (Pearson on fractional ranks, ties averaged).
///
/// Returns `None` under the same conditions as [`pearson`].
///
/// # Panics
///
/// Panics if lengths differ.
pub fn spearman(x: &[f64], y: &[f64]) -> Option<f64> {
    assert_eq!(x.len(), y.len(), "paired samples must have equal length");
    let rx = fractional_ranks(x);
    let ry = fractional_ranks(y);
    pearson(&rx, &ry)
}

fn fractional_ranks(values: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("no NaN in ranks"));
    let mut ranks = vec![0.0; values.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg_rank;
        }
        i = j + 1;
    }
    ranks
}

/// Summary statistics over a non-empty sample.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Number of samples.
    pub count: usize,
}

impl Summary {
    /// Computes summary statistics; returns `None` on an empty sample.
    pub fn of(values: &[f64]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some(Summary {
            mean,
            std_dev: var.sqrt(),
            min,
            max,
            count: values.len(),
        })
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mean={:.4} std={:.4} min={:.4} max={:.4} n={}",
            self.mean, self.std_dev, self.min, self.max, self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hamming_basics() {
        let a = Coloring::from_indices([0, 1, 2, 3]);
        let b = Coloring::from_indices([0, 1, 2, 0]);
        assert_eq!(hamming_distance(&a, &a), 0.0);
        assert_eq!(hamming_distance(&a, &b), 0.25);
    }

    #[test]
    fn hamming_permutation_invariant() {
        let a = Coloring::from_indices([0, 0, 1, 1, 2, 2]);
        // Same partition, colors renamed 0->2, 1->0, 2->1.
        let b = Coloring::from_indices([2, 2, 0, 0, 1, 1]);
        assert!(hamming_distance(&a, &b) > 0.0);
        assert_eq!(hamming_distance_min_permutation(&a, &b), 0.0);
    }

    #[test]
    fn hamming_permutation_partial() {
        let a = Coloring::from_indices([0, 0, 1, 1]);
        let b = Coloring::from_indices([1, 1, 0, 1]);
        // Swap 0<->1 in b: [0,0,1,0] vs [0,0,1,1] -> 1 differing node.
        assert_eq!(hamming_distance_min_permutation(&a, &b), 0.25);
    }

    #[test]
    #[should_panic(expected = "same nodes")]
    fn hamming_length_mismatch_panics() {
        let a = Coloring::from_indices([0]);
        let b = Coloring::from_indices([0, 1]);
        hamming_distance(&a, &b);
    }

    #[test]
    fn pairwise_count() {
        let sols: Vec<Coloring> = (0..5).map(|i| Coloring::from_indices([i, 0])).collect();
        assert_eq!(pairwise_hamming(&sols).len(), 10);
    }

    #[test]
    fn histogram_edges() {
        let values = [0.0, 0.099, 0.1, 0.95, 1.0];
        let h = histogram_unit_interval(&values, 10);
        assert_eq!(h[0], 2);
        assert_eq!(h[1], 1);
        assert_eq!(h[9], 2, "1.0 belongs to the last closed bucket");
        assert_eq!(h.iter().sum::<usize>(), values.len());
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &z).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_cases() {
        assert_eq!(pearson(&[1.0], &[2.0]), None);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), None, "zero variance");
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.0, 8.0, 27.0, 64.0, 125.0]; // monotone but nonlinear
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 2.0, 2.0, 3.0];
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summary_statistics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.count, 4);
        assert!((s.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
        assert!(Summary::of(&[]).is_none());
        assert!(s.to_string().contains("mean=2.5"));
    }
}
