//! Graph substrate for the MSROPM (multi-stage ring-oscillator Potts machine)
//! reproduction.
//!
//! This crate provides everything the Potts machine and its baselines need to
//! describe combinatorial-optimization instances:
//!
//! - [`Graph`]: a compact, immutable, undirected simple graph (CSR adjacency).
//! - [`generators`]: the paper's King's-graph benchmark family plus grids,
//!   lattices, random and planted-colorable graphs.
//! - [`Coloring`]: vertex colorings, the paper's edge-satisfaction accuracy
//!   metric, and classical constructive heuristics (greedy, DSATUR,
//!   Welsh–Powell) used as sanity baselines.
//! - [`Cut`]: 2-partitions (max-cut states), the stage-1 objective of the
//!   divide-and-color procedure.
//! - [`partition`]: splitting a graph into the electrically independent
//!   sub-circuits produced by the `P_EN` coupling gating.
//! - [`metrics`]: Hamming distances between solutions (Fig. 5(c)),
//!   correlation coefficients (§4.1) and summary statistics.
//! - [`io`]: DIMACS `.col` and plain edge-list readers/writers.
//!
//! # Example
//!
//! ```
//! use msropm_graph::generators;
//!
//! // The paper's smallest benchmark: a 7x7 King's graph (49 nodes).
//! let g = generators::kings_graph(7, 7);
//! assert_eq!(g.num_nodes(), 49);
//! assert_eq!(g.num_edges(), 156);
//!
//! // King's graphs are 4-colorable; DSATUR finds a proper 4-coloring.
//! let coloring = msropm_graph::coloring::dsatur(&g);
//! assert!(coloring.is_proper(&g));
//! assert!(coloring.num_colors_used() <= 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod coloring;
pub mod cut;
pub mod generators;
mod graph;
pub mod io;
pub mod metrics;
pub mod partition;

pub use bitset::BitSet;
pub use coloring::{Color, Coloring};
pub use cut::Cut;
pub use graph::{EdgeId, Graph, GraphBuilder, GraphError, NodeId};
pub use io::graph_hash;
pub use partition::{EdgeMask, Subgraph};
