//! Vertex colorings, the paper's accuracy metric, and constructive heuristics.
//!
//! §4 of the paper: *"The quality of results is assessed by counting the
//! number of edges in the graph that adhere to the coloring rule for the
//! nodes to which the edges connect. The normalized number of correctly
//! colored neighbors indicates how closely the generated solution
//! approximates the actual solution."* [`Coloring::accuracy`] implements
//! exactly that metric.

use crate::graph::{Graph, NodeId};
use rand::Rng;
use std::fmt;

/// A color label assigned to a vertex (a Potts spin value `0..N`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Color(pub u16);

impl Color {
    /// Dense index of this color.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Color {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl From<u16> for Color {
    fn from(raw: u16) -> Self {
        Color(raw)
    }
}

/// A total assignment of colors (multivalued Potts spins) to graph vertices.
///
/// # Example
///
/// ```
/// use msropm_graph::{Coloring, Graph};
///
/// let g = Graph::from_edges(3, [(0, 1), (1, 2)])?;
/// let good = Coloring::from_indices([0, 1, 0]);
/// assert!(good.is_proper(&g));
/// assert_eq!(good.accuracy(&g), 1.0);
///
/// let bad = Coloring::from_indices([0, 0, 0]);
/// assert_eq!(bad.conflicts(&g), 2);
/// assert_eq!(bad.accuracy(&g), 0.0);
/// # Ok::<(), msropm_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Coloring {
    colors: Vec<Color>,
}

impl Coloring {
    /// Creates a coloring from explicit color values.
    pub fn new(colors: Vec<Color>) -> Self {
        Coloring { colors }
    }

    /// Creates a coloring from raw `usize` color indices.
    ///
    /// # Panics
    ///
    /// Panics if any index exceeds `u16::MAX`.
    pub fn from_indices<I>(indices: I) -> Self
    where
        I: IntoIterator<Item = usize>,
    {
        Coloring {
            colors: indices
                .into_iter()
                .map(|c| {
                    assert!(c <= u16::MAX as usize, "color index {c} exceeds u16 range");
                    Color(c as u16)
                })
                .collect(),
        }
    }

    /// Uniform random coloring over `num_colors` colors.
    pub fn random<R: Rng + ?Sized>(num_nodes: usize, num_colors: usize, rng: &mut R) -> Self {
        assert!(num_colors >= 1, "need at least one color");
        Coloring {
            colors: (0..num_nodes)
                .map(|_| Color(rng.gen_range(0..num_colors) as u16))
                .collect(),
        }
    }

    /// Number of vertices covered by this coloring.
    pub fn len(&self) -> usize {
        self.colors.len()
    }

    /// Returns `true` if the coloring covers zero vertices.
    pub fn is_empty(&self) -> bool {
        self.colors.is_empty()
    }

    /// Color of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn color(&self, v: NodeId) -> Color {
        self.colors[v.index()]
    }

    /// Sets the color of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn set_color(&mut self, v: NodeId, c: Color) {
        self.colors[v.index()] = c;
    }

    /// Slice view of the underlying color vector.
    pub fn as_slice(&self) -> &[Color] {
        &self.colors
    }

    /// Iterator over `(node, color)` pairs.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (NodeId, Color)> + '_ {
        self.colors
            .iter()
            .enumerate()
            .map(|(i, &c)| (NodeId::new(i), c))
    }

    /// Number of distinct colors actually used (0 for an empty coloring).
    pub fn num_colors_used(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        for &c in &self.colors {
            seen.insert(c);
        }
        seen.len()
    }

    /// Largest color index used plus one (0 for an empty coloring).
    pub fn color_range(&self) -> usize {
        self.colors.iter().map(|c| c.index() + 1).max().unwrap_or(0)
    }

    /// Number of edges whose endpoints share a color (coloring violations).
    ///
    /// # Panics
    ///
    /// Panics if the coloring does not cover all nodes of `g`.
    pub fn conflicts(&self, g: &Graph) -> usize {
        assert_eq!(
            self.colors.len(),
            g.num_nodes(),
            "coloring covers {} nodes but graph has {}",
            self.colors.len(),
            g.num_nodes()
        );
        g.edges()
            .filter(|&(_, u, v)| self.colors[u.index()] == self.colors[v.index()])
            .count()
    }

    /// Number of edges whose endpoints have different colors.
    pub fn satisfied_edges(&self, g: &Graph) -> usize {
        g.num_edges() - self.conflicts(g)
    }

    /// The paper's accuracy metric: fraction of properly colored edges.
    ///
    /// For graphs that admit a proper coloring with the allowed palette (all
    /// the paper's benchmarks do), an exact solution scores 1.0, so this
    /// equals the "normalized Hamiltonian relative to the exact solution".
    /// An edgeless graph scores 1.0 by convention.
    pub fn accuracy(&self, g: &Graph) -> f64 {
        if g.num_edges() == 0 {
            return 1.0;
        }
        self.satisfied_edges(g) as f64 / g.num_edges() as f64
    }

    /// Returns `true` if no edge is violated.
    pub fn is_proper(&self, g: &Graph) -> bool {
        self.conflicts(g) == 0
    }

    /// Standard Potts Hamiltonian `H = Σ_{(i,j)∈E} J·δ(s_i, s_j)` with J = 1:
    /// the number of conflicting edges (paper Eq. 3 restricted to the graph).
    pub fn potts_energy(&self, g: &Graph) -> f64 {
        self.conflicts(g) as f64
    }
}

impl FromIterator<Color> for Coloring {
    fn from_iter<I: IntoIterator<Item = Color>>(iter: I) -> Self {
        Coloring {
            colors: iter.into_iter().collect(),
        }
    }
}

/// Greedy sequential coloring: scan nodes in the given order, assigning the
/// lowest color not used by an already-colored neighbour.
///
/// # Panics
///
/// Panics if `order` does not enumerate each node exactly once.
pub fn greedy_coloring(g: &Graph, order: &[NodeId]) -> Coloring {
    assert_eq!(order.len(), g.num_nodes(), "order must cover every node");
    let mut colors: Vec<Option<Color>> = vec![None; g.num_nodes()];
    let mut forbidden = vec![false; g.max_degree() + 1];
    for &v in order {
        assert!(
            colors[v.index()].is_none(),
            "node {v} appears twice in order"
        );
        forbidden.fill(false);
        for (w, _) in g.neighbors(v) {
            if let Some(c) = colors[w.index()] {
                if c.index() < forbidden.len() {
                    forbidden[c.index()] = true;
                }
            }
        }
        let c = forbidden
            .iter()
            .position(|&f| !f)
            .expect("degree+1 colors always suffice");
        colors[v.index()] = Some(Color(c as u16));
    }
    Coloring {
        colors: colors
            .into_iter()
            .map(|c| c.expect("all nodes colored"))
            .collect(),
    }
}

/// Welsh–Powell coloring: greedy in order of decreasing degree.
pub fn welsh_powell(g: &Graph) -> Coloring {
    let mut order: Vec<NodeId> = g.nodes().collect();
    order.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    greedy_coloring(g, &order)
}

/// DSATUR coloring (Brélaz): repeatedly color the uncolored node with the
/// highest saturation (number of distinct neighbour colors), breaking ties by
/// degree. Finds optimal colorings on many structured graphs, including
/// King's graphs.
pub fn dsatur(g: &Graph) -> Coloring {
    let n = g.num_nodes();
    let mut colors: Vec<Option<Color>> = vec![None; n];
    let mut saturation: Vec<std::collections::HashSet<Color>> =
        vec![std::collections::HashSet::new(); n];
    let mut uncolored = n;
    while uncolored > 0 {
        // Pick max (saturation, degree).
        let v = (0..n)
            .filter(|&i| colors[i].is_none())
            .max_by_key(|&i| (saturation[i].len(), g.degree(NodeId::new(i))))
            .expect("some node is uncolored");
        let v = NodeId::new(v);
        let mut c = 0u16;
        while saturation[v.index()].contains(&Color(c)) {
            c += 1;
        }
        colors[v.index()] = Some(Color(c));
        for (w, _) in g.neighbors(v) {
            saturation[w.index()].insert(Color(c));
        }
        uncolored -= 1;
    }
    Coloring {
        colors: colors
            .into_iter()
            .map(|c| c.expect("all nodes colored"))
            .collect(),
    }
}

/// Min-conflicts descent: repeatedly move conflicted vertices to their
/// least-conflicting color (ties keep the current color) until a local
/// optimum or `max_sweeps` full passes. Returns the number of conflicts
/// removed.
///
/// This is the classical repair heuristic for coloring; the experiment
/// suite uses it to post-process and to sanity-check machine solutions.
pub fn min_conflicts_descent(
    g: &Graph,
    coloring: &mut Coloring,
    num_colors: usize,
    max_sweeps: usize,
) -> usize {
    assert!(num_colors >= 1, "need at least one color");
    let before = coloring.conflicts(g);
    let mut counts = vec![0usize; num_colors];
    for _ in 0..max_sweeps {
        let mut moved = false;
        for v in g.nodes() {
            counts.fill(0);
            for (w, _) in g.neighbors(v) {
                let cw = coloring.color(w).index();
                if cw < num_colors {
                    counts[cw] += 1;
                }
            }
            let current = coloring.color(v).index().min(num_colors - 1);
            if counts[current] == 0 {
                continue;
            }
            let best = (0..num_colors)
                .min_by_key(|&c| (counts[c], usize::from(c != current)))
                .expect("palette non-empty");
            if counts[best] < counts[current] {
                coloring.set_color(v, Color(best as u16));
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    before - coloring.conflicts(g)
}

/// Performs a Kempe-chain interchange at vertex `v` between its color and
/// `other`: flood-fills the connected component of the subgraph induced by
/// the two colors that contains `v`, swapping the colors inside it.
/// Properness is preserved (the classical Kempe argument); returns the
/// chain size.
///
/// # Panics
///
/// Panics if the coloring does not cover `g`.
pub fn kempe_chain_swap(g: &Graph, coloring: &mut Coloring, v: NodeId, other: Color) -> usize {
    assert_eq!(coloring.len(), g.num_nodes(), "coloring covers the graph");
    let a = coloring.color(v);
    let b = other;
    if a == b {
        return 0;
    }
    let mut in_chain = vec![false; g.num_nodes()];
    let mut stack = vec![v];
    in_chain[v.index()] = true;
    let mut size = 0;
    while let Some(u) = stack.pop() {
        size += 1;
        for (w, _) in g.neighbors(u) {
            let cw = coloring.color(w);
            if !in_chain[w.index()] && (cw == a || cw == b) {
                in_chain[w.index()] = true;
                stack.push(w);
            }
        }
    }
    for (i, &inside) in in_chain.iter().enumerate() {
        if inside {
            let node = NodeId::new(i);
            let c = coloring.color(node);
            coloring.set_color(node, if c == a { b } else { a });
        }
    }
    size
}

/// The optimal "2x2 tile" 4-coloring of a King's graph: color of cell
/// `(r, c)` is `2*(r mod 2) + (c mod 2)`. Verifiably proper for all board
/// sizes; used as a known-exact reference in tests and experiments.
pub fn kings_tile_coloring(rows: usize, cols: usize) -> Coloring {
    let mut colors = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            colors.push(Color((2 * (r % 2) + (c % 2)) as u16));
        }
    }
    Coloring { colors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn accuracy_metric_matches_paper_definition() {
        let g = generators::kings_graph(3, 3);
        let exact = kings_tile_coloring(3, 3);
        assert!(exact.is_proper(&g));
        assert_eq!(exact.accuracy(&g), 1.0);
        assert_eq!(exact.potts_energy(&g), 0.0);

        // Monochrome coloring violates every edge.
        let mono = Coloring::from_indices(vec![0; 9]);
        assert_eq!(mono.accuracy(&g), 0.0);
        assert_eq!(mono.conflicts(&g), g.num_edges());
    }

    #[test]
    fn edgeless_graph_has_unit_accuracy() {
        let g = Graph::empty(4);
        let c = Coloring::from_indices([0, 0, 0, 0]);
        assert_eq!(c.accuracy(&g), 1.0);
        assert!(c.is_proper(&g));
    }

    #[test]
    #[should_panic(expected = "coloring covers")]
    fn conflicts_panics_on_size_mismatch() {
        let g = Graph::empty(4);
        Coloring::from_indices([0, 1]).conflicts(&g);
    }

    #[test]
    fn tile_coloring_is_proper_for_all_paper_sizes() {
        for side in [7usize, 20, 32, 46] {
            let g = generators::kings_graph_square(side);
            let c = kings_tile_coloring(side, side);
            assert!(c.is_proper(&g), "tile coloring failed for side {side}");
            assert_eq!(c.num_colors_used(), 4);
        }
    }

    #[test]
    fn greedy_respects_degree_bound() {
        let g = generators::kings_graph(5, 5);
        let order: Vec<NodeId> = g.nodes().collect();
        let c = greedy_coloring(&g, &order);
        assert!(c.is_proper(&g));
        assert!(c.num_colors_used() <= g.max_degree() + 1);
    }

    #[test]
    fn dsatur_four_colors_kings_graph() {
        let g = generators::kings_graph(7, 7);
        let c = dsatur(&g);
        assert!(c.is_proper(&g));
        assert_eq!(c.num_colors_used(), 4, "King's graphs are 4-chromatic");
    }

    #[test]
    fn dsatur_two_colors_bipartite() {
        let g = generators::grid_graph(4, 5);
        let c = dsatur(&g);
        assert!(c.is_proper(&g));
        assert_eq!(c.num_colors_used(), 2);
    }

    #[test]
    fn welsh_powell_proper_on_random_graph() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::erdos_renyi(40, 0.2, &mut rng);
        let c = welsh_powell(&g);
        assert!(c.is_proper(&g));
    }

    #[test]
    fn complete_graph_needs_n_colors() {
        let g = generators::complete_graph(6);
        let c = dsatur(&g);
        assert!(c.is_proper(&g));
        assert_eq!(c.num_colors_used(), 6);
    }

    #[test]
    fn random_coloring_has_expected_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let c = Coloring::random(100, 4, &mut rng);
        assert_eq!(c.len(), 100);
        assert!(c.color_range() <= 4);
        assert!(
            c.num_colors_used() >= 2,
            "100 random draws should hit >1 color"
        );
    }

    #[test]
    fn min_conflicts_repairs_noisy_coloring() {
        let g = generators::kings_graph(6, 6);
        let mut c = kings_tile_coloring(6, 6);
        // Corrupt a handful of nodes.
        for i in [0usize, 7, 14, 21, 28] {
            c.set_color(NodeId::new(i), Color(((i + 1) % 4) as u16));
        }
        let before = c.conflicts(&g);
        assert!(before > 0);
        let removed = min_conflicts_descent(&g, &mut c, 4, 50);
        assert_eq!(removed, before - c.conflicts(&g));
        assert!(c.conflicts(&g) < before);
    }

    #[test]
    fn min_conflicts_keeps_proper_coloring_fixed() {
        let g = generators::kings_graph(5, 5);
        let mut c = kings_tile_coloring(5, 5);
        let removed = min_conflicts_descent(&g, &mut c, 4, 10);
        assert_eq!(removed, 0);
        assert!(c.is_proper(&g));
    }

    #[test]
    fn kempe_swap_preserves_properness() {
        let g = generators::kings_graph(5, 5);
        let mut c = kings_tile_coloring(5, 5);
        assert!(c.is_proper(&g));
        // Node 6 = cell (1,1) has tile color 3; interchange its {3,0} chain.
        assert_eq!(c.color(NodeId::new(6)), Color(3));
        let size = kempe_chain_swap(&g, &mut c, NodeId::new(6), Color(0));
        assert!(size >= 1);
        assert!(
            c.is_proper(&g),
            "Kempe interchange must preserve properness"
        );
        // Vertex 6 now carries the other color of its chain pair.
        assert_eq!(c.color(NodeId::new(6)), Color(0));
    }

    #[test]
    fn kempe_swap_same_color_is_noop() {
        let g = generators::path_graph(3);
        let mut c = Coloring::from_indices([0, 1, 0]);
        let before = c.clone();
        assert_eq!(kempe_chain_swap(&g, &mut c, NodeId::new(0), Color(0)), 0);
        assert_eq!(c, before);
    }

    #[test]
    fn setters_and_accessors() {
        let mut c = Coloring::from_indices([0, 1, 2]);
        c.set_color(NodeId::new(0), Color(3));
        assert_eq!(c.color(NodeId::new(0)), Color(3));
        assert_eq!(c.as_slice().len(), 3);
        assert_eq!(c.iter().count(), 3);
        assert_eq!(c.color_range(), 4);
        assert_eq!(Color(3).to_string(), "c3");
        let collected: Coloring = c.as_slice().iter().copied().collect();
        assert_eq!(collected, c);
    }
}
