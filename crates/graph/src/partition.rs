//! Graph partitioning: the electrical effect of the `P_EN` coupling gates.
//!
//! After stage 1, the MSROPM "cuts off the coupling between different-phased
//! oscillators" (§3.3), splitting the circuit into two independent
//! sub-circuits. [`EdgeMask`] models the per-coupling enable bits and
//! [`Subgraph`] represents one electrically connected island together with
//! its mapping back to the original node ids.

use crate::cut::Cut;
use crate::graph::{EdgeId, Graph, NodeId};

/// Per-edge enable bits, mirroring the paper's `P_EN` (and per-coupling
/// `L_EN`) control signals.
///
/// # Example
///
/// ```
/// use msropm_graph::{EdgeMask, Graph};
///
/// let g = Graph::from_edges(3, [(0, 1), (1, 2)])?;
/// let mut mask = EdgeMask::all_enabled(&g);
/// mask.disable(msropm_graph::EdgeId::new(0));
/// assert_eq!(mask.num_enabled(), 1);
/// # Ok::<(), msropm_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EdgeMask {
    enabled: Vec<bool>,
}

impl EdgeMask {
    /// Mask with every coupling enabled (`G_EN` high, all `P_EN` high).
    pub fn all_enabled(g: &Graph) -> Self {
        EdgeMask {
            enabled: vec![true; g.num_edges()],
        }
    }

    /// Mask with every coupling disabled.
    pub fn all_disabled(g: &Graph) -> Self {
        EdgeMask {
            enabled: vec![false; g.num_edges()],
        }
    }

    /// Number of edges this mask covers.
    pub fn len(&self) -> usize {
        self.enabled.len()
    }

    /// Returns `true` if the mask covers zero edges.
    pub fn is_empty(&self) -> bool {
        self.enabled.is_empty()
    }

    /// Returns `true` if edge `e` is enabled.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn is_enabled(&self, e: EdgeId) -> bool {
        self.enabled[e.index()]
    }

    /// Enables edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn enable(&mut self, e: EdgeId) {
        self.enabled[e.index()] = true;
    }

    /// Disables edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn disable(&mut self, e: EdgeId) {
        self.enabled[e.index()] = false;
    }

    /// Number of enabled edges.
    pub fn num_enabled(&self) -> usize {
        self.enabled.iter().filter(|&&e| e).count()
    }

    /// Disables every edge crossing `cut` (the stage-transition `P_EN`
    /// action) and returns how many were switched off.
    ///
    /// # Panics
    ///
    /// Panics if sizes are inconsistent with `g`.
    pub fn disable_crossing(&mut self, g: &Graph, cut: &Cut) -> usize {
        assert_eq!(
            self.enabled.len(),
            g.num_edges(),
            "mask/graph size mismatch"
        );
        let mut n = 0;
        for (e, u, v) in g.edges() {
            if cut.side(u) != cut.side(v) && self.enabled[e.index()] {
                self.enabled[e.index()] = false;
                n += 1;
            }
        }
        n
    }
}

/// A vertex-induced subgraph keeping the mapping to the parent graph.
#[derive(Debug, Clone)]
pub struct Subgraph {
    graph: Graph,
    /// `to_parent[i]` = parent node id of local node `i`.
    to_parent: Vec<NodeId>,
}

impl Subgraph {
    /// Induces the subgraph of `g` on `nodes` (order defines local ids).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` contains duplicates or out-of-range ids.
    pub fn induced(g: &Graph, nodes: &[NodeId]) -> Self {
        let mut local_of = vec![usize::MAX; g.num_nodes()];
        for (local, &v) in nodes.iter().enumerate() {
            assert!(v.index() < g.num_nodes(), "node {v} out of range");
            assert!(local_of[v.index()] == usize::MAX, "duplicate node {v}");
            local_of[v.index()] = local;
        }
        let mut edges = Vec::new();
        for (_, u, v) in g.edges() {
            let (lu, lv) = (local_of[u.index()], local_of[v.index()]);
            if lu != usize::MAX && lv != usize::MAX {
                edges.push((lu, lv));
            }
        }
        let graph = Graph::from_edges(nodes.len(), edges).expect("induced edges are valid");
        Subgraph {
            graph,
            to_parent: nodes.to_vec(),
        }
    }

    /// The subgraph itself.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Parent node id of local node `local`.
    ///
    /// # Panics
    ///
    /// Panics if `local` is out of range.
    pub fn parent_of(&self, local: NodeId) -> NodeId {
        self.to_parent[local.index()]
    }

    /// All parent node ids in local order.
    pub fn parent_nodes(&self) -> &[NodeId] {
        &self.to_parent
    }

    /// Number of nodes in this subgraph.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }
}

/// Splits `g` along `cut` into the two induced subgraphs (side A = `false`
/// first), exactly as the coupling gating partitions the oscillator array.
pub fn split_by_cut(g: &Graph, cut: &Cut) -> (Subgraph, Subgraph) {
    let a = cut.nodes_on_side(false);
    let b = cut.nodes_on_side(true);
    (Subgraph::induced(g, &a), Subgraph::induced(g, &b))
}

/// The graph obtained by keeping only the edges enabled in `mask` (node set
/// unchanged). This is the "effective" coupling network the oscillators see.
pub fn masked_graph(g: &Graph, mask: &EdgeMask) -> Graph {
    assert_eq!(mask.len(), g.num_edges(), "mask/graph size mismatch");
    let edges: Vec<(usize, usize)> = g
        .edges()
        .filter(|&(e, _, _)| mask.is_enabled(e))
        .map(|(_, u, v)| (u.index(), v.index()))
        .collect();
    Graph::from_edges(g.num_nodes(), edges).expect("masked edges are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn mask_basics() {
        let g = generators::cycle_graph(4);
        let mut m = EdgeMask::all_enabled(&g);
        assert_eq!(m.num_enabled(), 4);
        m.disable(EdgeId::new(2));
        assert!(!m.is_enabled(EdgeId::new(2)));
        m.enable(EdgeId::new(2));
        assert_eq!(m.num_enabled(), 4);
        assert_eq!(EdgeMask::all_disabled(&g).num_enabled(), 0);
    }

    #[test]
    fn disable_crossing_partitions_the_circuit() {
        let g = generators::kings_graph(4, 4);
        let cut = crate::cut::kings_stripe_cut(4, 4);
        let mut mask = EdgeMask::all_enabled(&g);
        let cut_edges = mask.disable_crossing(&g, &cut);
        assert_eq!(cut_edges, cut.cut_value(&g));

        // The masked graph must have >= 2 components (one per side at least)
        // and no edge between different sides.
        let mg = masked_graph(&g, &mask);
        for (_, u, v) in mg.edges() {
            assert_eq!(cut.side(u), cut.side(v));
        }
        let (_, k) = mg.connected_components();
        assert!(k >= 2);
    }

    #[test]
    fn induced_subgraph_maps_back() {
        let g = generators::kings_graph(3, 3);
        let nodes: Vec<NodeId> = vec![NodeId::new(0), NodeId::new(1), NodeId::new(4)];
        let sg = Subgraph::induced(&g, &nodes);
        assert_eq!(sg.num_nodes(), 3);
        // 0-1 horizontal, 0-4 diagonal, 1-4 vertical: all present.
        assert_eq!(sg.graph().num_edges(), 3);
        assert_eq!(sg.parent_of(NodeId::new(2)), NodeId::new(4));
        assert_eq!(sg.parent_nodes().len(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate node")]
    fn induced_rejects_duplicates() {
        let g = generators::path_graph(3);
        Subgraph::induced(&g, &[NodeId::new(0), NodeId::new(0)]);
    }

    #[test]
    fn split_by_cut_covers_all_nodes() {
        let g = generators::kings_graph(4, 4);
        let cut = crate::cut::kings_stripe_cut(4, 4);
        let (a, b) = split_by_cut(&g, &cut);
        assert_eq!(a.num_nodes() + b.num_nodes(), g.num_nodes());
        // Stripe cut leaves each side as disjoint row paths: bipartite.
        assert!(a.graph().is_bipartite());
        assert!(b.graph().is_bipartite());
    }

    #[test]
    fn stripe_partition_yields_two_colorable_sides_paper_flow() {
        // End-to-end invariant behind the paper's divide-and-color: a stripe
        // stage-1 cut makes both halves bipartite, so stage 2 can 2-color
        // them and the merged result is a proper 4-coloring.
        for side in [3usize, 5, 7] {
            let g = generators::kings_graph_square(side);
            let cut = crate::cut::kings_stripe_cut(side, side);
            let (a, b) = split_by_cut(&g, &cut);
            assert!(a.graph().is_bipartite());
            assert!(b.graph().is_bipartite());
        }
    }

    #[test]
    fn masked_graph_keeps_node_count() {
        let g = generators::cycle_graph(5);
        let mut mask = EdgeMask::all_enabled(&g);
        mask.disable(EdgeId::new(0));
        let mg = masked_graph(&g, &mask);
        assert_eq!(mg.num_nodes(), 5);
        assert_eq!(mg.num_edges(), 4);
    }
}
