//! A small fixed-capacity bit set used across the workspace.
//!
//! The offline dependency policy excludes `fixedbitset`, so this module
//! provides the handful of operations the solvers need: set/clear/test,
//! population count, union/intersection, and iteration over set bits.

use std::fmt;

/// A fixed-capacity set of `usize` indices backed by `u64` words.
///
/// # Example
///
/// ```
/// use msropm_graph::BitSet;
///
/// let mut s = BitSet::new(100);
/// s.insert(3);
/// s.insert(64);
/// assert!(s.contains(3));
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 64]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set able to hold indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Creates a set with every index in `0..capacity` present.
    pub fn full(capacity: usize) -> Self {
        let mut s = BitSet::new(capacity);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        s.trim();
        s
    }

    fn trim(&mut self) {
        let tail = self.capacity % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Maximum index + 1 this set can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `index`; returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity`.
    pub fn insert(&mut self, index: usize) -> bool {
        assert!(index < self.capacity, "bitset index {index} out of range");
        let (w, b) = (index / 64, index % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !was
    }

    /// Removes `index`; returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity`.
    pub fn remove(&mut self, index: usize) -> bool {
        assert!(index < self.capacity, "bitset index {index} out of range");
        let (w, b) = (index / 64, index % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        was
    }

    /// Returns `true` if `index` is present (out-of-range indices are absent).
    pub fn contains(&self, index: usize) -> bool {
        if index >= self.capacity {
            return false;
        }
        self.words[index / 64] & (1 << (index % 64)) != 0
    }

    /// Number of indices present.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if no index is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all indices.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection with `other`.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Iterator over the set indices in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// Iterator over set bits produced by [`BitSet::iter`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects indices into a set sized to the maximum element + 1.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |&m| m + 1);
        let mut s = BitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

impl Extend<usize> for BitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for i in iter {
            self.insert(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(0));
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        BitSet::new(8).insert(8);
    }

    #[test]
    fn full_respects_capacity() {
        let s = BitSet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(69));
        assert!(!s.contains(70));
    }

    #[test]
    fn set_algebra() {
        let mut a: BitSet = [1usize, 3, 5].into_iter().collect();
        let mut b = BitSet::new(a.capacity());
        b.insert(3);
        b.insert(4);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 3, 4, 5]);
        a.intersect_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn iteration_across_words() {
        let idx = [0usize, 63, 64, 127, 128];
        let s: BitSet = idx.into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), idx.to_vec());
    }

    #[test]
    fn clear_and_empty() {
        let mut s = BitSet::full(10);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn debug_is_nonempty() {
        let s = BitSet::new(4);
        assert_eq!(format!("{s:?}"), "{}");
        let t: BitSet = [2usize].into_iter().collect();
        assert_eq!(format!("{t:?}"), "{2}");
    }
}
