//! Graph instance generators.
//!
//! The paper evaluates on custom King's-graph 4-coloring problems ("due to
//! the lack of commonly accepted benchmark problems", §4) with 49, 400, 1024
//! and 2116 nodes — that is, square King's graphs of side 7, 20, 32 and 46
//! with **all eight neighbour couplings active**. This module provides that
//! family plus the auxiliary topologies mentioned in the background section
//! (hexagonal lattices of ref \[7\], grids) and random/planted families used by
//! the extended experiments.

use crate::graph::{Graph, GraphBuilder};
use rand::seq::SliceRandom;
use rand::Rng;

/// King's graph on an `rows x cols` board: vertices are board cells, edges
/// connect cells a king's move apart (horizontal, vertical and diagonal
/// neighbours — up to 8 per node, exactly as in the paper's benchmarks).
///
/// The node at `(r, c)` has index `r * cols + c`.
///
/// # Panics
///
/// Panics if `rows == 0 || cols == 0`.
///
/// # Example
///
/// ```
/// use msropm_graph::generators::kings_graph;
///
/// // Paper sizes: 7^2=49, 20^2=400, 32^2=1024, 46^2=2116 nodes.
/// assert_eq!(kings_graph(7, 7).num_nodes(), 49);
/// assert_eq!(kings_graph(46, 46).num_nodes(), 2116);
/// // Edge count for an n x n board is 2(n-1)(2n-1).
/// assert_eq!(kings_graph(7, 7).num_edges(), 156);
/// ```
pub fn kings_graph(rows: usize, cols: usize) -> Graph {
    assert!(
        rows > 0 && cols > 0,
        "kings_graph requires a non-empty board"
    );
    let idx = |r: usize, c: usize| r * cols + c;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            // Emit each edge once: east, south, south-east, south-west.
            if c + 1 < cols {
                b.add_edge(idx(r, c), idx(r, c + 1)).expect("valid edge");
            }
            if r + 1 < rows {
                b.add_edge(idx(r, c), idx(r + 1, c)).expect("valid edge");
                if c + 1 < cols {
                    b.add_edge(idx(r, c), idx(r + 1, c + 1))
                        .expect("valid edge");
                }
                if c > 0 {
                    b.add_edge(idx(r, c), idx(r + 1, c - 1))
                        .expect("valid edge");
                }
            }
        }
    }
    b.build()
}

/// Square King's graph with `side * side` nodes (the paper's benchmark shape).
pub fn kings_graph_square(side: usize) -> Graph {
    kings_graph(side, side)
}

/// 4-neighbour rectangular grid graph (`rows x cols`).
///
/// # Panics
///
/// Panics if `rows == 0 || cols == 0`.
pub fn grid_graph(rows: usize, cols: usize) -> Graph {
    assert!(
        rows > 0 && cols > 0,
        "grid_graph requires a non-empty board"
    );
    let idx = |r: usize, c: usize| r * cols + c;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(idx(r, c), idx(r, c + 1)).expect("valid edge");
            }
            if r + 1 < rows {
                b.add_edge(idx(r, c), idx(r + 1, c)).expect("valid edge");
            }
        }
    }
    b.build()
}

/// Triangular lattice: a grid with one diagonal per cell, giving six
/// neighbours for interior nodes. Chromatic number 3 wherever a triangle
/// exists — useful for the 3-coloring ROPM baseline (ref \[14\]).
///
/// # Panics
///
/// Panics if `rows == 0 || cols == 0`.
pub fn triangular_lattice(rows: usize, cols: usize) -> Graph {
    assert!(
        rows > 0 && cols > 0,
        "triangular_lattice requires a non-empty board"
    );
    let idx = |r: usize, c: usize| r * cols + c;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(idx(r, c), idx(r, c + 1)).expect("valid edge");
            }
            if r + 1 < rows {
                b.add_edge(idx(r, c), idx(r + 1, c)).expect("valid edge");
                if c + 1 < cols {
                    b.add_edge(idx(r, c), idx(r + 1, c + 1))
                        .expect("valid edge");
                }
            }
        }
    }
    b.build()
}

/// Hexagonal (honeycomb) lattice in "brick wall" coordinates, the sparse
/// nearest-neighbour topology used by the ROSC Ising fabric of ref \[7\].
/// Every interior node has degree 3.
///
/// # Panics
///
/// Panics if `rows == 0 || cols == 0`.
pub fn hex_lattice(rows: usize, cols: usize) -> Graph {
    assert!(
        rows > 0 && cols > 0,
        "hex_lattice requires a non-empty board"
    );
    let idx = |r: usize, c: usize| r * cols + c;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(idx(r, c), idx(r, c + 1)).expect("valid edge");
            }
            // Vertical rungs alternate like bricks: present when (r+c) even.
            if r + 1 < rows && (r + c) % 2 == 0 {
                b.add_edge(idx(r, c), idx(r + 1, c)).expect("valid edge");
            }
        }
    }
    b.build()
}

/// Cycle graph `C_n`.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle_graph(n: usize) -> Graph {
    assert!(n >= 3, "cycle_graph requires n >= 3");
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_edge(i, (i + 1) % n).expect("valid edge");
    }
    b.build()
}

/// Path graph `P_n` (n nodes, n-1 edges). `path_graph(1)` is a single node.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path_graph(n: usize) -> Graph {
    assert!(n >= 1, "path_graph requires n >= 1");
    let mut b = GraphBuilder::new(n);
    for i in 0..n.saturating_sub(1) {
        b.add_edge(i, i + 1).expect("valid edge");
    }
    b.build()
}

/// Complete graph `K_n`.
pub fn complete_graph(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_edge(i, j).expect("valid edge");
        }
    }
    b.build()
}

/// Star graph: node 0 connected to nodes `1..n`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star_graph(n: usize) -> Graph {
    assert!(n >= 1, "star_graph requires n >= 1");
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(0, i).expect("valid edge");
    }
    b.build()
}

/// Complete bipartite graph `K_{a,b}` (left part `0..a`, right part `a..a+b`).
pub fn complete_bipartite(a: usize, b_size: usize) -> Graph {
    let mut b = GraphBuilder::new(a + b_size);
    for i in 0..a {
        for j in 0..b_size {
            b.add_edge(i, a + j).expect("valid edge");
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, p)` random graph.
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                b.add_edge(i, j).expect("valid edge");
            }
        }
    }
    b.build()
}

/// Random geometric graph: `n` points uniform in the unit square, edges
/// between pairs closer than `radius`. Produces planar-ish, locally coupled
/// instances resembling physical oscillator placements.
pub fn random_geometric<R: Rng + ?Sized>(n: usize, radius: f64, rng: &mut R) -> Graph {
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let r2 = radius * radius;
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = pts[i].0 - pts[j].0;
            let dy = pts[i].1 - pts[j].1;
            if dx * dx + dy * dy <= r2 {
                b.add_edge(i, j).expect("valid edge");
            }
        }
    }
    b.build()
}

/// Random graph guaranteed to be `k`-colorable: nodes are assigned to `k`
/// hidden classes round-robin (so every class is non-empty for `n >= k`),
/// then each cross-class pair becomes an edge with probability `p`.
///
/// The planted classes certify k-colorability; the generator also returns
/// them so tests can verify solvers against a known proper coloring.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn planted_k_colorable<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    p: f64,
    rng: &mut R,
) -> (Graph, Vec<usize>) {
    assert!(k > 0, "planted_k_colorable requires k >= 1");
    let mut classes: Vec<usize> = (0..n).map(|i| i % k).collect();
    classes.shuffle(rng);
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if classes[i] != classes[j] && rng.gen_bool(p.clamp(0.0, 1.0)) {
                b.add_edge(i, j).expect("valid edge");
            }
        }
    }
    (b.build(), classes)
}

/// Wheel graph `W_n`: a hub (node 0) connected to every node of an
/// `(n−1)`-cycle. Chromatic number 4 when the rim is an odd cycle — a
/// compact non-planar-looking 4-coloring stress case.
///
/// # Panics
///
/// Panics if `n < 4`.
pub fn wheel_graph(n: usize) -> Graph {
    assert!(n >= 4, "wheel_graph requires n >= 4");
    let rim = n - 1;
    let mut b = GraphBuilder::new(n);
    for i in 0..rim {
        b.add_edge(0, 1 + i).expect("valid edge");
        b.add_edge(1 + i, 1 + (i + 1) % rim).expect("valid edge");
    }
    b.build()
}

/// The Petersen graph: 10 nodes, 15 edges, 3-chromatic, girth 5 — the
/// classical counterexample machine, useful for solver stress tests.
pub fn petersen_graph() -> Graph {
    let mut b = GraphBuilder::new(10);
    for i in 0..5 {
        b.add_edge(i, (i + 1) % 5).expect("outer cycle");
        b.add_edge(5 + i, 5 + (i + 2) % 5).expect("inner pentagram");
        b.add_edge(i, 5 + i).expect("spoke");
    }
    b.build()
}

/// Barbell graph: two `K_m` cliques joined by a single bridge edge —
/// exercises partition-style solvers with an obvious bottleneck.
///
/// # Panics
///
/// Panics if `m < 2`.
pub fn barbell_graph(m: usize) -> Graph {
    assert!(m >= 2, "barbell_graph requires cliques of size >= 2");
    let mut b = GraphBuilder::new(2 * m);
    for i in 0..m {
        for j in (i + 1)..m {
            b.add_edge(i, j).expect("left clique");
            b.add_edge(m + i, m + j).expect("right clique");
        }
    }
    b.add_edge(m - 1, m).expect("bridge");
    b.build()
}

/// Number of edges of an `n x n` King's graph: `2(n-1)(2n-1)`.
///
/// Used to cross-check the generator and to parameterize power models.
pub fn kings_graph_edge_count(side: usize) -> usize {
    if side == 0 {
        0
    } else {
        2 * (side - 1) * (2 * side - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kings_graph_paper_sizes() {
        for (side, nodes) in [(7usize, 49usize), (20, 400), (32, 1024), (46, 2116)] {
            let g = kings_graph_square(side);
            assert_eq!(g.num_nodes(), nodes);
            assert_eq!(g.num_edges(), kings_graph_edge_count(side));
        }
    }

    #[test]
    fn kings_graph_degrees() {
        let g = kings_graph(5, 5);
        // Interior nodes have all 8 king moves ("8 edges per node", §4.1).
        let interior = crate::NodeId::new(2 * 5 + 2);
        assert_eq!(g.degree(interior), 8);
        // Corners have 3.
        assert_eq!(g.degree(crate::NodeId::new(0)), 3);
        // Edge (non-corner border) nodes have 5.
        assert_eq!(g.degree(crate::NodeId::new(2)), 5);
    }

    #[test]
    fn kings_graph_rectangular() {
        let g = kings_graph(2, 3);
        // 2x3 king graph: horizontal 2*2=4, vertical 3, diagonals 2*2=4 -> 11.
        assert_eq!(g.num_edges(), 11);
        assert!(g.is_connected());
    }

    #[test]
    fn grid_graph_structure() {
        let g = grid_graph(3, 4);
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4); // (cols-1)*rows + (rows-1)*cols
        assert!(g.is_bipartite());
    }

    #[test]
    fn triangular_lattice_has_triangles() {
        let g = triangular_lattice(2, 2);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 5);
        assert!(!g.is_bipartite());
    }

    #[test]
    fn hex_lattice_max_degree_three() {
        let g = hex_lattice(6, 6);
        assert!(g.max_degree() <= 3);
        assert!(g.is_bipartite(), "honeycomb lattice is bipartite");
    }

    #[test]
    fn small_standard_families() {
        assert_eq!(cycle_graph(5).num_edges(), 5);
        assert!(!cycle_graph(5).is_bipartite());
        assert!(cycle_graph(6).is_bipartite());
        assert_eq!(path_graph(1).num_edges(), 0);
        assert_eq!(path_graph(6).num_edges(), 5);
        assert_eq!(complete_graph(5).num_edges(), 10);
        assert_eq!(star_graph(7).num_edges(), 6);
        assert_eq!(complete_bipartite(3, 4).num_edges(), 12);
        assert!(complete_bipartite(3, 4).is_bipartite());
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        let g0 = erdos_renyi(10, 0.0, &mut rng);
        assert_eq!(g0.num_edges(), 0);
        let g1 = erdos_renyi(10, 1.0, &mut rng);
        assert_eq!(g1.num_edges(), 45);
    }

    #[test]
    fn random_geometric_radius_monotone() {
        let mut rng = StdRng::seed_from_u64(7);
        let small = random_geometric(40, 0.1, &mut rng);
        let mut rng = StdRng::seed_from_u64(7);
        let large = random_geometric(40, 0.5, &mut rng);
        assert!(small.num_edges() <= large.num_edges());
    }

    #[test]
    fn planted_coloring_is_proper() {
        let mut rng = StdRng::seed_from_u64(42);
        let (g, classes) = planted_k_colorable(60, 4, 0.3, &mut rng);
        for (_, u, v) in g.edges() {
            assert_ne!(classes[u.index()], classes[v.index()]);
        }
        // Round-robin assignment guarantees all classes non-empty.
        for k in 0..4 {
            assert!(classes.contains(&k));
        }
    }

    #[test]
    fn edge_count_formula_zero_side() {
        assert_eq!(kings_graph_edge_count(0), 0);
        assert_eq!(kings_graph_edge_count(1), 0);
    }

    #[test]
    fn wheel_graph_structure() {
        // W6: hub + 5-cycle rim -> 10 edges, odd rim -> 4-chromatic.
        let g = wheel_graph(6);
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.num_edges(), 10);
        assert_eq!(g.degree(crate::NodeId::new(0)), 5);
        let c = crate::coloring::dsatur(&g);
        assert!(c.is_proper(&g));
        assert_eq!(c.num_colors_used(), 4);
        // Even rim needs only 3.
        let g7 = wheel_graph(7);
        let c7 = crate::coloring::dsatur(&g7);
        assert_eq!(c7.num_colors_used(), 3);
    }

    #[test]
    fn petersen_graph_invariants() {
        let g = petersen_graph();
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(g.num_edges(), 15);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 3, "Petersen is 3-regular");
        }
        assert!(!g.is_bipartite());
        let c = crate::coloring::dsatur(&g);
        assert!(c.is_proper(&g));
        assert_eq!(c.num_colors_used(), 3);
    }

    #[test]
    fn barbell_graph_structure() {
        let g = barbell_graph(4);
        assert_eq!(g.num_nodes(), 8);
        assert_eq!(g.num_edges(), 2 * 6 + 1);
        assert!(g.is_connected());
        let c = crate::coloring::dsatur(&g);
        assert!(c.is_proper(&g));
        assert_eq!(c.num_colors_used(), 4, "K4 cliques force 4 colors");
    }
}
