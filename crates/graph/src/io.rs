//! DIMACS `.col` and plain edge-list readers/writers.
//!
//! The paper uses custom-generated instances, but a reproduction should be
//! runnable on standard graph-coloring inputs; DIMACS `.col` is the de facto
//! exchange format for coloring benchmarks.

use crate::graph::{Graph, GraphBuilder, GraphError};
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

/// Errors produced while parsing graph files.
#[derive(Debug)]
#[non_exhaustive]
pub enum ParseGraphError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line could not be parsed; carries the 1-based line number and text.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Offending line content.
        content: String,
    },
    /// The `p edge` header was missing before the first edge.
    MissingHeader,
    /// Graph-construction failure (duplicate edge, out-of-range node, ...).
    Graph(GraphError),
}

impl fmt::Display for ParseGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseGraphError::Io(e) => write!(f, "i/o error: {e}"),
            ParseGraphError::Malformed { line, content } => {
                write!(f, "malformed line {line}: {content:?}")
            }
            ParseGraphError::MissingHeader => write!(f, "missing 'p edge' header line"),
            ParseGraphError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl Error for ParseGraphError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseGraphError::Io(e) => Some(e),
            ParseGraphError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ParseGraphError {
    fn from(e: std::io::Error) -> Self {
        ParseGraphError::Io(e)
    }
}

impl From<GraphError> for ParseGraphError {
    fn from(e: GraphError) -> Self {
        ParseGraphError::Graph(e)
    }
}

/// Reads a DIMACS `.col` graph (`c` comments, `p edge N M` header, `e u v`
/// edges with 1-based node ids). Duplicate edges are tolerated (deduped), as
/// several published instances contain both orientations.
///
/// # Errors
///
/// Returns [`ParseGraphError`] on I/O failure, malformed lines, a missing
/// header, or out-of-range endpoints.
///
/// # Example
///
/// ```
/// use msropm_graph::io::read_dimacs;
///
/// let text = "c tiny\np edge 3 2\ne 1 2\ne 2 3\n";
/// let g = read_dimacs(text.as_bytes())?;
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.num_edges(), 2);
/// # Ok::<(), msropm_graph::io::ParseGraphError>(())
/// ```
pub fn read_dimacs<R: BufRead>(reader: R) -> Result<Graph, ParseGraphError> {
    let mut builder: Option<GraphBuilder> = None;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        let malformed = || ParseGraphError::Malformed {
            line: lineno + 1,
            content: line.to_string(),
        };
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("p ") {
            let mut parts = rest.split_whitespace();
            let kind = parts.next().ok_or_else(malformed)?;
            if kind != "edge" && kind != "col" {
                return Err(malformed());
            }
            let n: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(malformed)?;
            builder = Some(GraphBuilder::new(n));
        } else if let Some(rest) = line.strip_prefix("e ") {
            let b = builder.as_mut().ok_or(ParseGraphError::MissingHeader)?;
            let mut parts = rest.split_whitespace();
            let u: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(malformed)?;
            let v: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(malformed)?;
            if u == 0 || v == 0 {
                return Err(malformed());
            }
            match b.add_edge(u - 1, v - 1) {
                Ok(_) | Err(GraphError::DuplicateEdge(_, _)) => {}
                Err(e) => return Err(e.into()),
            }
        } else {
            return Err(malformed());
        }
    }
    match builder {
        Some(b) => Ok(b.build()),
        None => Err(ParseGraphError::MissingHeader),
    }
}

/// Canonical 64-bit hash of a graph's **labelled** topology.
///
/// The digest covers the node count and the sorted list of normalized
/// `(min, max)` endpoint pairs, so it is independent of edge insertion
/// order but sensitive to vertex labelling: two isomorphic graphs with
/// different labellings hash differently (by design — the Potts machine
/// maps node ids onto physical oscillators, so a relabelled instance is
/// a different problem compilation). This is the problem-cache key used
/// by `msropm-server` to skip network/schedule recompilation for repeat
/// topologies.
///
/// The hash is FNV-1a (64-bit) over a fixed little-endian encoding and
/// is stable across platforms and releases of this crate within the
/// same major version.
///
/// # Example
///
/// ```
/// use msropm_graph::io::graph_hash;
/// use msropm_graph::Graph;
///
/// // Same edges in a different insertion order: same hash.
/// let a = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
/// let b = Graph::from_edges(3, [(2, 1), (0, 1)]).unwrap();
/// assert_eq!(graph_hash(&a), graph_hash(&b));
///
/// // Isomorphic but relabelled (path 0-1-2 vs 1-0-2): different hash.
/// let c = Graph::from_edges(3, [(0, 1), (0, 2)]).unwrap();
/// assert_ne!(graph_hash(&a), graph_hash(&c));
/// ```
pub fn graph_hash(g: &Graph) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    fn mix(h: &mut u64, bytes: &[u8]) {
        for &b in bytes {
            *h ^= u64::from(b);
            *h = h.wrapping_mul(FNV_PRIME);
        }
    }
    let mut edges: Vec<(u32, u32)> = g
        .edges()
        .map(|(_, u, v)| {
            let (a, b) = (u.index() as u32, v.index() as u32);
            (a.min(b), a.max(b))
        })
        .collect();
    edges.sort_unstable();
    let mut h = FNV_OFFSET;
    mix(&mut h, &(g.num_nodes() as u64).to_le_bytes());
    mix(&mut h, &(edges.len() as u64).to_le_bytes());
    for (a, b) in edges {
        mix(&mut h, &a.to_le_bytes());
        mix(&mut h, &b.to_le_bytes());
    }
    h
}

/// Writes `g` in DIMACS `.col` format (1-based node ids).
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_dimacs<W: Write>(g: &Graph, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "c generated by msropm-graph")?;
    writeln!(writer, "p edge {} {}", g.num_nodes(), g.num_edges())?;
    for (_, u, v) in g.edges() {
        writeln!(writer, "e {} {}", u.index() + 1, v.index() + 1)?;
    }
    Ok(())
}

/// Reads a plain edge list: one `u v` pair (0-based) per line, `#` comments.
/// The node count is `max id + 1` unless a larger `nodes N` directive occurs.
///
/// # Errors
///
/// Returns [`ParseGraphError`] on I/O failure or malformed lines.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<Graph, ParseGraphError> {
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut declared_nodes = 0usize;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        let malformed = || ParseGraphError::Malformed {
            line: lineno + 1,
            content: line.to_string(),
        };
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("nodes ") {
            declared_nodes = rest.trim().parse().map_err(|_| malformed())?;
            continue;
        }
        let mut parts = line.split_whitespace();
        let u: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(malformed)?;
        let v: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(malformed)?;
        edges.push((u, v));
    }
    let max_node = edges.iter().map(|&(u, v)| u.max(v) + 1).max().unwrap_or(0);
    let n = declared_nodes.max(max_node);
    let mut b = GraphBuilder::new(n);
    for (u, v) in edges {
        match b.add_edge(u, v) {
            Ok(_) | Err(GraphError::DuplicateEdge(_, _)) => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(b.build())
}

/// Writes `g` as a plain 0-based edge list with a `nodes N` directive.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_edge_list<W: Write>(g: &Graph, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "nodes {}", g.num_nodes())?;
    for (_, u, v) in g.edges() {
        writeln!(writer, "{} {}", u.index(), v.index())?;
    }
    Ok(())
}

/// Writes `g` in Graphviz DOT format, optionally coloring nodes by a
/// [`crate::Coloring`] (colors map to a fixed 8-entry palette, wrapping
/// beyond that). Useful for eyeballing divide-and-color results:
/// `dot -Tpng out.dot -o out.png`.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
///
/// # Panics
///
/// Panics if `coloring` is `Some` and does not cover all nodes of `g`.
pub fn write_dot<W: Write>(
    g: &Graph,
    coloring: Option<&crate::Coloring>,
    mut writer: W,
) -> std::io::Result<()> {
    const PALETTE: [&str; 8] = [
        "lightblue",
        "salmon",
        "palegreen",
        "gold",
        "plum",
        "lightgray",
        "orange",
        "cyan",
    ];
    if let Some(c) = coloring {
        assert_eq!(c.len(), g.num_nodes(), "coloring must cover the graph");
    }
    writeln!(writer, "graph msropm {{")?;
    writeln!(writer, "  node [style=filled];")?;
    for v in g.nodes() {
        match coloring {
            Some(c) => {
                let color = PALETTE[c.color(v).index() % PALETTE.len()];
                writeln!(writer, "  n{} [fillcolor={color}];", v.index())?;
            }
            None => writeln!(writer, "  n{};", v.index())?,
        }
    }
    for (_, u, v) in g.edges() {
        writeln!(writer, "  n{} -- n{};", u.index(), v.index())?;
    }
    writeln!(writer, "}}")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn graph_hash_is_insertion_order_invariant() {
        let a = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap();
        let b = Graph::from_edges(4, [(3, 0), (2, 3), (1, 0), (2, 1)]).unwrap();
        assert_eq!(graph_hash(&a), graph_hash(&b));
    }

    #[test]
    fn graph_hash_distinguishes_relabelled_isomorphs() {
        // Three labellings of the path on 4 vertices: pairwise isomorphic,
        // pairwise different as labelled graphs.
        let paths = [
            Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap(),
            Graph::from_edges(4, [(1, 0), (0, 2), (2, 3)]).unwrap(),
            Graph::from_edges(4, [(0, 1), (1, 3), (3, 2)]).unwrap(),
        ];
        for i in 0..paths.len() {
            for j in i + 1..paths.len() {
                assert_ne!(
                    graph_hash(&paths[i]),
                    graph_hash(&paths[j]),
                    "labellings {i} and {j} collided"
                );
            }
        }
    }

    #[test]
    fn graph_hash_sees_isolated_nodes_and_empty_graphs() {
        let a = Graph::from_edges(3, [(0, 1)]).unwrap();
        let b = Graph::from_edges(4, [(0, 1)]).unwrap();
        assert_ne!(graph_hash(&a), graph_hash(&b));
        assert_ne!(graph_hash(&Graph::empty(0)), graph_hash(&Graph::empty(1)));
        // Stable across calls.
        assert_eq!(graph_hash(&a), graph_hash(&a));
    }

    #[test]
    fn graph_hash_differs_across_paper_boards() {
        let mut seen = std::collections::HashSet::new();
        for side in [3usize, 4, 5, 7, 10] {
            assert!(seen.insert(graph_hash(&generators::kings_graph(side, side))));
            assert!(seen.insert(graph_hash(&generators::cycle_graph(side * side))));
        }
    }

    #[test]
    fn dimacs_roundtrip() {
        let g = generators::kings_graph(4, 4);
        let mut buf = Vec::new();
        write_dimacs(&g, &mut buf).unwrap();
        let g2 = read_dimacs(buf.as_slice()).unwrap();
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.num_edges(), g.num_edges());
        for (_, u, v) in g.edges() {
            assert!(g2.contains_edge(u, v));
        }
    }

    #[test]
    fn dimacs_tolerates_comments_and_duplicates() {
        let text = "c hello\nc world\np edge 3 3\ne 1 2\ne 2 1\ne 2 3\n";
        let g = read_dimacs(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn dimacs_missing_header() {
        let text = "e 1 2\n";
        assert!(matches!(
            read_dimacs(text.as_bytes()),
            Err(ParseGraphError::MissingHeader)
        ));
        assert!(matches!(
            read_dimacs("c only comments\n".as_bytes()),
            Err(ParseGraphError::MissingHeader)
        ));
    }

    #[test]
    fn dimacs_rejects_zero_based_ids() {
        let text = "p edge 2 1\ne 0 1\n";
        assert!(matches!(
            read_dimacs(text.as_bytes()),
            Err(ParseGraphError::Malformed { line: 2, .. })
        ));
    }

    #[test]
    fn dimacs_rejects_garbage() {
        let text = "p edge 2 1\nxyzzy\n";
        let err = read_dimacs(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("malformed line 2"));
    }

    #[test]
    fn dimacs_out_of_range_edge() {
        let text = "p edge 2 1\ne 1 5\n";
        assert!(matches!(
            read_dimacs(text.as_bytes()),
            Err(ParseGraphError::Graph(_))
        ));
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = generators::cycle_graph(6);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g2.num_nodes(), 6);
        assert_eq!(g2.num_edges(), 6);
    }

    #[test]
    fn edge_list_with_isolated_trailing_nodes() {
        let text = "# isolated node 5 exists\nnodes 6\n0 1\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn edge_list_empty_input() {
        let g = read_edge_list("".as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn dot_output_plain_and_colored() {
        let g = generators::path_graph(3);
        let mut plain = Vec::new();
        write_dot(&g, None, &mut plain).unwrap();
        let text = String::from_utf8(plain).unwrap();
        assert!(text.starts_with("graph msropm {"));
        assert!(text.contains("n0 -- n1;"));
        assert!(text.trim_end().ends_with('}'));

        let c = crate::Coloring::from_indices([0, 1, 0]);
        let mut colored = Vec::new();
        write_dot(&g, Some(&c), &mut colored).unwrap();
        let text = String::from_utf8(colored).unwrap();
        assert!(text.contains("fillcolor=lightblue"));
        assert!(text.contains("fillcolor=salmon"));
    }

    #[test]
    #[should_panic(expected = "coloring must cover")]
    fn dot_rejects_short_coloring() {
        let g = generators::path_graph(3);
        let c = crate::Coloring::from_indices([0]);
        write_dot(&g, Some(&c), &mut Vec::new()).unwrap();
    }
}
