//! 2-partitions (max-cut states) — the stage-1 objective of divide-and-color.
//!
//! §3.1: the MSROPM "solves the 4-coloring problem ... by dividing the
//! problem into 2 stages of max-cut problems". A [`Cut`] is the result of the
//! first stage: a side bit per node, with quality measured by the number of
//! graph edges crossing the cut.

use crate::coloring::Coloring;
use crate::graph::{EdgeId, Graph, NodeId};
use rand::Rng;

/// A 2-partition of the vertices of a graph.
///
/// # Example
///
/// ```
/// use msropm_graph::{Cut, Graph};
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])?;
/// let cut = Cut::new(vec![false, true, false, true]);
/// assert_eq!(cut.cut_value(&g), 4); // C4 is bipartite: all edges cut
/// # Ok::<(), msropm_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Cut {
    side: Vec<bool>,
}

impl Cut {
    /// Creates a cut from explicit side bits (`false` = side A, `true` = B).
    pub fn new(side: Vec<bool>) -> Self {
        Cut { side }
    }

    /// Uniform random cut over `num_nodes` vertices.
    pub fn random<R: Rng + ?Sized>(num_nodes: usize, rng: &mut R) -> Self {
        Cut {
            side: (0..num_nodes).map(|_| rng.gen_bool(0.5)).collect(),
        }
    }

    /// Builds a cut from a coloring by taking one bit of each color index
    /// (`bit = 0` gives the LSB). This is how the multi-stage machine's
    /// stage-1 state relates to the final coloring.
    pub fn from_coloring_bit(coloring: &Coloring, bit: u32) -> Self {
        Cut {
            side: coloring
                .as_slice()
                .iter()
                .map(|c| (c.index() >> bit) & 1 == 1)
                .collect(),
        }
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.side.len()
    }

    /// Returns `true` if the cut covers zero vertices.
    pub fn is_empty(&self) -> bool {
        self.side.is_empty()
    }

    /// Side of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn side(&self, v: NodeId) -> bool {
        self.side[v.index()]
    }

    /// Sets the side of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn set_side(&mut self, v: NodeId, side: bool) {
        self.side[v.index()] = side;
    }

    /// Flips the side of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn flip(&mut self, v: NodeId) {
        self.side[v.index()] = !self.side[v.index()];
    }

    /// Slice view of the side bits.
    pub fn as_slice(&self) -> &[bool] {
        &self.side
    }

    /// Number of edges crossing the cut.
    ///
    /// # Panics
    ///
    /// Panics if the cut does not cover all nodes of `g`.
    pub fn cut_value(&self, g: &Graph) -> usize {
        assert_eq!(
            self.side.len(),
            g.num_nodes(),
            "cut covers {} nodes but graph has {}",
            self.side.len(),
            g.num_nodes()
        );
        g.edges()
            .filter(|&(_, u, v)| self.side[u.index()] != self.side[v.index()])
            .count()
    }

    /// Ising energy `H = Σ_{(i,j)∈E} s_i s_j` with `s ∈ {-1,+1}` (paper
    /// Eq. 1 with unit antiferromagnetic couplings): `m - 2·cut`.
    pub fn ising_energy(&self, g: &Graph) -> i64 {
        let cut = self.cut_value(g) as i64;
        g.num_edges() as i64 - 2 * cut
    }

    /// Edge ids crossing the cut (the couplings `P_EN` switches off between
    /// stages).
    pub fn crossing_edges(&self, g: &Graph) -> Vec<EdgeId> {
        g.edges()
            .filter(|&(_, u, v)| self.side[u.index()] != self.side[v.index()])
            .map(|(e, _, _)| e)
            .collect()
    }

    /// Node ids on the requested side.
    pub fn nodes_on_side(&self, side: bool) -> Vec<NodeId> {
        self.side
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s == side)
            .map(|(i, _)| NodeId::new(i))
            .collect()
    }

    /// Greedy 1-flip local search: repeatedly flip any node whose flip
    /// increases the cut, until a local optimum. Returns the number of flips.
    ///
    /// This is the classical baseline for max-cut quality; the oscillator
    /// dynamics perform a continuous analogue of this descent.
    pub fn local_search(&mut self, g: &Graph) -> usize {
        let mut flips = 0;
        // Gain of flipping v = (same-side neighbours) - (cross-side neighbours).
        let mut improved = true;
        while improved {
            improved = false;
            for v in g.nodes() {
                let mut same = 0i64;
                let mut cross = 0i64;
                for (w, _) in g.neighbors(v) {
                    if self.side[w.index()] == self.side[v.index()] {
                        same += 1;
                    } else {
                        cross += 1;
                    }
                }
                if same > cross {
                    self.side[v.index()] = !self.side[v.index()];
                    flips += 1;
                    improved = true;
                }
            }
        }
        flips
    }
}

impl FromIterator<bool> for Cut {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        Cut {
            side: iter.into_iter().collect(),
        }
    }
}

/// The row-stripe cut of an `rows x cols` King's graph: side = row parity.
///
/// Cuts all vertical and diagonal edges, leaving only horizontal edges
/// uncut: `cut = (rows-1)·cols + 2(rows-1)(cols-1)` of
/// `m = 2·rows·cols - rows - cols - ... ` (see tests). On square boards this
/// is the optimum max-cut among periodic patterns and serves as the
/// "best-known" normalizer for stage-1 accuracy (Fig. 5(b)) at sizes where
/// exact max-cut is out of reach.
pub fn kings_stripe_cut(rows: usize, cols: usize) -> Cut {
    let mut side = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for _ in 0..cols {
            side.push(r % 2 == 1);
        }
    }
    Cut { side }
}

/// Exhaustive exact max-cut for graphs of up to 24 nodes.
///
/// Enumerates all 2^(n-1) side assignments (node 0 pinned to side A by
/// symmetry). Returns the best cut and its value.
///
/// # Panics
///
/// Panics if `g.num_nodes() > 24` or `g.num_nodes() == 0`.
pub fn exact_max_cut_bruteforce(g: &Graph) -> (Cut, usize) {
    let n = g.num_nodes();
    assert!(n > 0, "exact max-cut needs at least one node");
    assert!(n <= 24, "brute force limited to 24 nodes, got {n}");
    let edges: Vec<(usize, usize)> = g.edges().map(|(_, u, v)| (u.index(), v.index())).collect();
    let mut best_mask = 0u32;
    let mut best = 0usize;
    for mask in 0u32..(1u32 << (n - 1)) {
        // Bit i of `assign` is the side of node i+1 (node 0 always side A).
        let assign = mask << 1;
        let mut cut = 0usize;
        for &(u, v) in &edges {
            if ((assign >> u) ^ (assign >> v)) & 1 == 1 {
                cut += 1;
            }
        }
        if cut > best {
            best = cut;
            best_mask = assign;
        }
    }
    let side = (0..n).map(|i| (best_mask >> i) & 1 == 1).collect();
    (Cut { side }, best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cut_value_and_energy() {
        let g = generators::cycle_graph(4);
        let cut = Cut::new(vec![false, true, false, true]);
        assert_eq!(cut.cut_value(&g), 4);
        assert_eq!(cut.ising_energy(&g), -4);
        let bad = Cut::new(vec![false; 4]);
        assert_eq!(bad.cut_value(&g), 0);
        assert_eq!(bad.ising_energy(&g), 4);
    }

    #[test]
    fn odd_cycle_cannot_cut_all_edges() {
        let g = generators::cycle_graph(5);
        let (_, best) = exact_max_cut_bruteforce(&g);
        assert_eq!(best, 4, "C5 max-cut is 4");
    }

    #[test]
    fn exact_bruteforce_on_complete_graph() {
        // K4 max-cut = 4 (balanced bipartition 2+2).
        let g = generators::complete_graph(4);
        let (cut, best) = exact_max_cut_bruteforce(&g);
        assert_eq!(best, 4);
        assert_eq!(cut.cut_value(&g), 4);
    }

    #[test]
    fn stripe_cut_value_on_kings_graph() {
        let rows = 5;
        let cols = 5;
        let g = generators::kings_graph(rows, cols);
        let cut = kings_stripe_cut(rows, cols);
        let expected = (rows - 1) * cols + 2 * (rows - 1) * (cols - 1);
        assert_eq!(cut.cut_value(&g), expected);
    }

    #[test]
    fn stripe_cut_matches_exact_on_tiny_board() {
        // 3x3 King's graph has 9 nodes: brute-forceable.
        let g = generators::kings_graph(3, 3);
        let (_, exact) = exact_max_cut_bruteforce(&g);
        let stripe = kings_stripe_cut(3, 3).cut_value(&g);
        assert_eq!(stripe, exact, "stripe cut is optimal on 3x3");
    }

    #[test]
    fn local_search_monotone_improvement() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = generators::kings_graph(6, 6);
        let mut cut = Cut::random(g.num_nodes(), &mut rng);
        let before = cut.cut_value(&g);
        cut.local_search(&g);
        let after = cut.cut_value(&g);
        assert!(after >= before);
        // At a 1-flip local optimum no single flip helps.
        for v in g.nodes() {
            let mut probe = cut.clone();
            probe.flip(v);
            assert!(probe.cut_value(&g) <= after);
        }
    }

    #[test]
    fn crossing_edges_and_sides() {
        let g = generators::path_graph(3);
        let cut = Cut::new(vec![false, true, true]);
        let crossing = cut.crossing_edges(&g);
        assert_eq!(crossing.len(), 1);
        let (u, v) = g.endpoints(crossing[0]);
        assert_eq!((u.index(), v.index()), (0, 1));
        assert_eq!(cut.nodes_on_side(false).len(), 1);
        assert_eq!(cut.nodes_on_side(true).len(), 2);
    }

    #[test]
    fn from_coloring_bit_roundtrip() {
        let c = Coloring::from_indices([0, 1, 2, 3]);
        let lsb = Cut::from_coloring_bit(&c, 0);
        assert_eq!(lsb.as_slice(), &[false, true, false, true]);
        let msb = Cut::from_coloring_bit(&c, 1);
        assert_eq!(msb.as_slice(), &[false, false, true, true]);
    }

    #[test]
    fn setters() {
        let mut cut = Cut::new(vec![false, false]);
        cut.set_side(NodeId::new(1), true);
        assert!(cut.side(NodeId::new(1)));
        cut.flip(NodeId::new(1));
        assert!(!cut.side(NodeId::new(1)));
        let collected: Cut = [true, false].into_iter().collect();
        assert_eq!(collected.len(), 2);
    }

    #[test]
    #[should_panic(expected = "cut covers")]
    fn cut_value_panics_on_mismatch() {
        let g = generators::path_graph(3);
        Cut::new(vec![false]).cut_value(&g);
    }
}
