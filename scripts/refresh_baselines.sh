#!/usr/bin/env bash
# Regenerates every committed BENCH_*.json baseline at the repository
# root in one command:
#
#   BENCH_phase_step.json   <- bench_phase_step (kernel/batch ns/op)
#   BENCH_serve.json        <- serve_bench (in-process rows), then
#                              wire_bench (merges its wire_*/http_*
#                              socket rows into the same file: threaded
#                              rows, the wire_reactor_*/wire_mux_*
#                              front-end rows, the idle-connection-
#                              scaling row, and the HTTP gateway rows)
#   BENCH_problems.json     <- problems_bench (per-class solution-quality
#                              vs greedy baselines; deterministic, so an
#                              exact accuracy gate rather than a timing one)
#
# Run this when a PR intentionally changes performance (or the gate in
# crates/bench/src/baseline.rs reports a stale baseline) and commit the
# rewritten files together with the change. Expect a few minutes on a
# quiet machine; baselines written on a loaded box make the CI gate
# flaky for everyone else.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release -p msropm-bench"
cargo build --release -p msropm-bench

echo "==> bench_phase_step -> BENCH_phase_step.json"
cargo run --release -p msropm-bench --bin bench_phase_step

echo "==> serve_bench -> BENCH_serve.json (in-process rows)"
cargo run --release -p msropm-bench --bin serve_bench

echo "==> wire_bench -> BENCH_serve.json (socket rows merged in)"
cargo run --release -p msropm-bench --bin wire_bench

echo "==> problems_bench -> BENCH_problems.json (accuracy rows)"
cargo run --release -p msropm-bench --bin problems_bench

echo
git --no-pager diff --stat -- 'BENCH_*.json' || true
echo "Baselines refreshed. Review and commit BENCH_phase_step.json, BENCH_serve.json and BENCH_problems.json."
