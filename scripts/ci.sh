#!/usr/bin/env bash
# CI gate for the MSROPM workspace: formatting, lints (deny warnings),
# and the full test suite. Run from anywhere inside the repository.
#
#   ./scripts/ci.sh          # full gate
#   ./scripts/ci.sh --quick  # skip the release build
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
if [[ "${1:-}" == "--quick" ]]; then
    quick=1
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

if [[ "$quick" -eq 0 ]]; then
    echo "==> cargo build --release"
    cargo build --release
fi

echo "CI gate passed."
