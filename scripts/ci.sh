#!/usr/bin/env bash
# CI gate for the MSROPM workspace: formatting, lints (deny warnings),
# and the full test suite. Run from anywhere inside the repository.
#
#   ./scripts/ci.sh          # full gate
#   ./scripts/ci.sh --quick  # skip the release build
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
if [[ "${1:-}" == "--quick" ]]; then
    quick=1
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q -p msropm-ode --features ziggurat"
cargo test -q -p msropm-ode --features ziggurat

if [[ "$quick" -eq 0 ]]; then
    echo "==> cargo build --release"
    cargo build --release

    echo "==> cargo build --release --examples"
    cargo build --release --examples

    echo "==> bench_phase_step smoke (quick, throwaway output)"
    cargo run --release -p msropm-bench --bin bench_phase_step -- \
        --quick --out "$(mktemp -t bench_phase_step_smoke.XXXXXX.json)"
fi

echo "CI gate passed."
