#!/usr/bin/env bash
# CI gate for the MSROPM workspace: formatting, lints (deny warnings),
# the full test suite, and (full mode only) the job-server smoke stage
# plus the bench perf-regression gates against the committed BENCH_*.json
# baselines. Run from anywhere inside the repository.
#
#   ./scripts/ci.sh          # full gate
#   ./scripts/ci.sh --quick  # skip the release build, smoke and perf gates
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
if [[ "${1:-}" == "--quick" ]]; then
    quick=1
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q -p msropm-ode --features ziggurat"
cargo test -q -p msropm-ode --features ziggurat

if [[ "$quick" -eq 0 ]]; then
    echo "==> cargo build --release"
    cargo build --release

    echo "==> cargo build --release --examples"
    cargo build --release --examples

    echo "==> server smoke: boot, mixed batch, 1-vs-4-worker determinism (120 s hard cap)"
    # `timeout` tears the server down if anything deadlocks, so CI can't hang.
    timeout --kill-after=10 120 \
        cargo run --release -p msropm-bench --bin serve_bench -- --smoke

    echo "==> perf-regression gate: bench_phase_step vs committed BENCH_phase_step.json"
    timeout --kill-after=10 600 \
        cargo run --release -p msropm-bench --bin bench_phase_step -- \
        --out "$(mktemp -t bench_phase_step_ci.XXXXXX.json)" \
        --baseline BENCH_phase_step.json

    echo "==> perf-regression gate: serve_bench vs committed BENCH_serve.json"
    timeout --kill-after=10 600 \
        cargo run --release -p msropm-bench --bin serve_bench -- \
        --out "$(mktemp -t bench_serve_ci.XXXXXX.json)" \
        --baseline BENCH_serve.json
fi

echo "CI gate passed."
