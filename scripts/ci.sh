#!/usr/bin/env bash
# CI gate for the MSROPM workspace, structured as named stages:
#
#   fmt    rustfmt check
#   lint   clippy over all targets, deny warnings (incl. the boxmuller cfg)
#   test   full test suite (+ the boxmuller compat feature's suite)
#   build  release build incl. examples
#   smoke  job-server determinism smoke + wire smoke (real TCP loopback:
#          boot msropm_serve on an ephemeral port, run solve_remote
#          submit/status/cancel against it under a hard timeout) + HTTP
#          gateway smoke (every problem class as JSON over raw sockets,
#          plus /v1/stats and /metrics scrapes)
#   chaos  fault-injection suite (crates/client/tests/chaos.rs): armed
#          panics, killed workers, deadlines and socket faults against
#          both front ends, under a hard timeout — fault points are
#          process-global so the suite runs single-threaded
#   perf   bench_phase_step / serve_bench / wire_bench regression gates
#          against the committed BENCH_*.json baselines (wire_bench also
#          asserts the fault points are disarmed no-ops)
#
#   ./scripts/ci.sh                # full gate: every stage in order
#   ./scripts/ci.sh --quick        # fast stages only (fmt, lint, test)
#   ./scripts/ci.sh --stage lint   # one named stage (repeatable)
#
# Every stage prints its elapsed seconds; the last line is always a
# machine-readable CI_SUMMARY (result, per-stage timings, total).
set -euo pipefail
cd "$(dirname "$0")/.."

ALL_STAGES=(fmt lint test build smoke chaos perf)
QUICK_STAGES=(fmt lint test)

usage() {
    local joined
    joined=$(IFS='|'; echo "${ALL_STAGES[*]}")
    echo "usage: $0 [--quick] [--stage <$joined>]..." >&2
    exit 2
}

stage_fmt() {
    cargo fmt --check
}

stage_lint() {
    cargo clippy --all-targets -- -D warnings
    # The Box–Muller compat sampler is cfg'd out of default builds; lint
    # that code too, with warnings denied just like the default surface.
    cargo clippy -p msropm-ode --all-targets --features boxmuller -- -D warnings
    # The vendored epoll/poll shim carries the workspace's only unsafe
    # (FFI) code; hold it to the same deny-warnings bar explicitly.
    cargo clippy -p polling --all-targets -- -D warnings
}

stage_test() {
    cargo test -q
    cargo test -q -p msropm-ode --features boxmuller
}

stage_build() {
    cargo build --release
    cargo build --release --examples
}

stage_smoke() {
    # In-process server smoke: mixed batch, 1-vs-4-worker and
    # 1-vs-4-shard determinism. `timeout` tears everything down if
    # anything deadlocks.
    timeout --kill-after=10 120 \
        cargo run --release -p msropm-bench --bin serve_bench -- --smoke

    # Wire smoke: a real TCP server on an ephemeral loopback port, then
    # submit/status/cancel through the solve_remote client. The cancelled
    # job must never produce a report (asserted inside `smoke`). Runs
    # once per front end; the reactor pass additionally holds 512
    # completely idle connections open through the whole scenario —
    # served by the event loop with no per-connection threads.
    cargo build --release -p msropm-server -p msropm-client \
        --bin msropm_serve --bin solve_remote
    run_wire_smoke "threads" ""
    run_wire_smoke "reactor" "--idle 512"

    # Problem-compiler smoke: one instance of every problem class
    # through the `problem` CLI verb (SubmitProblem on the wire),
    # covering the standard-format file ingestion paths too. (The
    # `smoke` verb above already submits all nine classes in-process
    # per front end; this exercises the user-facing CLI surface.)
    run_problem_smoke

    # HTTP gateway smoke: boot the third front end and drive every
    # problem class over raw sockets — no client library, just bytes —
    # then scrape /v1/stats and /metrics.
    run_http_smoke

    # Fixed-point backend smoke: a `--backend fixed` deployment forces
    # every job onto the integer kernel server-side, and a client-side
    # `--backend fixed` submission carries the tag over the wire codec.
    run_fixed_backend_smoke
}

# Boots msropm_serve with `--backend fixed` (threads front end) and
# submits through solve_remote: once plain (the server-side override
# forces the fixed-point kernel), once with the client's own
# `--backend fixed` flag (the config codec carries the backend tag
# end-to-end). Both must complete and report.
run_fixed_backend_smoke() {
    local port_file addr
    port_file=$(mktemp -t msropm_fx_smoke.XXXXXX)
    ./target/release/msropm_serve \
        --addr 127.0.0.1:0 --frontend threads --workers 1 \
        --shards auto --backend fixed --port-file "$port_file" &
    wire_server_pid=$!
    for _ in $(seq 1 100); do
        [[ -s "$port_file" ]] && break
        kill -0 "$wire_server_pid" 2>/dev/null || { echo "msropm_serve died" >&2; return 1; }
        sleep 0.1
    done
    [[ -s "$port_file" ]] || { echo "msropm_serve never published its port" >&2; return 1; }
    addr=$(<"$port_file")
    echo "    fixed-backend smoke against $addr (server-forced + client-tagged)"
    timeout --kill-after=10 60 \
        ./target/release/solve_remote --addr "$addr" \
        submit --graph kings:4x4 --replicas 2 --seed 7
    timeout --kill-after=10 60 \
        ./target/release/solve_remote --addr "$addr" \
        submit --graph kings:4x4 --replicas 2 --seed 7 --backend fixed
    kill "$wire_server_pid" 2>/dev/null || true
    wait "$wire_server_pid" 2>/dev/null || true
    wire_server_pid=""
    rm -f "$port_file"
}

# One raw HTTP/1.1 exchange over /dev/tcp: request on fd 9, response on
# stdout. `connection: close` delimits the response by EOF, so no
# content-length parsing is needed on the read side; the outer timeout
# turns a wedged server into a failure instead of a hung CI job.
http_request() {
    local addr=$1 method=$2 path=$3 body=${4-}
    local host=${addr%:*} port=${addr##*:}
    exec 9<>"/dev/tcp/$host/$port"
    if [[ -n "$body" ]]; then
        printf '%s %s HTTP/1.1\r\nhost: ci\r\nconnection: close\r\ncontent-type: application/json\r\ncontent-length: %s\r\n\r\n%s' \
            "$method" "$path" "${#body}" "$body" >&9
    else
        printf '%s %s HTTP/1.1\r\nhost: ci\r\nconnection: close\r\n\r\n' \
            "$method" "$path" >&9
    fi
    timeout --kill-after=5 30 cat <&9
    exec 9<&- 9>&-
}

# Boots `msropm_serve --frontend http` and submits one instance of
# every problem class as JSON over raw sockets, polling each job to a
# terminal report, then asserts /v1/stats and /metrics expose the
# registry (including the frontend marker).
run_http_smoke() {
    local port_file addr
    port_file=$(mktemp -t msropm_http_smoke.XXXXXX)
    ./target/release/msropm_serve \
        --addr 127.0.0.1:0 --frontend http --workers 2 \
        --shards auto --port-file "$port_file" &
    wire_server_pid=$!
    for _ in $(seq 1 100); do
        [[ -s "$port_file" ]] && break
        kill -0 "$wire_server_pid" 2>/dev/null || { echo "msropm_serve died" >&2; return 1; }
        sleep 0.1
    done
    [[ -s "$port_file" ]] || { echo "msropm_serve never published its port" >&2; return 1; }
    addr=$(<"$port_file")
    echo "    http smoke against $addr (every class over raw HTTP/1.1)"

    local graph='p edge 4 5\ne 1 2\ne 2 3\ne 3 4\ne 1 4\ne 1 3\n'
    local cnf='p cnf 3 3\n1 2 0\n-1 3 0\n-2 -3 0\n'
    local weights='3 1 4 1 5 9 2 6\n'
    local qubo='{\"n\":4,\"linear\":[-1.0,0.5,-0.5,0.25],\"quadratic\":[[0,1,1.0],[1,2,-1.0]]}'
    local ising='{\"n\":4,\"h\":[0.1,-0.2,0.3,0.0],\"j\":[[0,1,1.0],[1,2,1.0],[2,3,-1.0]]}'

    local class input response job_id status
    for spec in \
        "coloring|$graph" \
        "max-cut|$graph" \
        "max-k-cut|$graph" \
        "mis|$graph" \
        "vertex-cover|$graph" \
        "number-partition|$weights" \
        "cnf-sat|$cnf" \
        "qubo|$qubo" \
        "ising|$ising"
    do
        class=${spec%%|*}
        input=${spec#*|}
        response=$(http_request "$addr" POST /v1/problems \
            "{\"tenant\":\"ci\",\"class\":\"$class\",\"input\":\"$input\",\"replicas\":2,\"seed\":7}")
        job_id=$(grep -o '"job_id":[0-9]*' <<< "$response" | head -1 | cut -d: -f2)
        [[ -n "$job_id" ]] || { echo "http submit of $class failed: $response" >&2; return 1; }
        status=
        for _ in $(seq 1 150); do
            status=$(http_request "$addr" GET "/v1/jobs/$job_id?tenant=ci")
            grep -q '"state":"queued"\|"state":"running"' <<< "$status" || break
            sleep 0.2
        done
        grep -q '"state":"done"' <<< "$status" \
            || { echo "http job $job_id ($class) never finished: $status" >&2; return 1; }
        grep -q '"type":"problem_report"' <<< "$status" \
            || { echo "done answer for $class lacks its report: $status" >&2; return 1; }
    done

    # One more submission on the fixed-point backend: the JSON config
    # codec must carry {"backend":"fixed"} end-to-end.
    response=$(http_request "$addr" POST /v1/problems \
        "{\"tenant\":\"ci\",\"class\":\"max-cut\",\"input\":\"$graph\",\"replicas\":2,\"seed\":7,\"config\":{\"backend\":\"fixed\"}}")
    job_id=$(grep -o '"job_id":[0-9]*' <<< "$response" | head -1 | cut -d: -f2)
    [[ -n "$job_id" ]] || { echo "http submit on fixed backend failed: $response" >&2; return 1; }
    status=
    for _ in $(seq 1 150); do
        status=$(http_request "$addr" GET "/v1/jobs/$job_id?tenant=ci")
        grep -q '"state":"queued"\|"state":"running"' <<< "$status" || break
        sleep 0.2
    done
    grep -q '"state":"done"' <<< "$status" \
        || { echo "fixed-backend http job $job_id never finished: $status" >&2; return 1; }

    response=$(http_request "$addr" GET /v1/stats)
    grep -q '"frontend":"http"' <<< "$response" \
        || { echo "/v1/stats lacks the frontend marker: $response" >&2; return 1; }
    grep -q '"jobs_completed":10' <<< "$response" \
        || { echo "/v1/stats should count 10 completed jobs: $response" >&2; return 1; }

    response=$(http_request "$addr" GET /metrics)
    grep -q '^msropm_jobs_completed 10' <<< "$response" \
        || { echo "/metrics lacks msropm_jobs_completed: $response" >&2; return 1; }
    grep -q '^msropm_frontend{kind="http"} 1' <<< "$response" \
        || { echo "/metrics lacks the frontend gauge: $response" >&2; return 1; }

    kill "$wire_server_pid" 2>/dev/null || true
    wait "$wire_server_pid" 2>/dev/null || true
    wire_server_pid=""
    rm -f "$port_file"
}

# Boots a threads-front-end server and submits one instance of every
# problem class through `solve_remote problem`, using generator specs
# for the graph classes and temp files for the text/JSON formats.
run_problem_smoke() {
    local port_file addr tmpdir
    port_file=$(mktemp -t msropm_problem_smoke.XXXXXX)
    tmpdir=$(mktemp -d -t msropm_problem_inputs.XXXXXX)
    ./target/release/msropm_serve \
        --addr 127.0.0.1:0 --frontend threads --workers 2 \
        --shards auto --port-file "$port_file" &
    wire_server_pid=$!
    for _ in $(seq 1 100); do
        [[ -s "$port_file" ]] && break
        kill -0 "$wire_server_pid" 2>/dev/null || { echo "msropm_serve died" >&2; return 1; }
        sleep 0.1
    done
    [[ -s "$port_file" ]] || { echo "msropm_serve never published its port" >&2; return 1; }
    addr=$(<"$port_file")
    echo "    problem smoke against $addr (every class via SubmitProblem)"

    printf '3 1 4 1 5 9 2 6\n' > "$tmpdir/weights.txt"
    printf 'p cnf 3 3\n1 2 0\n-1 3 0\n-2 -3 0\n' > "$tmpdir/tiny.cnf"
    printf '{"n": 4, "linear": [-1.0, 0.5, -0.5, 0.25], "quadratic": [[0, 1, 1.0], [1, 2, -1.0]]}\n' \
        > "$tmpdir/tiny_qubo.json"
    printf '{"n": 4, "h": [0.1, -0.2, 0.3, 0.0], "j": [[0, 1, 1.0], [1, 2, 1.0], [2, 3, -1.0]]}\n' \
        > "$tmpdir/tiny_ising.json"

    local class input
    for spec in \
        "coloring kings:4x4" \
        "max-cut cycle:7" \
        "max-k-cut kings:4x4" \
        "mis cycle:9" \
        "vertex-cover kings:3x3" \
        "number-partition $tmpdir/weights.txt" \
        "cnf-sat $tmpdir/tiny.cnf" \
        "qubo $tmpdir/tiny_qubo.json" \
        "ising $tmpdir/tiny_ising.json"
    do
        read -r class input <<< "$spec"
        timeout --kill-after=10 60 \
            ./target/release/solve_remote --addr "$addr" \
            problem --class "$class" --input "$input" --replicas 2 --seed 7
    done

    kill "$wire_server_pid" 2>/dev/null || true
    wait "$wire_server_pid" 2>/dev/null || true
    wire_server_pid=""
    rm -rf "$port_file" "$tmpdir"
}

# Boots msropm_serve with the given --frontend on an ephemeral port and
# runs `solve_remote smoke` (plus any extra smoke flags) against it.
run_wire_smoke() {
    local frontend=$1 extra=$2
    local port_file addr
    port_file=$(mktemp -t msropm_wire_smoke.XXXXXX)
    ./target/release/msropm_serve \
        --addr 127.0.0.1:0 --frontend "$frontend" --workers 1 \
        --shards auto --max-conns 600 --port-file "$port_file" &
    wire_server_pid=$!   # global: finish() reaps it on any exit path
    for _ in $(seq 1 100); do
        [[ -s "$port_file" ]] && break
        kill -0 "$wire_server_pid" 2>/dev/null || { echo "msropm_serve died" >&2; return 1; }
        sleep 0.1
    done
    [[ -s "$port_file" ]] || { echo "msropm_serve never published its port" >&2; return 1; }
    addr=$(<"$port_file")
    echo "    wire smoke against $addr ($frontend frontend${extra:+, $extra})"
    # shellcheck disable=SC2086  # $extra is intentionally word-split
    timeout --kill-after=10 180 \
        ./target/release/solve_remote smoke --addr "$addr" $extra
    kill "$wire_server_pid" 2>/dev/null || true
    wait "$wire_server_pid" 2>/dev/null || true
    wire_server_pid=""
    rm -f "$port_file"
}

stage_chaos() {
    # Every wait in the suite is internally bounded; the outer timeout
    # is the backstop that turns a wedged run into a hard failure
    # instead of a hung CI job. Single-threaded: the fault points are
    # process-global and the tests serialize on them.
    timeout --kill-after=10 600 \
        cargo test -q -p msropm-client --test chaos --test failure_modes \
        -- --test-threads=1
}

stage_perf() {
    timeout --kill-after=10 600 \
        cargo run --release -p msropm-bench --bin bench_phase_step -- \
        --out "$(mktemp -t bench_phase_step_ci.XXXXXX.json)" \
        --baseline BENCH_phase_step.json
    timeout --kill-after=10 600 \
        cargo run --release -p msropm-bench --bin serve_bench -- \
        --out "$(mktemp -t bench_serve_ci.XXXXXX.json)" \
        --baseline BENCH_serve.json
    timeout --kill-after=10 600 \
        cargo run --release -p msropm-bench --bin wire_bench -- \
        --out "$(mktemp -t bench_wire_ci.XXXXXX.json)" \
        --baseline BENCH_serve.json
    # Solution-quality gate: deterministic problem-compiler accuracy
    # vs the committed per-class baselines.
    timeout --kill-after=10 600 \
        cargo run --release -p msropm-bench --bin problems_bench -- \
        --out "$(mktemp -t bench_problems_ci.XXXXXX.json)" \
        --baseline BENCH_problems.json
}

# --- driver ----------------------------------------------------------

stages=()
while [[ $# -gt 0 ]]; do
    case "$1" in
        --quick)
            stages+=("${QUICK_STAGES[@]}")
            ;;
        --stage)
            shift
            [[ $# -gt 0 ]] || usage
            stages+=("$1")
            ;;
        *)
            usage
            ;;
    esac
    shift
done
if [[ ${#stages[@]} -eq 0 ]]; then
    stages=("${ALL_STAGES[@]}")
fi
for s in "${stages[@]}"; do
    declare -F "stage_$s" > /dev/null || { echo "unknown stage: $s" >&2; usage; }
done

summary=()
current_stage=""
wire_server_pid=""
finish() {
    local rc=$?
    if [[ -n "$wire_server_pid" ]]; then
        kill "$wire_server_pid" 2>/dev/null || true
    fi
    local joined=""
    if [[ ${#summary[@]} -gt 0 ]]; then
        joined=$(IFS=,; echo "${summary[*]}")
    fi
    if [[ $rc -eq 0 ]]; then
        echo "CI_SUMMARY result=pass stages=$joined total=${SECONDS}s"
    else
        echo "CI_SUMMARY result=fail stage=${current_stage:-setup} stages=$joined total=${SECONDS}s"
    fi
}
trap finish EXIT

for s in "${stages[@]}"; do
    current_stage=$s
    t0=$SECONDS
    echo "==> stage $s"
    "stage_$s"
    dt=$((SECONDS - t0))
    echo "==> stage $s OK (${dt}s)"
    summary+=("$s:${dt}s")
done
current_stage=""

echo "CI gate passed."
