//! # msropm — Multi-Stage Ring-Oscillator Potts Machine
//!
//! A full Rust reproduction of the DATE 2025 paper *"A Multi-Stage Potts
//! Machine based on Coupled CMOS Ring Oscillators"* (Gonul & Taskin):
//! a coupled-oscillator Potts machine that solves 4-coloring (and, in
//! general, `2^k`-coloring) by dividing the problem into successive
//! max-cut stages, clocked by phase-shifted sub-harmonic injection locking.
//!
//! This facade crate re-exports the whole workspace:
//!
//! - [`core`] ([`msropm_core`]): the machine, its schedule, the experiment
//!   runner and the baseline solvers;
//! - [`graph`] ([`msropm_graph`]): problem instances, colorings, cuts and
//!   metrics;
//! - [`osc`] ([`msropm_osc`]): the phase-domain coupled-oscillator model;
//! - [`circuit`] ([`msropm_circuit`]): the behavioural transistor-level
//!   simulator (ring oscillators, B2B couplings, SHIL injectors, DFF
//!   readout, power);
//! - [`sat`] ([`msropm_sat`]): the CDCL SAT solver used as the
//!   exact-solution baseline;
//! - [`server`] ([`msropm_server`]): the multi-worker batch-solve job
//!   service (bounded queue, problem cache, ranked reports) and its TCP
//!   wire front end (framed protocol, per-tenant quotas, cancellation);
//! - [`client`] ([`msropm_client`]): the blocking TCP client for that
//!   wire protocol (and the `solve_remote` CLI);
//! - [`ode`] ([`msropm_ode`]): the numerical integrators underneath it all.
//!
//! ## Quickstart
//!
//! ```
//! use msropm::core::{Msropm, MsropmConfig};
//! use msropm::graph::generators::kings_graph;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // The paper's smallest benchmark: 49-node King's graph, 4 colors.
//! let g = kings_graph(7, 7);
//! let mut machine = Msropm::new(&g, MsropmConfig::paper_default());
//! let mut rng = StdRng::seed_from_u64(1);
//!
//! let solution = machine.solve(&mut rng);
//! println!("accuracy: {:.3}", solution.coloring.accuracy(&g));
//! assert!(solution.coloring.accuracy(&g) > 0.85);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use msropm_circuit as circuit;
pub use msropm_client as client;
pub use msropm_core as core;
pub use msropm_graph as graph;
pub use msropm_ode as ode;
pub use msropm_osc as osc;
pub use msropm_sat as sat;
pub use msropm_server as server;
