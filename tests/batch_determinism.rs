//! Determinism of the multi-replica batch solver: `solve_batch` must give
//! the same colorings whether run on 1 thread, N threads, or as a plain
//! sequential `solve` loop — and the batched experiment runner must be a
//! drop-in for its sequential reference.

use msropm::core::{ExperimentRunner, Msropm, MsropmConfig};
use msropm::graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fast_config() -> MsropmConfig {
    MsropmConfig {
        dt: 0.02,
        ..MsropmConfig::paper_default()
    }
}

#[test]
fn solve_batch_matches_sequential_solve_loop() {
    let g = generators::kings_graph(5, 5);
    let machine = Msropm::new(&g, fast_config());
    let seeds: Vec<u64> = (1000..1012).collect();

    // Sequential reference: one fresh clone + solve per seed.
    let sequential: Vec<_> = seeds
        .iter()
        .map(|&seed| {
            let mut m = machine.clone();
            let mut rng = StdRng::seed_from_u64(seed);
            m.solve(&mut rng)
        })
        .collect();

    for threads in [1usize, 3, 8] {
        let batch = machine.solve_batch(&seeds, threads);
        assert_eq!(batch.len(), sequential.len());
        for (r, (b, s)) in batch.iter().zip(&sequential).enumerate() {
            assert_eq!(
                b.coloring, s.coloring,
                "coloring mismatch, replica {r}, {threads} threads"
            );
            assert_eq!(b.stages.len(), s.stages.len());
            for (bs, ss) in b.stages.iter().zip(&s.stages) {
                assert_eq!(bs.cut_value, ss.cut_value);
                assert_eq!(bs.active_edges, ss.active_edges);
            }
            // Stronger than required: trajectories are bit-identical.
            for (a, c) in b.final_phases.iter().zip(&s.final_phases) {
                assert_eq!(a.to_bits(), c.to_bits(), "replica {r} phase bits");
            }
        }
    }
}

#[test]
fn solve_batch_thread_sharding_is_invisible() {
    let g = generators::kings_graph(4, 4);
    let machine = Msropm::new(&g, fast_config().with_num_colors(8));
    let seeds: Vec<u64> = (0..10).map(|i| 31 * i + 7).collect();
    let one = machine.solve_batch(&seeds, 1);
    let many = machine.solve_batch(&seeds, 5);
    for (a, b) in one.iter().zip(&many) {
        assert_eq!(a.coloring, b.coloring);
    }
}

#[test]
fn runner_batched_equals_runner_sequential_across_threads() {
    let g = generators::kings_graph(4, 4);
    let base = ExperimentRunner::new(fast_config())
        .iterations(8)
        .base_seed(2024);
    let reference = base.clone().threads(1).run_sequential(&g);
    for threads in [1usize, 2, 5] {
        let report = base.clone().threads(threads).run(&g);
        assert_eq!(
            report.accuracies(),
            reference.accuracies(),
            "{threads} threads"
        );
        for (a, b) in report.outcomes.iter().zip(&reference.outcomes) {
            assert_eq!(a.coloring, b.coloring);
            assert_eq!(a.stage1_cut, b.stage1_cut);
            assert_eq!(a.stage1_accuracy, b.stage1_accuracy);
        }
    }
}

#[test]
fn batch_respects_machine_level_state() {
    // Frequency spread sampled at construction plus a defective ring:
    // both must carry into every replica identically.
    let g = generators::kings_graph(3, 3);
    let mut seed_rng = StdRng::seed_from_u64(555);
    let mut machine = Msropm::with_frequency_spread(&g, fast_config(), &mut seed_rng);
    machine.set_oscillator_enabled(2, false);
    let seeds = [4u64, 5, 6];
    let batch = machine.solve_batch(&seeds, 2);
    for (r, &seed) in seeds.iter().enumerate() {
        let mut m = machine.clone();
        let mut rng = StdRng::seed_from_u64(seed);
        let solo = m.solve(&mut rng);
        assert_eq!(batch[r].coloring, solo.coloring, "replica {r}");
    }
}
