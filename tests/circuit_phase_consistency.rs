//! Cross-validation between the two physics levels: the behavioural
//! circuit simulator (`msropm-circuit`) and the phase macromodel
//! (`msropm-osc`) must agree on every behaviour the machine relies on.

use msropm::circuit::readout::measure_relative_phase;
use msropm::circuit::CircuitArray;
use msropm::graph::generators;
use msropm::osc::waveform::principal_phase;
use msropm::osc::{PhaseNetwork, Shil};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::f64::consts::{PI, TAU};

#[test]
fn antiphase_locking_agrees_across_levels() {
    // Phase model.
    let g = generators::path_graph(2);
    let mut net = PhaseNetwork::builder(&g).coupling_strength(1.0).build();
    let mut phases = vec![0.3, 1.1];
    net.relax(&mut phases, 60.0, 1e-2);
    let d_phase = principal_phase(phases[0] - phases[1]);

    // Circuit model.
    let array = CircuitArray::builder(&g).coupling_strength(0.2).build();
    let mut rng = StdRng::seed_from_u64(3);
    let mut state = array.random_state(&mut rng);
    array.run(&mut state, 0.0, 40.0, 1e-3);
    let d_circuit =
        measure_relative_phase(&array, &state, 0, 1, 40.0, 8.0, 1e-3).expect("rings oscillate");
    let d_circuit = d_circuit.min(TAU - d_circuit);

    assert!((d_phase - PI).abs() < 0.01, "phase model: {d_phase}");
    assert!((d_circuit - PI).abs() < 0.3, "circuit model: {d_circuit}");
}

#[test]
fn shil_binarization_grid_agrees_across_levels() {
    // Phase model: two isolated oscillators under SHIL1 end 0 or PI apart.
    let g = msropm::graph::Graph::empty(2);
    let mut net = PhaseNetwork::builder(&g).build();
    net.set_shil_all(Shil::order2(0.0, 2.0));
    net.set_shil_enabled(true);
    let mut phases = vec![0.8, 2.9];
    net.relax(&mut phases, 30.0, 1e-2);
    let d = principal_phase(phases[0] - phases[1]);
    let d = d.min(TAU - d);
    assert!(d < 0.02 || (d - PI).abs() < 0.02, "phase-model grid: {d}");

    // Circuit model: grid property verified in msropm-circuit's own tests
    // (slow); here we only re-check the window geometry that encodes it.
    let w1 = msropm::circuit::ShilWave::shil1(1.3);
    let w2 = msropm::circuit::ShilWave::shil2(1.3);
    let shift = 0.5 * w1.period_ns();
    for k in 0..200 {
        let t = 0.01 * k as f64;
        assert_eq!(w1.is_conducting(t), w2.is_conducting(t + shift));
    }
}

#[test]
fn energy_descent_mirrors_cut_improvement() {
    // As the phase network descends its energy, the implied (binarized)
    // cut value must not collapse: energy and cut quality co-evolve.
    let g = generators::kings_graph(4, 4);
    let mut net = PhaseNetwork::builder(&g).coupling_strength(1.0).build();
    let mut rng = StdRng::seed_from_u64(7);
    let mut phases = net.random_phases(&mut rng);
    let shil = Shil::order2(0.0, 1.0);

    let cut_of = |phases: &[f64]| {
        let bits = msropm::osc::binarize_phases(phases, &shil);
        let cut: msropm::graph::Cut = bits.iter().map(|&b| b == 1).collect();
        cut.cut_value(&g)
    };

    let e0 = net.energy(&phases);
    let c0 = cut_of(&phases);
    net.relax(&mut phases, 30.0, 1e-2);
    let e1 = net.energy(&phases);
    let c1 = cut_of(&phases);
    assert!(e1 < e0, "energy must descend: {e0} -> {e1}");
    assert!(c1 >= c0, "cut must not degrade: {c0} -> {c1}");
    // After relaxation the binarized cut is near-optimal for this board.
    let (_, exact) = msropm::graph::cut::exact_max_cut_bruteforce(&g);
    assert!(
        c1 as f64 >= 0.85 * exact as f64,
        "cut {c1} vs exact {exact}"
    );
}

#[test]
fn power_models_agree_on_scaling_shape() {
    // The physics CV^2f model and the calibrated model must both scale
    // linearly in (N, E) — same shape, different constants.
    let physics = |side: usize| {
        let g = generators::kings_graph_square(side);
        msropm::core::power::physics_power_estimate(&g).total_mw()
    };
    let calibrated = |side: usize| {
        let g = generators::kings_graph_square(side);
        msropm::core::power::paper_power_estimate(&g).total_mw()
    };
    let ratio_physics = physics(20) / physics(7);
    let ratio_calibrated = calibrated(20) / calibrated(7);
    assert!(
        (ratio_physics / ratio_calibrated - 1.0).abs() < 0.35,
        "scaling mismatch: physics x{ratio_physics:.2} vs calibrated x{ratio_calibrated:.2}"
    );
}

#[test]
fn oscillator_frequency_within_calibration_tolerance() {
    let ring = msropm::circuit::RingOscillator::paper_default();
    let f = ring.measure_frequency_ghz(20.0, 8).expect("oscillates");
    assert!((f - 1.3).abs() / 1.3 < 0.01, "measured {f} GHz");
}
