//! Property tests pinning the heterogeneous control-lane batch path to
//! the two references it must reproduce bit for bit:
//!
//! 1. a heterogeneous batch whose lanes all carry **identical**
//!    parameters is indistinguishable from the homogeneous
//!    `Msropm::solve_batch` of a machine configured at that operating
//!    point, and
//! 2. a **single-lane** sweep entry equals a sequential `Msropm::solve`
//!    over the lane's resolved config.
//!
//! Together these close the loop: homogeneous batches were already
//! pinned to sequential solves (`tests/batch_determinism.rs`), so every
//! lane of every sweep is transitively pinned to the scalar reference
//! machine.

use msropm::core::{LaneConfig, Msropm, MsropmConfig, ReinitMode};
use msropm::graph::generators;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fast_config() -> MsropmConfig {
    MsropmConfig {
        dt: 0.02,
        ..MsropmConfig::paper_default()
    }
}

/// Strategy: an arbitrary lane override. Each knob is independently
/// present or absent; values span the operating ranges the sweeps use
/// (including σ = 0 and the two re-init modes).
fn arb_lane() -> impl Strategy<Value = LaneConfig> {
    (
        (any::<bool>(), 0.3f64..1.8),
        (any::<bool>(), 0.8f64..3.0),
        (any::<bool>(), 0.0f64..0.4),
        ((any::<bool>(), any::<bool>()), (0usize..3, 0.2f64..2.0)),
    )
        .prop_map(
            |(
                (has_k, k),
                (has_ks, ks),
                (has_noise, noise),
                ((has_ramp, ramp), (reinit_sel, drift_sigma)),
            )| {
                LaneConfig {
                    coupling_strength: has_k.then_some(k),
                    shil_strength: has_ks.then_some(ks),
                    noise: has_noise.then_some(noise),
                    shil_ramp: has_ramp.then_some(ramp),
                    reinit: match reinit_sel {
                        0 => None,
                        1 => Some(ReinitMode::UniformRandom),
                        _ => Some(ReinitMode::JitterDrift { sigma: drift_sigma }),
                    },
                    backend: None,
                }
            },
        )
}

fn assert_solutions_bit_identical(
    a: &msropm::core::MsropmSolution,
    b: &msropm::core::MsropmSolution,
    label: &str,
) {
    assert_eq!(a.coloring, b.coloring, "{label}: coloring");
    assert_eq!(a.stages.len(), b.stages.len(), "{label}: stage count");
    for (sa, sb) in a.stages.iter().zip(&b.stages) {
        assert_eq!(sa.cut_value, sb.cut_value, "{label}: cut");
        assert_eq!(sa.active_edges, sb.active_edges, "{label}: active edges");
        assert_eq!(sa.partition, sb.partition, "{label}: partition");
    }
    for (i, (pa, pb)) in a.final_phases.iter().zip(&b.final_phases).enumerate() {
        assert_eq!(pa.to_bits(), pb.to_bits(), "{label}: phase {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Identical-lane heterogeneous batch ≡ homogeneous batch of a
    /// machine built directly at the resolved operating point.
    #[test]
    fn identical_lanes_match_homogeneous_batch(
        lane in arb_lane(),
        num_lanes in 1usize..5,
        base_seed in 0u64..1000,
    ) {
        let g = generators::kings_graph(3, 3);
        let base = fast_config();
        let seeds: Vec<u64> = (0..num_lanes as u64).map(|i| base_seed + i).collect();

        let het_machine = Msropm::new(&g, base);
        let lanes = vec![lane; num_lanes];
        let het = het_machine.solve_batch_lanes(&lanes, &seeds, 1);

        let hom_machine = Msropm::new(&g, lane.resolve(&base));
        let hom = hom_machine.solve_batch(&seeds, 1);

        prop_assert_eq!(het.len(), hom.len());
        for (r, (a, b)) in het.iter().zip(&hom).enumerate() {
            assert_solutions_bit_identical(a, b, &format!("lane {r}"));
        }
    }

    /// Single-lane sweep entry ≡ sequential `Msropm::solve` with the
    /// same overrides applied to the config.
    #[test]
    fn single_lane_sweep_matches_sequential_solve(
        lane in arb_lane(),
        seed in 0u64..1000,
    ) {
        let g = generators::kings_graph(3, 3);
        let base = fast_config();

        let machine = Msropm::new(&g, base);
        let batch = machine.solve_batch_lanes(&[lane], &[seed], 1);

        let mut solo_machine = Msropm::new(&g, lane.resolve(&base));
        let mut rng = StdRng::seed_from_u64(seed);
        let solo = solo_machine.solve(&mut rng);

        assert_solutions_bit_identical(&batch[0], &solo, "single lane");
    }

    /// Mixed heterogeneous batches: every lane must still match its own
    /// standalone machine even when the batch mixes re-init modes, ramp
    /// flags and operating points.
    #[test]
    fn every_lane_of_a_mixed_batch_matches_its_solo_run(
        lanes in proptest::collection::vec(arb_lane(), 2..5),
        base_seed in 0u64..1000,
    ) {
        let g = generators::kings_graph(3, 3);
        let base = fast_config();
        let seeds: Vec<u64> = (0..lanes.len() as u64).map(|i| base_seed + i).collect();

        let machine = Msropm::new(&g, base);
        let batch = machine.solve_batch_lanes(&lanes, &seeds, 1);

        for (r, (lane, &seed)) in lanes.iter().zip(&seeds).enumerate() {
            let mut solo_machine = Msropm::new(&g, lane.resolve(&base));
            let mut rng = StdRng::seed_from_u64(seed);
            let solo = solo_machine.solve(&mut rng);
            assert_solutions_bit_identical(&batch[r], &solo, &format!("mixed lane {r}"));
        }
    }
}

/// All-default lanes are the homogeneous batch, bitwise, across thread
/// counts (the wrapper really is a wrapper).
#[test]
fn default_lanes_are_the_homogeneous_batch() {
    let g = generators::kings_graph(4, 4);
    let machine = Msropm::new(&g, fast_config());
    let seeds: Vec<u64> = (500..508).collect();
    let lanes = vec![LaneConfig::default(); seeds.len()];
    for threads in [1usize, 3] {
        let het = machine.solve_batch_lanes(&lanes, &seeds, threads);
        let hom = machine.solve_batch(&seeds, threads);
        for (r, (a, b)) in het.iter().zip(&hom).enumerate() {
            assert_solutions_bit_identical(a, b, &format!("replica {r}, {threads} threads"));
        }
    }
}
