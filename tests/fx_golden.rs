//! Golden-hash regression tests for the fixed-point kernel backend.
//!
//! The fixed-point path promises **bit-exact** trajectories: every
//! arithmetic step is integer (i32 binary-turn phases, Q-format
//! weights, table-driven sine), so a given (graph, config, seed) must
//! produce the *same phase words* on every run, at every shard width,
//! forever. These tests pin that promise to committed FNV-1a digests:
//! any change to the fx arithmetic — LUT contents, rounding, noise
//! quantization, step-grid — shows up as a hash mismatch here and must
//! be a deliberate, reviewed format break.
//!
//! The radian phases a solution reports are exactly invertible back to
//! their Q0.32 words (`phase_to_turns(turns_to_phase(q)) == q`, tested
//! in `osc::fxkernel`), so the digest is computed over recovered words
//! rather than float bits — it pins the integer state itself.

use msropm::core::{KernelBackend, LaneConfig, Msropm, MsropmConfig, ShardPool, ShardedArena};
use msropm::graph::generators;
use msropm::osc::fxkernel::phase_to_turns;

fn fx_config() -> MsropmConfig {
    MsropmConfig {
        dt: 0.02,
        ..MsropmConfig::paper_default()
    }
    .with_backend(KernelBackend::Fixed)
}

/// FNV-1a over the little-endian bytes of the recovered phase words.
fn fnv1a_words(words: impl IntoIterator<Item = i32>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn phase_digest(solutions: &[msropm::core::MsropmSolution]) -> u64 {
    fnv1a_words(
        solutions
            .iter()
            .flat_map(|s| s.final_phases.iter())
            .map(|&p| phase_to_turns(p)),
    )
}

/// The committed digest for `kings_graph(6, 6)`, `fx_config()`, seeds
/// `100..108`. Recompute (and justify) only on a deliberate fx format
/// change.
const GOLDEN_KINGS_6X6: u64 = 0x025b_ddef_c652_f3a5;

#[test]
fn fx_phase_words_match_committed_golden_hash() {
    let g = generators::kings_graph(6, 6);
    let machine = Msropm::new(&g, fx_config());
    let seeds: Vec<u64> = (100..108).collect();
    let lanes = vec![LaneConfig::default(); seeds.len()];

    let digest = phase_digest(&machine.solve_batch_lanes(&lanes, &seeds, 1));
    // Run-to-run: the digest is a pure function of (graph, config, seeds).
    let again = phase_digest(&machine.solve_batch_lanes(&lanes, &seeds, 1));
    assert_eq!(digest, again, "fx solve is not reproducible run-to-run");

    assert_eq!(
        digest, GOLDEN_KINGS_6X6,
        "fx phase words drifted from the committed golden hash \
         (got {digest:#018x}); only a deliberate fx format change may update it"
    );
}

#[test]
fn fx_golden_hash_is_shard_width_invariant() {
    let g = generators::kings_graph(6, 6);
    let machine = Msropm::new(&g, fx_config());
    let seeds: Vec<u64> = (100..108).collect();
    let lanes = vec![LaneConfig::default(); seeds.len()];
    let pool = ShardPool::new(4);

    for shards in [1usize, 4] {
        let mut arena = ShardedArena::new();
        let sols =
            machine.solve_batch_lanes_arena_sharded(&lanes, &seeds, shards, &mut arena, &pool);
        assert_eq!(
            phase_digest(&sols),
            GOLDEN_KINGS_6X6,
            "fx digest changed at shard width {shards}"
        );
    }
}
