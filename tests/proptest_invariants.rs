//! Property-based tests (proptest) on the core data structures and
//! invariants, spanning the graph, SAT, oscillator and machine crates.

use msropm::graph::coloring::{dsatur, greedy_coloring};
use msropm::graph::metrics::{hamming_distance, hamming_distance_min_permutation};
use msropm::graph::{generators, BitSet, Coloring, Cut, Graph, NodeId};
use msropm::osc::lock::phase_to_spin;
use msropm::osc::shil::Shil;
use msropm::osc::waveform::{phase_distance, principal_phase, unwrap_phases};
use msropm::sat::encode::solve_k_coloring;
use proptest::prelude::*;

/// Strategy: a random simple graph as (n, edge pair list).
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2usize..max_n).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n, 0..n), 0..max_edges.min(60)).prop_map(move |pairs| {
            let mut b = msropm::graph::GraphBuilder::new(n);
            for (u, v) in pairs {
                if u != v {
                    b.add_edge_dedup(u, v);
                }
            }
            b.build()
        })
    })
}

proptest! {
    #[test]
    fn degree_sum_is_twice_edges(g in arb_graph(24)) {
        prop_assert_eq!(g.degree_sum(), 2 * g.num_edges());
        let total: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(total, 2 * g.num_edges());
    }

    #[test]
    fn greedy_coloring_is_proper_and_bounded(g in arb_graph(20)) {
        let order: Vec<NodeId> = g.nodes().collect();
        let c = greedy_coloring(&g, &order);
        prop_assert!(c.is_proper(&g));
        prop_assert!(c.num_colors_used() <= g.max_degree() + 1);
    }

    #[test]
    fn dsatur_never_worse_than_degree_bound(g in arb_graph(20)) {
        let c = dsatur(&g);
        prop_assert!(c.is_proper(&g));
        prop_assert!(c.num_colors_used() <= g.max_degree() + 1);
    }

    #[test]
    fn cut_value_complement_invariant(g in arb_graph(20), seed in 0u64..1000) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let cut = Cut::random(g.num_nodes(), &mut rng);
        // Complementing every side bit leaves the cut value unchanged.
        let flipped: Cut = cut.as_slice().iter().map(|&s| !s).collect();
        prop_assert_eq!(cut.cut_value(&g), flipped.cut_value(&g));
        prop_assert!(cut.cut_value(&g) <= g.num_edges());
    }

    #[test]
    fn local_search_never_decreases_cut(g in arb_graph(16), seed in 0u64..1000) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cut = Cut::random(g.num_nodes(), &mut rng);
        let before = cut.cut_value(&g);
        cut.local_search(&g);
        prop_assert!(cut.cut_value(&g) >= before);
    }

    #[test]
    fn hamming_is_a_metric_sample(
        a in proptest::collection::vec(0usize..4, 1..40),
        b in proptest::collection::vec(0usize..4, 1..40),
        c in proptest::collection::vec(0usize..4, 1..40),
    ) {
        let n = a.len().min(b.len()).min(c.len());
        let ca = Coloring::from_indices(a[..n].to_vec());
        let cb = Coloring::from_indices(b[..n].to_vec());
        let cc = Coloring::from_indices(c[..n].to_vec());
        // Identity, symmetry, triangle inequality.
        prop_assert_eq!(hamming_distance(&ca, &ca), 0.0);
        prop_assert_eq!(hamming_distance(&ca, &cb), hamming_distance(&cb, &ca));
        let dab = hamming_distance(&ca, &cb);
        let dbc = hamming_distance(&cb, &cc);
        let dac = hamming_distance(&ca, &cc);
        prop_assert!(dac <= dab + dbc + 1e-12);
        // Permutation-minimized distance is a lower bound.
        prop_assert!(hamming_distance_min_permutation(&ca, &cb) <= dab + 1e-12);
    }

    #[test]
    fn principal_phase_idempotent(x in -100.0f64..100.0) {
        let p = principal_phase(x);
        prop_assert!((0.0..std::f64::consts::TAU).contains(&p));
        prop_assert!((principal_phase(p) - p).abs() < 1e-12);
        // Distance to itself is zero; symmetry holds.
        prop_assert!(phase_distance(x, x) < 1e-9);
    }

    #[test]
    fn unwrap_preserves_increments(steps in proptest::collection::vec(-2.0f64..2.0, 1..50)) {
        // Build a trajectory whose step sizes are < pi... restrict to |d|<2
        // and accumulate; wrap; unwrap; compare increments.
        let mut traj = vec![0.5f64];
        for d in &steps {
            let last = *traj.last().expect("nonempty");
            traj.push(last + d.clamp(-3.0, 3.0));
        }
        let wrapped: Vec<f64> = traj.iter().map(|&p| principal_phase(p)).collect();
        let unwrapped = unwrap_phases(&wrapped);
        for i in 1..traj.len() {
            let want = traj[i] - traj[i - 1];
            let got = unwrapped[i] - unwrapped[i - 1];
            if want.abs() < 3.0 {
                prop_assert!((want - got).abs() < 1e-9, "step {i}: {want} vs {got}");
            }
        }
    }

    #[test]
    fn shil_spin_roundtrip(order in 2u32..5, psi in 0.0f64..6.2, k in 0u32..5) {
        let shil = Shil::new(order, psi, 1.0);
        let phases = shil.stable_phases();
        let k = (k % order) as usize;
        // Classifying a stable phase returns a spin whose stable phase is
        // that same phase.
        let spin = phase_to_spin(phases[k], &shil);
        let back = msropm::osc::nearest_stable_phase(phases[k], &shil);
        prop_assert!((back - phases[k]).abs() < 1e-9);
        prop_assert!(spin < order as usize);
    }

    #[test]
    fn bitset_models_hashset(ops in proptest::collection::vec((0usize..128, any::<bool>()), 0..200)) {
        let mut bs = BitSet::new(128);
        let mut hs = std::collections::HashSet::new();
        for (idx, insert) in ops {
            if insert {
                prop_assert_eq!(bs.insert(idx), hs.insert(idx));
            } else {
                prop_assert_eq!(bs.remove(idx), hs.remove(&idx));
            }
        }
        prop_assert_eq!(bs.len(), hs.len());
        let mut from_bs: Vec<usize> = bs.iter().collect();
        let mut from_hs: Vec<usize> = hs.into_iter().collect();
        from_bs.sort_unstable();
        from_hs.sort_unstable();
        prop_assert_eq!(from_bs, from_hs);
    }

    #[test]
    fn sat_coloring_sound_on_random_graphs(seed in 0u64..50) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi(12, 0.3, &mut rng);
        // Whatever SAT returns must be proper; and DSATUR's palette size
        // must be achievable.
        let k = dsatur(&g).num_colors_used().max(1);
        let c = solve_k_coloring(&g, k).expect("DSATUR palette is sufficient");
        prop_assert!(c.is_proper(&g));
        prop_assert!(c.color_range() <= k);
    }

    #[test]
    fn dimacs_roundtrip_random(seed in 0u64..50) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi(15, 0.3, &mut rng);
        let mut buf = Vec::new();
        msropm::graph::io::write_dimacs(&g, &mut buf).expect("write");
        let g2 = msropm::graph::io::read_dimacs(buf.as_slice()).expect("parse");
        prop_assert_eq!(g.num_nodes(), g2.num_nodes());
        prop_assert_eq!(g.num_edges(), g2.num_edges());
        for (_, u, v) in g.edges() {
            prop_assert!(g2.contains_edge(u, v));
        }
    }
}
