//! End-to-end integration: the MSROPM against the exact SAT baseline on
//! paper-style problems, crossing every crate in the workspace.

use msropm::core::{CutReference, ExperimentRunner, Msropm, MsropmConfig};
use msropm::graph::cut::kings_stripe_cut;
use msropm::graph::generators;
use msropm::sat::encode::solve_k_coloring;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fast_config() -> MsropmConfig {
    MsropmConfig {
        dt: 0.02,
        ..MsropmConfig::paper_default()
    }
}

#[test]
fn msropm_matches_sat_on_small_kings_graph() {
    let g = generators::kings_graph(5, 5);
    // SAT certifies that accuracy 1.0 is attainable with 4 colors.
    let exact = solve_k_coloring(&g, 4).expect("4-colorable");
    assert_eq!(exact.accuracy(&g), 1.0);

    // The machine must reach a proper coloring within a few iterations.
    let mut machine = Msropm::new(&g, fast_config());
    let mut rng = StdRng::seed_from_u64(2024);
    let best = (0..10)
        .map(|_| machine.solve(&mut rng).coloring.accuracy(&g))
        .fold(0.0f64, f64::max);
    assert_eq!(best, 1.0, "machine never matched the SAT-exact optimum");
}

#[test]
fn accuracy_band_matches_paper_on_49_nodes() {
    // Paper: 49-node best 1.00, average 0.98, worst observed 0.92.
    // Simulation-grade tolerance: best >= 0.99, mean >= 0.93, worst >= 0.85.
    let g = generators::kings_graph(7, 7);
    let best_cut = kings_stripe_cut(7, 7).cut_value(&g);
    let report = ExperimentRunner::new(fast_config())
        .iterations(20)
        .base_seed(0x49)
        .cut_reference(CutReference::Value(best_cut))
        .run(&g);
    let s = report.accuracy_summary();
    assert!(
        report.best_accuracy() >= 0.99,
        "best {:.3}",
        report.best_accuracy()
    );
    assert!(s.mean >= 0.93, "mean {:.3}", s.mean);
    assert!(s.min >= 0.85, "worst {:.3}", s.min);
}

#[test]
fn stage1_and_final_accuracy_positively_correlated() {
    // Sec. 4.1's correlation claim, on a mid-size problem.
    let g = generators::kings_graph(10, 10);
    let best_cut = kings_stripe_cut(10, 10).cut_value(&g);
    let report = ExperimentRunner::new(fast_config())
        .iterations(24)
        .base_seed(0xC0)
        .cut_reference(CutReference::Value(best_cut))
        .run(&g);
    let r = report
        .stage1_final_correlation()
        .expect("non-degenerate samples");
    assert!(r > 0.0, "expected positive correlation, got {r:+.3}");
}

#[test]
fn time_to_solution_is_sixty_ns() {
    let g = generators::kings_graph(4, 4);
    let report = ExperimentRunner::new(fast_config()).iterations(2).run(&g);
    assert!((report.time_per_iteration_ns - 60.0).abs() < 1e-12);
}

#[test]
fn solution_diversity_nonzero() {
    // Fig. 5(c): different iterations land on different solutions.
    let g = generators::kings_graph(6, 6);
    let report = ExperimentRunner::new(fast_config())
        .iterations(10)
        .base_seed(5)
        .run(&g);
    let distances = report.hamming_distances();
    let mean = distances.iter().sum::<f64>() / distances.len() as f64;
    assert!(
        mean > 0.1,
        "solutions suspiciously identical: mean {mean:.3}"
    );
}

#[test]
fn sat_certifies_impossibility_of_three_coloring() {
    // The structural motivation for 4 colors: King's graphs contain K4s.
    let g = generators::kings_graph(4, 4);
    assert!(solve_k_coloring(&g, 3).is_none());
    assert!(solve_k_coloring(&g, 4).is_some());
}

#[test]
fn power_estimates_track_table1() {
    for (side, expected) in [(7usize, 9.4f64), (46, 283.4)] {
        let g = generators::kings_graph_square(side);
        let p = msropm::core::power::paper_power_estimate(&g).total_mw();
        assert!(
            (p - expected).abs() / expected < 0.06,
            "side {side}: {p:.1} vs {expected}"
        );
    }
}
