//! Integration coverage for the beyond-paper extensions: TTS analysis on
//! real reports, the SHIL ramp, circuit mismatch, incremental SAT, and the
//! repair heuristics.

use msropm::core::analysis::{accuracy_quantile, success_probability, time_to_solution_ns};
use msropm::core::{CutReference, ExperimentRunner, Msropm, MsropmConfig};
use msropm::graph::coloring::min_conflicts_descent;
use msropm::graph::generators;
use msropm::sat::encode::{solve_chromatic_number_incremental, solve_k_coloring};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fast_config() -> MsropmConfig {
    MsropmConfig {
        dt: 0.02,
        ..MsropmConfig::paper_default()
    }
}

#[test]
fn tts_analysis_on_real_report() {
    let g = generators::kings_graph(5, 5);
    let report = ExperimentRunner::new(fast_config())
        .iterations(16)
        .base_seed(0x715)
        .cut_reference(CutReference::Auto)
        .run(&g);
    let p = success_probability(&report, 0.95);
    assert!(p > 0.0, "no iteration reached 95% on a 5x5 board");
    let tts = time_to_solution_ns(&report, 0.95, 0.99).expect("p > 0");
    assert!(tts >= report.time_per_iteration_ns);
    // Median accuracy is between worst and best.
    let median = accuracy_quantile(&report, 0.5);
    let s = report.accuracy_summary();
    assert!(median >= s.min && median <= s.max);
}

#[test]
fn shil_ramp_comparable_to_hard_gating() {
    let g = generators::kings_graph(5, 5);
    let run = |ramp: bool| {
        let cfg = fast_config().with_shil_ramp(ramp);
        let mut best = 0.0f64;
        for seed in 0..6u64 {
            let mut m = Msropm::new(&g, cfg);
            let mut rng = StdRng::seed_from_u64(seed);
            best = best.max(m.solve(&mut rng).coloring.accuracy(&g));
        }
        best
    };
    let hard = run(false);
    let ramped = run(true);
    assert!(hard > 0.9 && ramped > 0.9, "hard {hard}, ramped {ramped}");
}

#[test]
fn machine_solution_improvable_by_repair_is_still_near_optimal() {
    // min-conflicts descent on a machine solution should gain little —
    // the machine already lands near a local optimum.
    let g = generators::kings_graph(8, 8);
    let mut m = Msropm::new(&g, fast_config());
    let mut rng = StdRng::seed_from_u64(88);
    let sol = m.solve(&mut rng);
    let mut repaired = sol.coloring.clone();
    let gained = min_conflicts_descent(&g, &mut repaired, 4, 100);
    let machine_conflicts = sol.coloring.conflicts(&g);
    assert!(
        gained * 4 <= machine_conflicts.max(4) * 3,
        "repair removed {gained} of {machine_conflicts} conflicts — machine far from local optimum"
    );
    assert!(repaired.accuracy(&g) >= sol.coloring.accuracy(&g));
}

#[test]
fn incremental_chromatic_number_on_benchmark_family() {
    // Cross-crate: incremental SAT agrees with direct solving on the
    // machine's benchmark topology.
    let g = generators::kings_graph(5, 5);
    let (chi, witness) = solve_chromatic_number_incremental(&g);
    assert_eq!(chi, 4);
    assert!(witness.is_proper(&g));
    assert!(solve_k_coloring(&g, chi - 1).is_none());
}

#[test]
fn circuit_mismatch_monte_carlo_plausible() {
    use msropm::circuit::CircuitArray;
    let g = generators::path_graph(3);
    let mut array = CircuitArray::builder(&g).build();
    let mut rng = StdRng::seed_from_u64(3);
    array.apply_mismatch(0.05, &mut rng);
    for osc in 0..3 {
        let m = array.mismatch_of(osc);
        assert!((0.5..=1.5).contains(&m), "implausible mismatch {m}");
    }
}

#[test]
fn wheel_and_petersen_solved_by_machine() {
    // New generator families work end to end.
    let wheel = generators::wheel_graph(8); // even rim: 3-chromatic
    let mut m = Msropm::new(&wheel, fast_config());
    let mut rng = StdRng::seed_from_u64(5);
    let best = (0..8)
        .map(|_| m.solve(&mut rng).coloring.accuracy(&wheel))
        .fold(0.0f64, f64::max);
    assert_eq!(best, 1.0, "4 colors suffice for W8");

    let petersen = generators::petersen_graph();
    let mut m = Msropm::new(&petersen, fast_config());
    let best = (0..8)
        .map(|_| m.solve(&mut rng).coloring.accuracy(&petersen))
        .fold(0.0f64, f64::max);
    assert_eq!(best, 1.0, "4 colors suffice for the Petersen graph");
}
