//! Structural invariants of the multi-stage algorithm that must hold for
//! *every* run, independent of solution quality.

use msropm::core::{Msropm, MsropmConfig, MsropmSolution};
use msropm::graph::generators;
use msropm::graph::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::f64::consts::TAU;

fn fast_config() -> MsropmConfig {
    MsropmConfig {
        dt: 0.02,
        ..MsropmConfig::paper_default()
    }
}

fn solve(side: usize, seed: u64, colors: usize) -> (msropm::graph::Graph, MsropmSolution) {
    let g = generators::kings_graph_square(side);
    let mut machine = Msropm::new(&g, fast_config().with_num_colors(colors));
    let mut rng = StdRng::seed_from_u64(seed);
    let sol = machine.solve(&mut rng);
    (g, sol)
}

#[test]
fn stage_bits_compose_into_colors() {
    for seed in 0..5 {
        let (g, sol) = solve(5, seed, 4);
        for v in g.nodes() {
            let b1 = usize::from(sol.stages[0].partition.side(v));
            let b2 = usize::from(sol.stages[1].partition.side(v));
            assert_eq!(sol.coloring.color(v).index(), 2 * b1 + b2);
        }
    }
}

#[test]
fn cross_cut_edges_are_never_violated() {
    // Any edge cut at stage 1 connects palettes {0,1} and {2,3}.
    for seed in 0..5 {
        let (g, sol) = solve(6, seed, 4);
        for (_, u, v) in g.edges() {
            if sol.stages[0].partition.side(u) != sol.stages[0].partition.side(v) {
                assert_ne!(sol.coloring.color(u), sol.coloring.color(v));
            }
        }
    }
}

#[test]
fn final_accuracy_decomposes_over_stages() {
    // satisfied = stage1 cut + stage2 cut (stage2 counts only edges that
    // survived the partition).
    for seed in 0..5 {
        let (g, sol) = solve(6, seed, 4);
        let satisfied = sol.coloring.satisfied_edges(&g);
        let from_stages: usize = sol.stages.iter().map(|s| s.cut_value).sum();
        assert_eq!(satisfied, from_stages, "seed {seed}");
    }
}

#[test]
fn active_edges_shrink_monotonically() {
    for seed in 0..3 {
        let (g, sol) = solve(6, seed, 4);
        assert_eq!(sol.stages[0].active_edges, g.num_edges());
        assert_eq!(
            sol.stages[1].active_edges,
            g.num_edges() - sol.stages[0].cut_value
        );
    }
}

#[test]
fn phases_end_on_color_targets() {
    let (_, sol) = solve(5, 9, 4);
    for (i, (_, color)) in sol.coloring.iter().enumerate() {
        let target = MsropmSolution::target_phase(color.index(), 4);
        let p = sol.final_phases[i].rem_euclid(TAU);
        let d = (p - target).rem_euclid(TAU);
        let d = d.min(TAU - d);
        assert!(d < 0.5, "osc {i}: {p:.3} rad vs target {target:.3}");
    }
}

#[test]
fn lock_errors_are_small_at_readout() {
    let (_, sol) = solve(6, 3, 4);
    for s in &sol.stages {
        assert!(
            s.max_lock_error < 0.6,
            "stage {} lock error {:.3} rad — SHIL failed to discretize",
            s.stage,
            s.max_lock_error
        );
    }
}

#[test]
fn three_stage_run_produces_eight_colors_consistently() {
    let mut rng = StdRng::seed_from_u64(77);
    let (g, _) = generators::planted_k_colorable(40, 8, 0.5, &mut rng);
    let mut machine = Msropm::new(&g, fast_config().with_num_colors(8));
    let sol = machine.solve(&mut rng);
    assert_eq!(sol.stages.len(), 3);
    assert!((sol.total_time_ns - 90.0).abs() < 1e-12);
    for v in g.nodes() {
        let bits: usize = sol
            .stages
            .iter()
            .fold(0, |acc, s| acc * 2 + usize::from(s.partition.side(v)));
        assert_eq!(sol.coloring.color(v).index(), bits);
    }
}

#[test]
fn observer_time_spans_the_whole_schedule() {
    let g = generators::kings_graph(3, 3);
    let mut machine = Msropm::new(&g, fast_config());
    let mut rng = StdRng::seed_from_u64(4);
    let mut t_min = f64::INFINITY;
    let mut t_max = f64::NEG_INFINITY;
    machine.solve_observed(&mut rng, |t, _, _| {
        t_min = t_min.min(t);
        t_max = t_max.max(t);
    });
    assert_eq!(t_min, 0.0);
    assert!((t_max - 60.0).abs() < 1e-9);
}

#[test]
fn isolated_nodes_color_arbitrarily_but_validly() {
    let g = msropm::graph::Graph::empty(8);
    let mut machine = Msropm::new(&g, fast_config());
    let mut rng = StdRng::seed_from_u64(1);
    let sol = machine.solve(&mut rng);
    assert_eq!(sol.coloring.len(), 8);
    assert!(sol.coloring.is_proper(&g));
    assert_eq!(sol.coloring.accuracy(&g), 1.0);
    let _ = NodeId::new(0);
}
