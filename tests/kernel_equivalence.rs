//! Property tests pinning the compiled coupling kernel to the naive
//! reference drift: for *any* gating state (edge gates, defective rings,
//! global enables, SHIL assignments, weight overrides, frequency spread),
//! `CoupledKernel` must agree with `PhaseNetwork::eval` to ≤ 1e-12, and
//! the kernel's two evaluation paths (scratch three-pass vs. trait
//! single-pass) must agree bitwise.

use msropm::graph::{Graph, GraphBuilder};
use msropm::osc::shil::Shil;
use msropm::osc::{CoupledKernel, PhaseNetwork};
use msropm_ode::system::OdeSystem;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Strategy: a random simple graph as (n, edge pair list).
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2usize..max_n).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n, 0..n), 0..max_edges.min(80)).prop_map(move |pairs| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in pairs {
                if u != v {
                    b.add_edge_dedup(u, v);
                }
            }
            b.build()
        })
    })
}

/// Builds a network over `g` with every kind of gating state randomized
/// from `seed`: per-edge enables and weight overrides, defective rings,
/// global coupling/SHIL enables, mixed-order SHIL assignments, frequency
/// spread and noise.
fn random_gated_network(g: &Graph, seed: u64) -> (PhaseNetwork, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let coupling = rng.gen::<f64>() * 2.0;
    let mut net = PhaseNetwork::builder(g)
        .coupling_strength(coupling)
        .noise(rng.gen::<f64>())
        .frequency_spread(0.2)
        .build_with_spread(&mut rng);
    for e in 0..g.num_edges() {
        if rng.gen_bool(0.3) {
            net.set_edge_enabled(e, false);
        }
        if rng.gen_bool(0.25) {
            net.set_edge_weight(e, rng.gen_range(-2.0f64..2.0));
        }
    }
    for i in 0..g.num_nodes() {
        if rng.gen_bool(0.15) {
            net.set_node_enabled(i, false);
        }
    }
    if rng.gen_bool(0.15) {
        net.set_couplings_enabled(false);
    }
    if rng.gen_bool(0.7) {
        net.set_shil_enabled(true);
        for i in 0..g.num_nodes() {
            if rng.gen_bool(0.8) {
                let order = rng.gen_range(2u64..5) as u32;
                let psi = rng.gen::<f64>() * std::f64::consts::TAU;
                let ks = rng.gen::<f64>() * 3.0;
                net.set_shil_node(i, Some(Shil::new(order, psi, ks)));
            }
        }
    }
    let phases = net.random_phases(&mut rng);
    (net, phases)
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

proptest! {
    #[test]
    fn compiled_drift_matches_naive_eval(g in arb_graph(28), seed in 0u64..100_000) {
        let (net, phases) = random_gated_network(&g, seed);
        let n = g.num_nodes();

        let mut naive = vec![0.0; n];
        net.eval(0.0, &phases, &mut naive);

        let kernel = net.compile_kernel();
        let mut compiled = vec![0.0; n];
        let mut scratch = Vec::new();
        kernel.drift_into(&phases, &mut compiled, &mut scratch);

        let err = max_abs_diff(&naive, &compiled);
        prop_assert!(err <= 1e-12, "kernel vs naive drift diverged: {err:e}");
    }

    #[test]
    fn kernel_trait_path_is_bitwise_identical(g in arb_graph(24), seed in 0u64..100_000) {
        // The allocation-free three-pass path and the OdeSystem trait path
        // must be the *same* arithmetic, not merely close.
        let (net, phases) = random_gated_network(&g, seed);
        let kernel = net.compile_kernel();
        let n = g.num_nodes();
        let mut three_pass = vec![0.0; n];
        kernel.drift_into(&phases, &mut three_pass, &mut Vec::new());
        let mut one_pass = vec![0.0; n];
        kernel.eval(0.0, &phases, &mut one_pass);
        for i in 0..n {
            prop_assert_eq!(three_pass[i].to_bits(), one_pass[i].to_bits(), "node {}", i);
        }
    }

    #[test]
    fn recompile_tracks_gating_changes(g in arb_graph(20), seed in 0u64..100_000) {
        // Mutating the network after compilation must not affect the old
        // kernel; recompiling must match the new state.
        let (mut net, phases) = random_gated_network(&g, seed);
        let before = net.compile_kernel();
        let edges_before = before.num_active_edges();

        net.set_couplings_enabled(true);
        for e in 0..g.num_edges() {
            net.set_edge_enabled(e, true);
        }
        for i in 0..g.num_nodes() {
            net.set_node_enabled(i, true);
        }
        prop_assert_eq!(before.num_active_edges(), edges_before, "compiled kernel mutated");

        let after = net.compile_kernel();
        prop_assert_eq!(after.num_active_edges(), g.num_edges());

        let mut naive = vec![0.0; g.num_nodes()];
        net.eval(0.0, &phases, &mut naive);
        let mut compiled = vec![0.0; g.num_nodes()];
        after.drift_into(&phases, &mut compiled, &mut Vec::new());
        prop_assert!(max_abs_diff(&naive, &compiled) <= 1e-12);
    }

    #[test]
    fn compiled_diffusion_matches_naive(g in arb_graph(20), seed in 0u64..100_000) {
        use msropm_ode::system::SdeSystem;
        let (net, phases) = random_gated_network(&g, seed);
        let n = g.num_nodes();
        let (mut naive, mut compiled) = (vec![0.0; n], vec![0.0; n]);
        net.diffusion(0.0, &phases, &mut naive);
        net.compile_kernel().diffusion(0.0, &phases, &mut compiled);
        prop_assert_eq!(naive, compiled);
    }
}

#[test]
fn kernel_matches_naive_on_paper_sized_kings_graph() {
    // One deterministic large case: the paper's 2116-oscillator board.
    let g = msropm::graph::generators::kings_graph_square(46);
    let mut net = PhaseNetwork::builder(&g).coupling_strength(1.0).build();
    net.set_shil_all(Shil::order2(0.0, 2.5));
    net.set_shil_enabled(true);
    let mut rng = StdRng::seed_from_u64(2116);
    let phases = net.random_phases(&mut rng);
    let mut naive = vec![0.0; g.num_nodes()];
    net.eval(0.0, &phases, &mut naive);
    let kernel = CoupledKernel::compile(&net);
    assert_eq!(kernel.num_active_edges(), g.num_edges());
    let mut compiled = vec![0.0; g.num_nodes()];
    kernel.drift_into(&phases, &mut compiled, &mut Vec::new());
    let err = max_abs_diff(&naive, &compiled);
    assert!(err <= 1e-12, "2116-node drift error {err:e}");
}
