//! Cross-solver agreement: every solver in the workspace must agree on
//! small instances where the optimum is certifiable.

use msropm::core::baselines::{RoimMaxCut, Ropm3, SimulatedAnnealingColoring, TabuMaxCut};
use msropm::core::MsropmConfig;
use msropm::graph::cut::exact_max_cut_bruteforce;
use msropm::graph::generators;
use msropm::sat::branch_and_bound_max_cut;
use msropm::sat::encode::{solve_chromatic_number, solve_k_coloring};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fast_config() -> MsropmConfig {
    MsropmConfig {
        dt: 0.02,
        ..MsropmConfig::paper_default()
    }
}

#[test]
fn branch_and_bound_agrees_with_bruteforce_on_family() {
    let mut rng = StdRng::seed_from_u64(17);
    for n in [6usize, 8, 10, 12] {
        let g = generators::erdos_renyi(n, 0.4, &mut rng);
        if g.num_edges() == 0 {
            continue;
        }
        let (_, exact) = exact_max_cut_bruteforce(&g);
        let bb = branch_and_bound_max_cut(&g, u64::MAX);
        assert!(bb.optimal);
        assert_eq!(bb.value, exact, "n={n}");
    }
}

#[test]
fn tabu_matches_exact_on_random_graphs() {
    let mut rng = StdRng::seed_from_u64(23);
    let tabu = TabuMaxCut::new(2000, 8);
    for n in [8usize, 10, 12] {
        let g = generators::erdos_renyi(n, 0.5, &mut rng);
        if g.num_edges() == 0 {
            continue;
        }
        let (_, exact) = exact_max_cut_bruteforce(&g);
        let cut = tabu.solve(&g, &mut rng);
        assert_eq!(cut.cut_value(&g), exact, "n={n}");
    }
}

#[test]
fn roim_reaches_exact_maxcut_on_small_instances() {
    let g = generators::kings_graph(3, 3);
    let (_, exact) = exact_max_cut_bruteforce(&g);
    let roim = RoimMaxCut::new(fast_config());
    let mut rng = StdRng::seed_from_u64(31);
    let cut = roim.solve_best_of(&g, 10, &mut rng);
    assert_eq!(cut.cut_value(&g), exact);
}

#[test]
fn sa_and_sat_agree_on_feasibility() {
    // Where SAT proves 4-colorability, SA (given enough sweeps) finds a
    // proper coloring too.
    let g = generators::kings_graph(6, 6);
    assert!(solve_k_coloring(&g, 4).is_some());
    let sa = SimulatedAnnealingColoring::new(4, 400);
    let mut rng = StdRng::seed_from_u64(37);
    let best = (0..3)
        .map(|_| sa.solve(&g, &mut rng).conflicts(&g))
        .min()
        .expect("iterations ran");
    assert_eq!(best, 0, "SA failed on a SAT-feasible instance");
}

#[test]
fn ropm3_beats_random_on_three_chromatic_graph() {
    let g = generators::triangular_lattice(5, 5);
    let ropm = Ropm3::new(fast_config());
    let mut rng = StdRng::seed_from_u64(41);
    let machine_acc = ropm.solve_best_of(&g, 8, &mut rng).accuracy(&g);
    // Random 3-coloring satisfies ~2/3 of edges in expectation.
    assert!(
        machine_acc > 0.8,
        "3-SHIL machine accuracy {machine_acc:.3} not better than random"
    );
}

#[test]
fn chromatic_numbers_of_known_families() {
    assert_eq!(solve_chromatic_number(&generators::kings_graph(4, 4)).0, 4);
    assert_eq!(solve_chromatic_number(&generators::cycle_graph(7)).0, 3);
    assert_eq!(solve_chromatic_number(&generators::grid_graph(3, 5)).0, 2);
    assert_eq!(solve_chromatic_number(&generators::complete_graph(6)).0, 6);
}

#[test]
fn dsatur_upper_bounds_sat_chromatic_number() {
    let mut rng = StdRng::seed_from_u64(43);
    for _ in 0..3 {
        let g = generators::erdos_renyi(18, 0.35, &mut rng);
        let dsatur_colors = msropm::graph::coloring::dsatur(&g).num_colors_used();
        let (chi, _) = solve_chromatic_number(&g);
        assert!(
            chi <= dsatur_colors.max(1),
            "DSATUR below chromatic number?!"
        );
    }
}

#[test]
fn stripe_cut_optimal_on_small_kings_boards() {
    // Certifies the large-size Fig. 5(b) normalizer at exactly-solvable
    // sizes: the row-stripe construction achieves the B&B optimum.
    for side in [3usize, 4, 5] {
        let g = generators::kings_graph_square(side);
        let stripe = msropm::graph::cut::kings_stripe_cut(side, side).cut_value(&g);
        let bb = branch_and_bound_max_cut(&g, u64::MAX);
        assert!(bb.optimal);
        assert_eq!(bb.value, stripe, "side {side}");
    }
}
